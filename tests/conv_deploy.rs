//! Integration tests for the conv-to-mesh photonic lowering (im2col over
//! MZI meshes) and its serving behaviour:
//!
//! * the im2col view of the convolution is element-wise equal to the
//!   direct conv forward across random shapes/strides/paddings (property
//!   test — the gather plan the hardware lowering consumes is the same
//!   index table);
//! * a deployed CNN's classifications are **bitwise identical** across
//!   engine worker counts {1, 2, 7} and through the `serve::Server`
//!   micro-batcher, mirroring the FCNN contracts in `tests/serving.rs` /
//!   `tests/serve.rs`;
//! * deployed-CNN logits agree with the electronic forward within the
//!   same tolerance the FCNN deployment pins;
//! * rank-4 `[N, C, H, W]` image views serve through every engine entry
//!   point exactly like their flattened `[N, D]` form.
//!
//! The CI matrix runs this binary under `OPLIX_JOBS ∈ {2, 7}`; nothing
//! here may depend on the worker budget.

use oplix_linalg::Complex64;
use oplix_nn::ctensor::CTensor;
use oplix_nn::functional::{conv2d_forward, conv2d_forward_im2col};
use oplix_nn::head::MergeHead;
use oplix_nn::layers::{CConv2d, CDense, CFlatten, CRelu, CSequential};
use oplix_nn::network::Network;
use oplix_nn::tensor::Tensor;
use oplix_photonics::svd_map::MeshStyle;
use oplixnet::engine::InferenceEngine;
use oplixnet::serve::{sample_row, Server, Ticket};
use oplixnet::DeployedDetection;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// A pool-free CNN: conv(same-ish geometry) → ReLU → flatten → dense
/// classifier under the merge head, deployable end to end.
#[allow(clippy::too_many_arguments)]
fn cnn(
    c: usize,
    h: usize,
    w: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    classes: usize,
    seed: u64,
) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let conv = CConv2d::new(c, out_ch, kernel, stride, pad, &mut rng);
    let (oh, ow) = conv.output_hw(h, w);
    let flat = out_ch * oh * ow;
    let body = CSequential::new()
        .push(conv)
        .push(CRelu::new())
        .push(CFlatten::new())
        .push(CDense::new(flat, 2 * classes, &mut rng));
    Network::new(body, Box::new(MergeHead::new()))
}

fn image_view(n: usize, c: usize, h: usize, w: usize, seed: u64) -> CTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    CTensor::new(
        Tensor::random_uniform(&[n, c, h, w], 1.0, &mut rng),
        Tensor::random_uniform(&[n, c, h, w], 1.0, &mut rng),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The im2col-lowered conv forward is element-wise equal to the
    /// direct conv forward: both accumulate each output's products in the
    /// identical `(c, ky, kx)` order, the im2col walk merely interleaving
    /// exact zero products where the direct walk skips padded taps.
    #[test]
    fn im2col_forward_equals_direct_forward(
        n in 1usize..3,
        c in 1usize..4,
        o in 1usize..4,
        h in 1usize..7,
        w in 1usize..7,
        kernel in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..3,
        seed in 0u64..u64::MAX,
    ) {
        prop_assume!(h + 2 * pad >= kernel && w + 2 * pad >= kernel);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::random_uniform(&[n, c, h, w], 1.0, &mut rng);
        let weights = Tensor::random_uniform(&[o, c, kernel, kernel], 1.0, &mut rng);
        let direct = conv2d_forward(&x, &weights, stride, pad);
        let im2col = conv2d_forward_im2col(&x, &weights, stride, pad);
        prop_assert_eq!(direct.shape(), im2col.shape());
        prop_assert_eq!(direct.as_slice(), im2col.as_slice());
    }

    /// Deployed-CNN classification is bitwise identical across worker
    /// counts {1, 2, 7}, across random conv geometries (strides, paddings,
    /// channel counts) — the FCNN sharding contract extended to the
    /// gather-stage pipeline. Deployment is the expensive part, so the
    /// case count stays small.
    #[test]
    fn deployed_cnn_classify_is_bitwise_across_worker_counts(
        c in 1usize..3,
        out_ch in 1usize..4,
        kernel in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..u64::MAX,
    ) {
        let (h, w) = (5, 6);
        prop_assume!(h + 2 * pad >= kernel && w + 2 * pad >= kernel);
        let net = cnn(c, h, w, out_ch, kernel, stride, pad, 3, seed);
        let deploy = || InferenceEngine::from_network_shaped(
            &net,
            Some((c, h, w)),
            DeployedDetection::Differential,
            MeshStyle::Clements,
        ).expect("CNN bodies deploy");
        // 20 samples: enough for several compiled windows and the
        // mode-major batched mesh path on the patch rows.
        let view = image_view(20, c, h, w, seed.wrapping_add(1));
        let want = deploy().classify(&view).expect("sequential classify");
        for workers in [2usize, 7] {
            let got = deploy()
                .with_num_workers(workers)
                .classify(&view)
                .expect("sharded classify");
            prop_assert_eq!(&got, &want, "workers {}", workers);
        }
    }
}

#[test]
fn deployed_cnn_logits_match_electronic_forward() {
    // The acceptance bar of the lowering: deployed logits within the same
    // 1e-3 tolerance the FCNN deployment pins against software.
    let mut net = cnn(2, 6, 6, 3, 3, 2, 1, 2, 70_001);
    let deployed = oplixnet::deploy::DeployedFcnn::from_network_shaped(
        &net,
        Some((2, 6, 6)),
        DeployedDetection::Differential,
        MeshStyle::Clements,
    )
    .expect("deploys");
    let view = image_view(6, 2, 6, 6, 70_002);
    let soft = net.forward(&view, false);
    for i in 0..6 {
        let optical = deployed.forward(&sample_row(&view, i));
        for k in 0..2 {
            let s = soft.at2(i, k) as f64;
            assert!(
                (optical[k] - s).abs() < 1e-3,
                "sample {i} class {k}: optical {} vs software {s}",
                optical[k]
            );
        }
    }
}

#[test]
fn rank4_image_views_serve_like_their_flat_form() {
    // `[N, C, H, W]` and `[N, C·H·W]` views of the same storage must be
    // bitwise interchangeable through every engine entry point.
    let net = cnn(2, 4, 6, 2, 3, 1, 1, 3, 70_011);
    let engine = || {
        InferenceEngine::from_network_shaped(
            &net,
            Some((2, 4, 6)),
            DeployedDetection::Differential,
            MeshStyle::Clements,
        )
        .expect("deploys")
    };
    let image = image_view(17, 2, 4, 6, 70_012);
    let flat = image.reshape(&[17, 2 * 4 * 6]);
    let want_logits = engine().predict_batch(&flat).expect("flat predict");
    let mut e = engine();
    assert_eq!(e.predict_batch(&image).expect("image predict"), want_logits);
    assert_eq!(
        e.classify(&image).expect("image classify"),
        engine().classify(&flat).expect("flat classify")
    );
    // The borrowed-rows path (serving front end) agrees too.
    let rows: Vec<Complex64> = (0..17).flat_map(|i| sample_row(&image, i)).collect();
    assert_eq!(
        e.classify_rows(&rows).expect("rows"),
        engine().classify(&flat).expect("flat classify")
    );
    // Streaming evaluation accepts the rank-4 view directly.
    let labels = vec![0usize; 17];
    let data = oplix_nn::trainer::CDataset::new(image.clone(), labels);
    let streamed = e.accuracy_streaming(&data, 5).expect("streamed");
    let direct = e.accuracy(&data).expect("one-shot");
    assert_eq!(streamed, direct);
}

#[test]
fn served_cnn_predictions_are_bitwise_direct_classify() {
    // The serve::Server micro-batcher over a deployed CNN: coalesced
    // micro-batches must be bitwise the direct classify results, at any
    // coalescing — the FCNN serving contract extended to gather stages.
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 25;
    let net = cnn(1, 6, 6, 3, 3, 1, 1, 3, 70_021);
    let make_engine = || {
        InferenceEngine::from_network_shaped(
            &net,
            Some((1, 6, 6)),
            DeployedDetection::Differential,
            MeshStyle::Clements,
        )
        .expect("deploys")
    };
    let view = image_view(CLIENTS * PER_CLIENT, 1, 6, 6, 70_022);
    let mut direct = make_engine();
    let want = direct.classify(&view).expect("direct classify");
    direct.reset_stats();

    let server = Server::builder()
        .max_batch(16)
        .max_wait(Duration::from_micros(200))
        .queue_cap(64)
        .workers(0) // shared `--jobs` budget, whatever the CI matrix sets
        .serve_engine(direct);
    let got: Vec<Vec<usize>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let client = server.client();
                let view = &view;
                scope.spawn(move || {
                    let lo = c * PER_CLIENT;
                    let tickets: Vec<Ticket> = (lo..lo + PER_CLIENT)
                        .map(|i| client.submit(sample_row(view, i)).expect("admits"))
                        .collect();
                    tickets
                        .into_iter()
                        .map(|t| {
                            t.wait()
                                .expect("every ticket resolves")
                                .class()
                                .expect("no confidence policy")
                        })
                        .collect::<Vec<usize>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for (c, span) in got.iter().enumerate() {
        let lo = c * PER_CLIENT;
        assert_eq!(
            span,
            &want[lo..lo + PER_CLIENT],
            "client {c}: served CNN predictions must be bitwise direct classify"
        );
    }
    let stats = server.stats();
    assert_eq!(stats.served, (CLIENTS * PER_CLIENT) as u64);
    let engine_back = server.shutdown();
    assert_eq!(engine_back.stats().samples, (CLIENTS * PER_CLIENT) as u64);
}

#[test]
fn parallel_gather_window_is_bitwise_sequential_gather() {
    // Above the deploy layer's 16 Ki-field threshold the im2col gather is
    // fanned out across the worker pool instead of running inline on the
    // serving thread. The gather plan is a pure index table, so the
    // parallel split must be bitwise invisible. An 8×10 two-channel image
    // under a 3×3 same-pad conv gathers 80 positions × 19 sources =
    // 1 520 fields per sample: a 64-sample window crosses the threshold
    // on every worker shard (16 × 1 520 ≥ 16 Ki at four workers), while
    // single-sample windows stay on the sequential path.
    let (c, h, w) = (2usize, 8usize, 10usize);
    let net = cnn(c, h, w, 2, 3, 1, 1, 3, 70_041);
    let make_engine = || {
        InferenceEngine::from_network_shaped(
            &net,
            Some((c, h, w)),
            DeployedDetection::Differential,
            MeshStyle::Clements,
        )
        .expect("deploys")
    };
    let view = image_view(64, c, h, w, 70_042);

    // Single-sample windows: 1 520 fields each, always sequential.
    let mut seq = make_engine();
    let want: Vec<usize> = (0..64)
        .map(|i| {
            seq.classify_rows(&sample_row(&view, i))
                .expect("one-sample classify")[0]
        })
        .collect();

    // Force a multi-worker budget so the big window actually takes the
    // pool-fanned gather (a 1-CPU dev box would otherwise stay inline);
    // restore the ambient budget for the rest of the binary.
    let ambient = oplixnet::pool::jobs();
    oplixnet::pool::set_jobs(4);
    let got = make_engine().classify(&view).expect("windowed classify");
    oplixnet::pool::set_jobs(ambient);
    assert_eq!(
        got, want,
        "pool-fanned im2col gather must be bitwise the inline gather"
    );
}

#[test]
fn run_blocked_gather_is_bitwise_per_slot_walk() {
    // `gather_into` coalesces consecutive `Input(j), Input(j+1), …` runs
    // into block copies and `Dark`/`Reference` runs into splat fills; the
    // values per slot must be exactly the naive per-slot walk. Cover the
    // degenerate plans the blocking must not mis-group: all-Dark,
    // all-Reference, single ascending runs, *descending* inputs (every
    // slot its own run), repeated indices, and run boundaries at both
    // ends of the plan.
    use oplix_photonics::compiled::{gather_into, GatherSource};
    use GatherSource::{Dark, Input, Reference};

    let sample: Vec<Complex64> = (0..12)
        .map(|i| Complex64::new(i as f64 + 0.25, -(i as f64) * 0.5))
        .collect();
    let plans: Vec<Vec<GatherSource>> = vec![
        vec![],
        vec![Dark; 9],
        vec![Reference; 9],
        (0..12).map(Input).collect(),
        (0..12).rev().map(Input).collect(),
        vec![Input(3); 5],
        vec![
            Reference,
            Input(4),
            Input(5),
            Input(6),
            Dark,
            Dark,
            Input(0),
            Input(2),
            Input(3),
            Reference,
            Reference,
            Dark,
        ],
        vec![Input(11), Reference, Dark, Input(0)],
    ];
    for (which, plan) in plans.iter().enumerate() {
        let mut got = vec![Complex64::new(f64::NAN, f64::NAN); plan.len()];
        gather_into(plan, &sample, &mut got);
        let want: Vec<Complex64> = plan
            .iter()
            .map(|src| match src {
                Input(j) => sample[*j as usize],
                Dark => Complex64::ZERO,
                Reference => Complex64::ONE,
            })
            .collect();
        assert_eq!(got, want, "plan #{which}");
    }
}

#[test]
fn pooled_lenet_style_body_deploys_and_agrees_with_software() {
    // Average pooling lowers as an electronic gather between optical
    // stages, so a full LeNet-style body (conv-relu-pool twice, then the
    // dense stack) deploys end to end.
    let mut rng = StdRng::seed_from_u64(70_031);
    let body = CSequential::new()
        .push(CConv2d::new(1, 2, 3, 1, 1, &mut rng))
        .push(CRelu::new())
        .push(oplix_nn::layers::CAvgPool2d::new(2))
        .push(CConv2d::new(2, 3, 3, 1, 1, &mut rng))
        .push(CRelu::new())
        .push(oplix_nn::layers::CAvgPool2d::new(2))
        .push(CFlatten::new())
        .push(CDense::new(3 * 2 * 2, 4, &mut rng));
    let mut net = Network::new(body, Box::new(MergeHead::new()));
    let deployed = oplixnet::deploy::DeployedFcnn::from_network_shaped(
        &net,
        Some((1, 8, 8)),
        DeployedDetection::Differential,
        MeshStyle::Clements,
    )
    .expect("pooled CNN bodies deploy");
    assert_eq!(deployed.num_stages(), 5); // conv, pool, conv, pool, dense
    assert_eq!(deployed.num_optical_stages(), 3);

    let view = image_view(5, 1, 8, 8, 70_032);
    let soft = net.forward(&view, false);
    for i in 0..5 {
        let optical = deployed.forward(&sample_row(&view, i));
        for k in 0..2 {
            let s = soft.at2(i, k) as f64;
            assert!(
                (optical[k] - s).abs() < 1e-3,
                "sample {i} class {k}: optical {} vs software {s}",
                optical[k]
            );
        }
    }
}
