//! Integration tests for the multi-model serving router
//! (`oplixnet::router`): per-model predictions must be bitwise identical
//! to a dedicated `Server` per model (and to direct `classify`), EDF must
//! demonstrably reorder flushes under deadline pressure, already-expired
//! deadlines must be refused with the typed error, shutdown must drain
//! every admitted ticket across concurrent submitters and models, and two
//! models registered over identical weights must share one cached
//! deployment with a flat resident footprint.
//!
//! The CI matrix runs this binary under `OPLIX_JOBS ∈ {2, 7}`; nothing
//! here may depend on the worker budget (the router inherits the engine's
//! bitwise-at-any-worker-count contract, fair sharing included).
//!
//! Cache discipline (this binary's tests share one process): outside the
//! cache-sharing test, every unique set of weights is deployed exactly
//! once — engines are threaded through direct classify → dedicated
//! server → router via `Server::shutdown` / `Router::deregister`, so the
//! deploy cache's second-sight admission never inserts and the
//! cache-sharing test can assert a flat resident footprint concurrently.

use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::{digits, SynthConfig};
use oplix_photonics::decoder::DecoderKind;
use oplix_photonics::svd_map::MeshStyle;
use oplixnet::engine::InferenceEngine;
use oplixnet::router::{EdfQueue, Priority, Router, RouterRequest, RouterTicket, Served};
use oplixnet::serve::{sample_row, Server};
use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
use oplixnet::{deploy_cache_stats, DeployedDetection, Error};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn test_view(samples: usize, seed: u64) -> oplix_nn::trainer::CDataset {
    let raw = digits(&SynthConfig {
        height: 8,
        width: 8,
        samples,
        seed,
        ..Default::default()
    });
    AssignmentKind::SpatialInterlace.apply_dataset_flat(&raw)
}

fn engine(seed: u64, input: usize, hidden: usize) -> InferenceEngine {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = build_fcnn(
        &FcnnConfig {
            input,
            hidden,
            classes: 10,
        },
        ModelVariant::Split(DecoderKind::Merge),
        &mut rng,
    );
    InferenceEngine::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
        .expect("FCNN deploys")
}

/// ≥ 3 models behind one router must return bitwise-identical predictions
/// to a dedicated `Server` per model over the same request streams (and
/// both must match direct `classify`). One engine per model is threaded
/// through all three phases, so each weight set deploys exactly once.
#[test]
fn router_matches_dedicated_servers_bitwise() {
    const MODELS: usize = 3;
    const PER_MODEL: usize = 80;
    let test = test_view(MODELS * PER_MODEL, 70_001);
    let input = test.inputs.shape()[1];

    // Phase A: direct classify per model (the ground truth).
    let mut engines: Vec<InferenceEngine> = (0..MODELS)
        .map(|m| engine(70_010 + m as u64, input, 12 + 2 * m))
        .collect();
    let want: Vec<Vec<usize>> = engines
        .iter_mut()
        .enumerate()
        .map(|(m, e)| {
            let lo = m * PER_MODEL;
            (lo..lo + PER_MODEL)
                .map(|i| {
                    e.classify_rows(&sample_row(&test.inputs, i))
                        .expect("direct classify")[0]
                })
                .collect()
        })
        .collect();

    // Phase B: a dedicated FIFO server per model over the same engines.
    let mut via_server: Vec<Vec<usize>> = Vec::new();
    let drained: Vec<InferenceEngine> = std::mem::take(&mut engines);
    for (m, mut e) in drained.into_iter().enumerate() {
        e.reset_stats();
        let server = Server::builder()
            .max_batch(16)
            .max_wait(Duration::from_micros(200))
            .serve_engine(e);
        let client = server.client();
        let lo = m * PER_MODEL;
        let tickets: Vec<_> = (lo..lo + PER_MODEL)
            .map(|i| client.submit(sample_row(&test.inputs, i)).expect("admits"))
            .collect();
        via_server.push(
            tickets
                .into_iter()
                .map(|t| t.wait().expect("serves").class().expect("no policy"))
                .collect(),
        );
        engines.push(server.shutdown());
    }
    assert_eq!(via_server, want, "dedicated servers must match classify");

    // Phase C: one router over all three models (the engines that came
    // back out of the servers), concurrent submitter thread per model.
    let router = Router::builder()
        .max_batch(16)
        .max_wait(Duration::from_micros(200))
        .build();
    for (m, mut e) in engines.drain(..).enumerate() {
        e.reset_stats();
        router
            .register_engine(format!("model-{m}"), e)
            .expect("registers");
    }
    assert_eq!(router.models(), ["model-0", "model-1", "model-2"]);

    let via_router: Vec<Vec<usize>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..MODELS)
            .map(|m| {
                let client = router.client();
                let test = &test;
                scope.spawn(move || {
                    let lo = m * PER_MODEL;
                    let tickets: Vec<RouterTicket> = (lo..lo + PER_MODEL)
                        .map(|i| {
                            client
                                .submit(RouterRequest::new(
                                    format!("model-{m}"),
                                    sample_row(&test.inputs, i),
                                ))
                                .expect("admits")
                        })
                        .collect();
                    tickets
                        .into_iter()
                        .map(|t| {
                            t.wait()
                                .expect("every ticket resolves")
                                .prediction
                                .class()
                                .expect("no confidence policy")
                        })
                        .collect::<Vec<usize>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("submitter thread"))
            .collect()
    });
    assert_eq!(
        via_router, want,
        "routed predictions must be bitwise the direct classify results"
    );

    // Observability: the one stats shape reports per model.
    let stats = router.stats();
    assert_eq!(stats.models.len(), MODELS);
    for (name, m) in &stats.models {
        assert_eq!(m.serve.submitted, PER_MODEL as u64, "{name}");
        assert_eq!(m.serve.served, PER_MODEL as u64, "{name}");
        assert_eq!(m.serve.queue_depth, 0, "{name}: all drained");
        assert!(
            m.serve.max_wait_observed > Duration::ZERO,
            "{name}: waits were recorded"
        );
        assert!(m.wait_p50 <= m.wait_p99, "{name}: quantiles are ordered");
        assert!(m.wait_p99 <= m.serve.max_wait_observed, "{name}");
        assert_eq!(m.deadline_missed, 0, "{name}: no deadlines were set");
        assert!(m.optical_stages >= 1, "{name}");
    }

    let engines = router.shutdown();
    assert_eq!(engines.len(), MODELS);
    for (name, e) in engines {
        assert_eq!(
            e.stats().samples,
            PER_MODEL as u64,
            "{name}: engine served exactly its lane's stream"
        );
    }
}

/// EDF must reorder flushes under deadline pressure: requests submitted
/// *first* but with looser deadlines flush *after* tighter-deadline
/// requests submitted later. The scenario first fills one batch with
/// short-deadline "plug" requests — while the lane's engine serves that
/// flush, the real mixed-deadline backlog piles up in the queue — so the
/// later flushes are carved out of a full backlog in EDF order. A FIFO
/// batcher can never produce the observed signature (it serves strictly
/// in arrival order), so observing it even once pins the scheduling
/// policy; the retry loop only absorbs OS scheduling noise in how much
/// of the backlog lands before the plug flush is served.
#[test]
fn edf_reorders_flushes_under_deadline_pressure() {
    const MAX_BATCH: usize = 5;
    const PLUGS: usize = MAX_BATCH;
    const LOOSE: usize = 4;
    const TIGHT: usize = 8;
    let test = test_view(PLUGS + LOOSE + TIGHT, 70_101);
    let input = test.inputs.shape()[1];
    // A wide hidden layer makes the plug flush slow enough that the whole
    // real backlog is queued before the batcher looks at it again.
    let mut e = engine(70_100, input, 48);

    let mut reordered = false;
    for _attempt in 0..10 {
        let router = Router::builder()
            .max_batch(MAX_BATCH)
            .max_wait(Duration::from_millis(300))
            .queue_cap(64)
            .build();
        router.register_engine("m", e).expect("registers");
        let client = router.client();

        // One full batch of plugs: their tight 1 s deadline keeps them
        // ahead of any real request that races into the same flush.
        let plugs: Vec<RouterTicket> = (0..PLUGS)
            .map(|i| {
                client
                    .submit(
                        RouterRequest::new("m", sample_row(&test.inputs, i))
                            .deadline_in(Duration::from_secs(1)),
                    )
                    .expect("admits")
            })
            .collect();
        // Loose deadlines first (they'd win under FIFO)…
        let loose: Vec<RouterTicket> = (PLUGS..PLUGS + LOOSE)
            .map(|i| {
                client
                    .submit(
                        RouterRequest::new("m", sample_row(&test.inputs, i))
                            .deadline_in(Duration::from_secs(240)),
                    )
                    .expect("admits")
            })
            .collect();
        // …then a burst of tighter deadlines.
        let tight: Vec<RouterTicket> = (PLUGS + LOOSE..PLUGS + LOOSE + TIGHT)
            .map(|i| {
                client
                    .submit(
                        RouterRequest::new("m", sample_row(&test.inputs, i))
                            .deadline_in(Duration::from_secs(120)),
                    )
                    .expect("admits")
            })
            .collect();

        for t in plugs {
            t.wait().expect("plugs serve well inside their deadline");
        }
        let loose_seqs: Vec<u64> = loose
            .into_iter()
            .map(|t| t.wait().expect("resolves").flush_seq)
            .collect();
        let tight_seqs: Vec<u64> = tight
            .into_iter()
            .map(|t| t.wait().expect("resolves").flush_seq)
            .collect();
        e = router.deregister("m").expect("engine comes back");

        // The EDF signature: every tight flush at or before every loose
        // flush, and some loose requests pushed strictly past the last
        // tight one. FIFO yields the opposite (looses flush first, and
        // the tight burst drains after them).
        let tight_max = *tight_seqs.iter().max().expect("tights served");
        let loose_min = *loose_seqs.iter().min().expect("looses served");
        let loose_max = *loose_seqs.iter().max().expect("looses served");
        if tight_max <= loose_min && loose_max > tight_max {
            reordered = true;
            break;
        }
    }
    assert!(
        reordered,
        "EDF never reordered flushes in 10 attempts — a FIFO batcher \
         would produce exactly this"
    );
}

/// A request whose deadline has already passed is refused at admission
/// with the typed error, before it costs a queue slot or mesh cycles.
#[test]
fn expired_deadline_is_refused_at_admission() {
    let test = test_view(4, 70_201);
    let input = test.inputs.shape()[1];
    let router = Router::builder().build();
    router
        .register_engine("m", engine(70_200, input, 12))
        .expect("registers");
    let client = router.client();

    let expired = RouterRequest::new("m", sample_row(&test.inputs, 0))
        .deadline_at(Instant::now() - Duration::from_millis(5));
    match client.submit(expired) {
        Err(Error::DeadlineExceeded { missed_by }) => {
            assert!(missed_by >= Duration::from_millis(5));
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // The refusal is counted, admitted nothing, and live traffic still
    // flows.
    let ok = client
        .submit(
            RouterRequest::new("m", sample_row(&test.inputs, 1))
                .deadline_in(Duration::from_secs(60)),
        )
        .expect("a live deadline admits");
    assert!(ok.wait().is_ok());
    let stats = router.stats();
    let m = &stats.models["m"];
    assert_eq!(m.deadline_missed, 1);
    assert_eq!(
        m.serve.submitted, 1,
        "the expired request was never admitted"
    );
    assert_eq!(m.serve.served, 1);
}

/// Regression: a flush in which *every* queued request has expired must
/// not drive a zero-sample batch into the engine. The lane rejects each
/// expired request with the typed error and skips the flush entirely —
/// no `batches` increment, no engine call. The scenario: one full batch
/// of long-deadline plugs keeps the engine busy (a wide hidden layer
/// makes the flush slow), and victims admitted *while that flush is
/// serving* carry deadlines that expire before the batcher looks at the
/// queue again — so the next flush pops an all-expired backlog. The
/// retry loop absorbs OS scheduling noise (a machine fast enough to
/// finish the plug flush before the victims expire just retries).
#[test]
fn all_expired_flush_never_reaches_the_engine() {
    const PLUGS: usize = 64;
    const VICTIMS: usize = 4;
    let test = test_view(PLUGS + VICTIMS, 90_001);
    let input = test.inputs.shape()[1];
    let mut e = engine(90_000, input, 384);

    let mut pinned = false;
    'attempts: for _attempt in 0..10 {
        let router = Router::builder()
            .max_batch(PLUGS)
            .max_wait(Duration::from_millis(300))
            .queue_cap(PLUGS + VICTIMS)
            .build();
        router.register_engine("m", e).expect("registers");
        let client = router.client();

        let plugs: Vec<RouterTicket> = (0..PLUGS)
            .map(|i| {
                client
                    .submit(
                        RouterRequest::new("m", sample_row(&test.inputs, i))
                            .deadline_in(Duration::from_secs(30)),
                    )
                    .expect("plugs admit")
            })
            .collect();
        // Wait until the plug flush has started (the batch counter bumps
        // at flush entry, before the engine call), then race the victims
        // in behind it: live at admission, expired well before the
        // serving flush returns.
        let serving = Instant::now();
        while router.stats().models["m"].serve.batches == 0 {
            assert!(
                serving.elapsed() < Duration::from_secs(20),
                "plug flush never started"
            );
            std::thread::yield_now();
        }
        let victims: Vec<RouterTicket> = (0..VICTIMS)
            .filter_map(|i| {
                client
                    .submit(
                        RouterRequest::new("m", sample_row(&test.inputs, PLUGS + i))
                            .deadline_in(Duration::from_millis(2)),
                    )
                    .ok()
            })
            .collect();
        for t in plugs {
            t.wait()
                .expect("plugs serve inside their generous deadline");
        }
        if victims.len() < VICTIMS {
            // An admission-time refusal means >2 ms passed inside the
            // submit loop itself; the flush path was not exercised.
            e = router.deregister("m").expect("engine comes back");
            continue 'attempts;
        }
        let mut expired = 0usize;
        for t in victims {
            match t.wait() {
                Err(Error::DeadlineExceeded { .. }) => expired += 1,
                // The machine outran the deadline and served a victim
                // live — inconclusive, try again.
                Ok(_) => {
                    e = router.deregister("m").expect("engine comes back");
                    continue 'attempts;
                }
                other => panic!("victim resolved to {other:?}"),
            }
        }
        assert_eq!(expired, VICTIMS);
        let stats = router.stats();
        let m = &stats.models["m"];
        assert_eq!(
            m.serve.batches, 1,
            "the all-expired flush must not reach the engine"
        );
        assert_eq!(m.serve.batched_samples, PLUGS as u64);
        assert_eq!(m.deadline_missed, VICTIMS as u64);
        assert_eq!(m.serve.served, (PLUGS + VICTIMS) as u64);
        e = router.deregister("m").expect("engine comes back");
        pinned = true;
        break;
    }
    drop(e);
    assert!(
        pinned,
        "victims were served live in 10 straight attempts — the plug \
         flush never kept the engine busy long enough"
    );
}

/// Router shutdown must drain: every ticket admitted by concurrent
/// submitters across two models resolves exactly once, bitwise — zero
/// lost, zero duplicated — and racing submissions get typed refusals.
#[test]
fn shutdown_drains_across_models_with_concurrent_submitters() {
    const MODELS: usize = 2;
    const CLIENTS_PER_MODEL: usize = 4;
    const PER_CLIENT: usize = 25;
    const PER_MODEL: usize = CLIENTS_PER_MODEL * PER_CLIENT;
    let test = test_view(MODELS * PER_MODEL, 70_301);
    let input = test.inputs.shape()[1];

    let mut engines: Vec<InferenceEngine> = (0..MODELS)
        .map(|m| engine(70_310 + m as u64, input, 12 + 4 * m))
        .collect();
    let want: Vec<Vec<usize>> = engines
        .iter_mut()
        .enumerate()
        .map(|(m, e)| {
            let lo = m * PER_MODEL;
            (lo..lo + PER_MODEL)
                .map(|i| {
                    e.classify_rows(&sample_row(&test.inputs, i))
                        .expect("direct classify")[0]
                })
                .collect()
        })
        .collect();

    // Oversized batches and a far-off window: nothing flushes until the
    // shutdown drain, so every ticket is genuinely in flight.
    let router = Router::builder()
        .max_batch(2 * MODELS * PER_MODEL)
        .max_wait(Duration::from_secs(30))
        .queue_cap(MODELS * PER_MODEL)
        .build();
    for (m, mut e) in engines.into_iter().enumerate() {
        e.reset_stats();
        router
            .register_engine(format!("model-{m}"), e)
            .expect("registers");
    }

    let tickets: Mutex<Vec<(usize, RouterTicket)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for m in 0..MODELS {
            for c in 0..CLIENTS_PER_MODEL {
                let client = router.client();
                let test = &test;
                let tickets = &tickets;
                scope.spawn(move || {
                    let lo = m * PER_MODEL + c * PER_CLIENT;
                    for i in lo..lo + PER_CLIENT {
                        let t = client
                            .submit(RouterRequest::new(
                                format!("model-{m}"),
                                sample_row(&test.inputs, i),
                            ))
                            .expect("admits");
                        tickets.lock().expect("ticket list").push((i, t));
                    }
                });
            }
        }
    });

    let engines = router.shutdown();
    let mut resolved = 0usize;
    for (i, t) in tickets.into_inner().expect("ticket list") {
        let Served { prediction, .. } = t
            .wait()
            .unwrap_or_else(|e| panic!("ticket {i} lost on shutdown: {e}"));
        let m = i / PER_MODEL;
        assert_eq!(
            prediction.class().expect("no policy"),
            want[m][i - m * PER_MODEL],
            "ticket {i}: drained prediction differs"
        );
        resolved += 1;
    }
    assert_eq!(resolved, MODELS * PER_MODEL, "zero lost tickets");
    assert_eq!(engines.len(), MODELS);
    for (m, (name, e)) in engines.iter().enumerate() {
        assert_eq!(name, &format!("model-{m}"));
        assert_eq!(
            e.stats().samples,
            PER_MODEL as u64,
            "{name}: zero duplicated samples"
        );
    }
}

/// Two models registered over bitwise-identical weights must share one
/// cached deployment: registrations hit the cache, the resident footprint
/// stays flat, and the router reports the sharing.
#[test]
fn two_models_share_one_cached_deployment() {
    let test = test_view(8, 70_401);
    let input = test.inputs.shape()[1];
    let make_net = move || {
        let mut rng = StdRng::seed_from_u64(70_400);
        build_fcnn(
            &FcnnConfig {
                input,
                hidden: 16,
                classes: 10,
            },
            ModelVariant::Split(DecoderKind::Merge),
            &mut rng,
        )
    };
    // Prime the cache: second-sight admission inserts on the second
    // deployment of these exact weights.
    let net = make_net();
    let primed =
        InferenceEngine::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
            .expect("deploys");
    let _admit =
        InferenceEngine::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
            .expect("deploys");
    let stages = primed.deployed().num_stages() as u64;

    let before = deploy_cache_stats();
    let router = Router::builder().max_batch(8).build();
    router
        .register(
            "alpha",
            &net,
            DeployedDetection::Differential,
            MeshStyle::Clements,
        )
        .expect("registers from cache");
    router
        .register(
            "beta",
            &net,
            DeployedDetection::Differential,
            MeshStyle::Clements,
        )
        .expect("registers from cache");
    let after = deploy_cache_stats();

    assert!(
        after.hits >= before.hits + 2 * stages,
        "both registrations must be served from the cached deployment \
         (hits {} -> {}, needed +{})",
        before.hits,
        after.hits,
        2 * stages
    );
    assert_eq!(
        after.resident_bytes, before.resident_bytes,
        "cache hits must not grow the resident footprint"
    );

    // Both lanes work and the router reports the sharing.
    let client = router.client();
    let a: Vec<RouterTicket> = (0..8)
        .map(|i| {
            client
                .submit(RouterRequest::new("alpha", sample_row(&test.inputs, i)))
                .expect("admits")
        })
        .collect();
    let b: Vec<RouterTicket> = (0..8)
        .map(|i| {
            client
                .submit(RouterRequest::new("beta", sample_row(&test.inputs, i)))
                .expect("admits")
        })
        .collect();
    let got_a: Vec<usize> = a
        .into_iter()
        .map(|t| {
            t.wait()
                .expect("serves")
                .prediction
                .class()
                .expect("no policy")
        })
        .collect();
    let got_b: Vec<usize> = b
        .into_iter()
        .map(|t| {
            t.wait()
                .expect("serves")
                .prediction
                .class()
                .expect("no policy")
        })
        .collect();
    assert_eq!(got_a, got_b, "identical weights, identical predictions");

    let stats = router.stats();
    assert_eq!(stats.cache_shared_deployments, 2);
    assert!(stats.models["alpha"].cache_shared);
    assert!(stats.models["beta"].cache_shared);
}

/// The typed admission errors: unknown targets, duplicate names, and
/// deregistration handing the engine back (after which the name is free
/// again).
#[test]
fn admission_errors_are_typed_and_deregister_returns_the_engine() {
    let test = test_view(4, 70_501);
    let input = test.inputs.shape()[1];
    let router = Router::builder().build();
    router
        .register_engine("m", engine(70_500, input, 12))
        .expect("registers");

    // Unknown target.
    match router.submit(RouterRequest::new("ghost", sample_row(&test.inputs, 0))) {
        Err(Error::UnknownModel { model }) => assert_eq!(model, "ghost"),
        other => panic!("expected UnknownModel, got {other:?}"),
    }
    // Duplicate name (second engine's weights differ; the name is the
    // conflict).
    match router.register_engine("m", engine(70_510, input, 12)) {
        Err(Error::DuplicateModel { model }) => assert_eq!(model, "m"),
        other => panic!("expected DuplicateModel, got {other:?}"),
    }
    // Wrong sample width.
    match router.submit(RouterRequest::new(
        "m",
        vec![oplix_linalg::Complex64::ONE; 3],
    )) {
        Err(Error::ShapeMismatch { got: 3, .. }) => {}
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }

    // Serve one request, then deregister: the engine comes back with its
    // counters, and the name becomes unknown.
    let t = router
        .submit(RouterRequest::new("m", sample_row(&test.inputs, 0)))
        .expect("admits");
    assert!(t.wait().is_ok());
    let e = router.deregister("m").expect("engine comes back");
    assert_eq!(e.stats().samples, 1);
    assert!(matches!(
        router.deregister("m"),
        Err(Error::UnknownModel { .. })
    ));
    assert!(matches!(
        router.submit(RouterRequest::new("m", sample_row(&test.inputs, 1))),
        Err(Error::UnknownModel { .. })
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under any mix of deadlines and priority classes, the EDF queue
    /// pops in exactly the documented order: earliest deadline first
    /// (deadline-less entries after every deadline), then priority
    /// class, then push order.
    #[test]
    fn edf_queue_pops_in_scheduling_order(
        entries in proptest::collection::vec(
            ((0u8..2), (0u64..40), (0u8..3)),
            1..=48,
        )
    ) {
        let base = Instant::now();
        let mut q = EdfQueue::new();
        let keys: Vec<(bool, u64, Priority)> = entries
            .iter()
            .map(|&(has_deadline, offset, prio)| {
                let priority = match prio {
                    0 => Priority::Interactive,
                    1 => Priority::Standard,
                    _ => Priority::Batch,
                };
                (has_deadline == 0, offset, priority)
            })
            .collect();
        for (i, &(has_deadline, offset, priority)) in keys.iter().enumerate() {
            let deadline =
                has_deadline.then(|| base + Duration::from_millis(offset));
            q.push(deadline, priority, base, i);
        }

        let popped: Vec<usize> =
            std::iter::from_fn(|| q.pop().map(|e| e.value)).collect();
        prop_assert_eq!(popped.len(), keys.len());
        // Scheduling key: deadline-less entries rank after every
        // deadline; ties break by priority, then by push order.
        let rank = |i: usize| {
            let (has_deadline, offset, priority) = keys[i];
            (!has_deadline, if has_deadline { offset } else { 0 }, priority)
        };
        for pair in popped.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            prop_assert!(
                rank(a) < rank(b) || (rank(a) == rank(b) && a < b),
                "pop order violated scheduling order: {:?} (idx {}) before {:?} (idx {})",
                rank(a), a, rank(b), b
            );
        }
    }
}
