//! Integration tests for the concurrent serving front end
//! (`oplixnet::serve`): N concurrent clients through the request-queue →
//! micro-batcher → sharded-engine path must get results bitwise identical
//! to direct `classify` calls, the queue bound must surface as
//! backpressure, shutdown must drain every admitted ticket, concurrent
//! servers over one set of weights must share one cached deployment, and
//! confidence abstentions must be calibrated against the direct logits.
//!
//! The CI matrix runs this binary under `OPLIX_JOBS ∈ {2, 7}`; nothing
//! here may depend on the worker budget (the serving layer's bitwise
//! contract holds at any budget).

use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::{digits, SynthConfig};
use oplix_photonics::decoder::DecoderKind;
use oplix_photonics::svd_map::MeshStyle;
use oplixnet::engine::{Confidence, InferenceEngine};
use oplixnet::serve::{sample_row, Prediction, Server, Ticket};
use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
use oplixnet::{deploy_cache_stats, DeployedDetection, Error};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;
use std::time::Duration;

fn test_view(samples: usize, seed: u64) -> oplix_nn::trainer::CDataset {
    let raw = digits(&SynthConfig {
        height: 8,
        width: 8,
        samples,
        seed,
        ..Default::default()
    });
    AssignmentKind::SpatialInterlace.apply_dataset_flat(&raw)
}

/// Each test deploys any given set of weights exactly once (the engine
/// used for the direct reference is the one moved into the server), so
/// the deployment cache's second-sight admission inserts nothing — which
/// is what lets the cache-sharing test assert a flat resident footprint.
fn engine(seed: u64, input: usize) -> InferenceEngine {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = build_fcnn(
        &FcnnConfig {
            input,
            hidden: 16,
            classes: 10,
        },
        ModelVariant::Split(DecoderKind::Merge),
        &mut rng,
    );
    InferenceEngine::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
        .expect("FCNN deploys")
}

#[test]
fn stress_concurrent_clients_are_bitwise_direct_classify() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 125; // 1000 requests total
    let test = test_view(CLIENTS * PER_CLIENT, 60_001);
    let input = test.inputs.shape()[1];

    // Direct reference on the same engine that will serve the queue, so
    // these weights are deployed exactly once.
    let mut direct = engine(60_000, input);
    let want = direct.classify(&test.inputs).expect("direct classify");
    direct.reset_stats();

    let server = Server::builder()
        .max_batch(64)
        .max_wait(Duration::from_micros(200))
        .queue_cap(512)
        .workers(0) // shared `--jobs` budget, whatever the CI matrix sets
        .serve_engine(direct);

    let got: Vec<Vec<usize>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let client = server.client();
                let test = &test;
                scope.spawn(move || {
                    let lo = c * PER_CLIENT;
                    let tickets: Vec<Ticket> = (lo..lo + PER_CLIENT)
                        .map(|i| client.submit(sample_row(&test.inputs, i)).expect("admits"))
                        .collect();
                    tickets
                        .into_iter()
                        .map(|t| {
                            t.wait()
                                .expect("every ticket resolves")
                                .class()
                                .expect("no confidence policy")
                        })
                        .collect::<Vec<usize>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for (c, span) in got.iter().enumerate() {
        let lo = c * PER_CLIENT;
        assert_eq!(
            span,
            &want[lo..lo + PER_CLIENT],
            "client {c}: served predictions must be bitwise the direct classify results"
        );
    }

    let stats = server.stats();
    assert_eq!(stats.submitted, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(
        stats.served,
        (CLIENTS * PER_CLIENT) as u64,
        "no lost tickets"
    );
    assert_eq!(stats.batched_samples, (CLIENTS * PER_CLIENT) as u64);
    assert!(
        stats.batches < stats.submitted,
        "concurrent submissions must coalesce into micro-batches \
         ({} batches for {} requests)",
        stats.batches,
        stats.submitted
    );
    assert_eq!(
        stats.queue_depth, 0,
        "every ticket was waited on, so nothing is left in flight"
    );
    assert!(
        stats.max_wait_observed > Duration::ZERO,
        "queued requests wait a measurable time before their flush"
    );
    let engine_back = server.shutdown();
    assert_eq!(engine_back.stats().samples, (CLIENTS * PER_CLIENT) as u64);
}

#[test]
fn bounded_queue_backpressure_surfaces_as_queue_full() {
    let test = test_view(64, 60_011);
    let input = test.inputs.shape()[1];
    // A one-slot queue and one-sample batches: while the batcher serves a
    // request, at most one more fits in the queue, so a rapid submitter
    // must observe backpressure.
    let server = Server::builder()
        .max_batch(1)
        .max_wait(Duration::ZERO)
        .queue_cap(1)
        .serve_engine(engine(60_010, input));
    let client = server.client();

    let mut tickets = Vec::new();
    let mut rejected = 0usize;
    let mut attempts = 0usize;
    while rejected == 0 && attempts < 100_000 {
        attempts += 1;
        match client.try_submit(sample_row(&test.inputs, attempts % 64)) {
            Ok(t) => tickets.push(t),
            Err(Error::QueueFull { capacity }) => {
                assert_eq!(capacity, 1);
                rejected += 1;
            }
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(
        rejected > 0,
        "a 1-slot queue outpaced by submissions must reject at least once \
         in {attempts} attempts"
    );
    assert!(server.stats().rejected >= 1);
    // Backpressure sheds load; it must not lose admitted work.
    for t in tickets {
        assert!(t.wait().is_ok(), "admitted tickets still resolve");
    }
}

#[test]
fn shutdown_drains_every_admitted_ticket_under_concurrency() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 50;
    let test = test_view(CLIENTS * PER_CLIENT, 60_021);
    let input = test.inputs.shape()[1];
    let mut direct = engine(60_020, input);
    let want = direct.classify(&test.inputs).expect("direct classify");
    direct.reset_stats();

    // A far-off flush deadline and an oversized batch: nothing is served
    // until shutdown forces the drain, so every ticket is genuinely
    // in flight when `shutdown` is called.
    let server = Server::builder()
        .max_batch(2 * CLIENTS * PER_CLIENT)
        .max_wait(Duration::from_secs(30))
        .queue_cap(CLIENTS * PER_CLIENT)
        .serve_engine(direct);

    let tickets: Mutex<Vec<(usize, Ticket)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let client = server.client();
            let test = &test;
            let tickets = &tickets;
            scope.spawn(move || {
                let lo = c * PER_CLIENT;
                for i in lo..lo + PER_CLIENT {
                    let t = client.submit(sample_row(&test.inputs, i)).expect("admits");
                    tickets.lock().expect("ticket list").push((i, t));
                }
            });
        }
    });

    // All 400 submitted, none waited on: the whole load is in flight.
    assert_eq!(
        server.stats().queue_depth,
        (CLIENTS * PER_CLIENT) as u64,
        "queue depth counts every admitted-but-unserved request"
    );

    // Shut down now. The drain contract says every admitted ticket
    // still resolves — bitwise.
    let engine_back = server.shutdown();
    let mut resolved = 0usize;
    for (i, t) in tickets.into_inner().expect("ticket list") {
        let got = t
            .wait()
            .unwrap_or_else(|e| panic!("ticket {i} lost on shutdown: {e}"))
            .class()
            .expect("no confidence policy");
        assert_eq!(got, want[i], "ticket {i}: drained prediction differs");
        resolved += 1;
    }
    assert_eq!(resolved, CLIENTS * PER_CLIENT, "zero lost tickets");
    assert_eq!(engine_back.stats().samples, (CLIENTS * PER_CLIENT) as u64);
}

#[test]
fn concurrent_servers_share_one_cached_deployment() {
    let test = test_view(8, 60_031);
    let input = test.inputs.shape()[1];
    // `Network` is not `Sync`, so each thread rebuilds its own copy from
    // the same seed: the weights are bitwise identical, which is exactly
    // what the bit-exact cache key matches on.
    let make_net = move || {
        let mut rng = StdRng::seed_from_u64(60_030);
        build_fcnn(
            &FcnnConfig {
                input,
                hidden: 16,
                classes: 10,
            },
            ModelVariant::Split(DecoderKind::Merge),
            &mut rng,
        )
    };
    let stages = {
        // Prime the cache: second-sight admission inserts on the second
        // deployment of these exact weights.
        let net = make_net();
        let first = InferenceEngine::from_network(
            &net,
            DeployedDetection::Differential,
            MeshStyle::Clements,
        )
        .expect("deploys");
        let _admit = InferenceEngine::from_network(
            &net,
            DeployedDetection::Differential,
            MeshStyle::Clements,
        )
        .expect("deploys");
        first.deployed().num_stages() as u64
    };

    let before = deploy_cache_stats();
    let spans: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let test = &test;
                scope.spawn(move || {
                    let net = make_net();
                    let server = Server::builder()
                        .serve_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
                        .expect("deploys from cache");
                    let client = server.client();
                    let tickets: Vec<Ticket> = (0..8)
                        .map(|i| client.submit(sample_row(&test.inputs, i)).expect("admits"))
                        .collect();
                    let mut served = 0usize;
                    for t in tickets {
                        t.wait().expect("serves");
                        served += 1;
                    }
                    served
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("server thread"))
            .collect()
    });
    let after = deploy_cache_stats();
    assert_eq!(spans, vec![8, 8]);
    assert!(
        after.hits >= before.hits + 2 * stages,
        "both servers must be served from the cached deployment \
         (hits {} -> {}, needed +{})",
        before.hits,
        after.hits,
        2 * stages
    );
    assert_eq!(
        after.resident_bytes, before.resident_bytes,
        "cache hits must not grow the resident footprint"
    );
    assert_eq!(after.entries, before.entries);
}

#[test]
fn confidence_abstentions_are_calibrated_against_direct_logits() {
    let test = test_view(120, 60_041);
    let input = test.inputs.shape()[1];
    let policy = Confidence {
        threshold: 0.62,
        top_k: 2,
    };

    let mut direct = engine(60_040, input);
    let logits = direct.predict_batch(&test.inputs).expect("direct logits");
    let expected: Vec<Prediction> = logits
        .iter()
        .map(|row| {
            let (best, score) = policy.score(row);
            if score >= policy.threshold {
                Prediction::Class(best)
            } else {
                Prediction::Abstain {
                    best,
                    confidence: score,
                }
            }
        })
        .collect();
    let expected_abstained = expected.iter().filter(|p| p.is_abstain()).count();

    // The streaming evaluation path reports the same calibrated counts.
    let report = direct
        .accuracy_streaming_with(&test, 32, Some(policy))
        .expect("streaming with confidence");
    assert_eq!(report.samples, 120);
    assert_eq!(report.abstained, expected_abstained);
    assert_eq!(report.accepted + report.abstained, report.samples);
    assert!((report.coverage() - report.accepted as f64 / 120.0).abs() < 1e-15);

    // The serving path returns the same per-sample verdicts and counts.
    let server = Server::builder()
        .max_batch(16)
        .max_wait(Duration::from_micros(200))
        .confidence(policy)
        .serve_engine(direct);
    let client = server.client();
    let tickets: Vec<Ticket> = (0..120)
        .map(|i| client.submit(sample_row(&test.inputs, i)).expect("admits"))
        .collect();
    for (i, t) in tickets.into_iter().enumerate() {
        assert_eq!(
            t.wait().expect("serves"),
            expected[i],
            "sample {i}: served verdict differs from the direct logits"
        );
    }
    assert_eq!(server.stats().abstained, expected_abstained as u64);
}
