//! Integration tests for the batched inference engine across every
//! decoder setting: batched classification must agree with one-by-one
//! `DeployedFcnn::forward` calls, and the deployed hardware must agree
//! with the trained software model (gap < 0.05) for all four decoders —
//! including the linear and unitary decoders, whose learnable stage
//! deploys as one more optical stage.

use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::{digits, SynthConfig};
use oplix_linalg::Complex64;
use oplix_photonics::decoder::DecoderKind;
use oplix_photonics::svd_map::MeshStyle;
use oplixnet::engine::InferenceEngine;
use oplixnet::experiments::{train_and_eval, TrainSetup};
use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_setup() -> TrainSetup {
    TrainSetup {
        epochs: 10,
        batch: 32,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
    }
}

#[test]
fn engine_matches_per_sample_forward_and_software_for_every_decoder() {
    let cfg = SynthConfig {
        height: 8,
        width: 8,
        samples: 240,
        ..Default::default()
    };
    let train_raw = digits(&cfg);
    let test_raw = digits(&SynthConfig {
        samples: 120,
        seed: 1,
        ..cfg
    });
    let train = AssignmentKind::SpatialInterlace.apply_dataset_flat(&train_raw);
    let test = AssignmentKind::SpatialInterlace.apply_dataset_flat(&test_raw);
    let input = train.inputs.shape()[1];

    for decoder in DecoderKind::all() {
        let variant = ModelVariant::Split(decoder);
        let mut rng = StdRng::seed_from_u64(17);
        let mut net = build_fcnn(
            &FcnnConfig {
                input,
                hidden: 16,
                classes: 10,
            },
            variant,
            &mut rng,
        );
        let software_acc = train_and_eval(&mut net, &train, &test, &quick_setup(), 19);
        assert!(
            software_acc > 0.3,
            "{decoder}: failed to learn ({software_acc})"
        );

        let mut engine =
            InferenceEngine::from_network(&net, variant.detection(), MeshStyle::Clements)
                .unwrap_or_else(|e| panic!("{decoder}: deploy failed: {e}"));

        // Batched logits must equal one-by-one forward calls exactly.
        let n = test.inputs.shape()[0];
        let batched = engine
            .predict_batch(&test.inputs)
            .unwrap_or_else(|e| panic!("{decoder}: predict_batch failed: {e}"));
        assert_eq!(batched.len(), n);
        for i in (0..n).step_by(17) {
            let sample: Vec<Complex64> = (0..input)
                .map(|j| {
                    Complex64::new(
                        test.inputs.re.at2(i, j) as f64,
                        test.inputs.im.at2(i, j) as f64,
                    )
                })
                .collect();
            let single = engine.deployed().forward(&sample);
            assert_eq!(batched[i].len(), single.len(), "{decoder}: logit width");
            for (a, b) in batched[i].iter().zip(&single) {
                assert!(
                    (a - b).abs() < 1e-12,
                    "{decoder}: batched {a} vs single {b} at sample {i}"
                );
            }
        }

        // The deployed hardware must track the software model: the decoder
        // (merge/linear/unitary/coherent) is part of the deployment.
        let hardware_acc = engine
            .accuracy(&test)
            .unwrap_or_else(|e| panic!("{decoder}: accuracy failed: {e}"));
        assert!(
            (software_acc - hardware_acc).abs() < 0.05,
            "{decoder}: software {software_acc} vs hardware {hardware_acc}"
        );

        let stats = engine.stats();
        assert_eq!(stats.samples, 2 * n as u64, "{decoder}: sample counter");
        assert_eq!(stats.batches, 2, "{decoder}: batch counter");
    }
}

#[test]
fn engine_noise_session_restores_hardware_between_batches() {
    let cfg = SynthConfig {
        height: 8,
        width: 8,
        samples: 160,
        ..Default::default()
    };
    let train_raw = digits(&cfg);
    let test_raw = digits(&SynthConfig {
        samples: 80,
        seed: 1,
        ..cfg
    });
    let train = AssignmentKind::SpatialInterlace.apply_dataset_flat(&train_raw);
    let test = AssignmentKind::SpatialInterlace.apply_dataset_flat(&test_raw);

    let variant = ModelVariant::Split(DecoderKind::Merge);
    let mut rng = StdRng::seed_from_u64(23);
    let mut net = build_fcnn(
        &FcnnConfig {
            input: train.inputs.shape()[1],
            hidden: 16,
            classes: 10,
        },
        variant,
        &mut rng,
    );
    let _ = train_and_eval(&mut net, &train, &test, &quick_setup(), 29);

    let mut engine = InferenceEngine::from_network(&net, variant.detection(), MeshStyle::Clements)
        .expect("FCNN deploys");
    let clean_acc = engine.accuracy(&test).expect("clean accuracy");
    let mut noise_rng = StdRng::seed_from_u64(31);
    let noisy_acc = {
        let mut session = engine.noise_session(0.5, &mut noise_rng);
        session.accuracy(&test).expect("noisy accuracy")
    };
    // Heavy phase noise must not silently leave the meshes perturbed.
    let restored_acc = engine.accuracy(&test).expect("restored accuracy");
    assert_eq!(clean_acc, restored_acc, "session failed to restore phases");
    assert!(
        noisy_acc <= clean_acc + 0.05,
        "noisy {noisy_acc} should not beat clean {clean_acc}"
    );
}
