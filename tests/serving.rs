//! Integration tests for the parallel serving core: sharded engine
//! batches must be bitwise identical to the sequential path across worker
//! counts, the opt-in stage pipeline must be bitwise identical to the
//! sequential staged walk (property-pinned across worker counts and batch
//! sizes straddling the inter-stage ring capacity), streaming evaluation
//! must agree with one-shot evaluation, Arc-backed dataset views must not
//! alias mutations across grid arms, and repeated deployments must be
//! served from the decomposition cache.
//!
//! The CI matrix runs this binary under `OPLIX_JOBS ∈ {2, 7}`; nothing
//! here may depend on the worker budget.

use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::{digits, SynthConfig};
use oplix_nn::ctensor::CTensor;
use oplix_nn::tensor::Tensor;
use oplix_photonics::decoder::DecoderKind;
use oplix_photonics::svd_map::MeshStyle;
use oplixnet::engine::InferenceEngine;
use oplixnet::zoo::{build_fcnn, build_lenet, FcnnConfig, LenetConfig, ModelVariant};
use oplixnet::{deploy_cache_stats, DeployedDetection};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_view(samples: usize, seed: u64) -> oplix_nn::trainer::CDataset {
    let raw = digits(&SynthConfig {
        height: 8,
        width: 8,
        samples,
        seed,
        ..Default::default()
    });
    AssignmentKind::SpatialInterlace.apply_dataset_flat(&raw)
}

fn engine(seed: u64, input: usize) -> InferenceEngine {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = build_fcnn(
        &FcnnConfig {
            input,
            hidden: 16,
            classes: 10,
        },
        ModelVariant::Split(DecoderKind::Merge),
        &mut rng,
    );
    InferenceEngine::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
        .expect("FCNN deploys")
}

#[test]
fn sharded_engine_is_bitwise_identical_across_worker_counts() {
    let test = test_view(120, 3);
    let input = test.inputs.shape()[1];
    let mut sequential = engine(41, input);
    let want_logits = sequential.predict_batch(&test.inputs).expect("predict");
    let want_classes = sequential.classify(&test.inputs).expect("classify");

    for workers in [1usize, 2, 7] {
        let mut sharded = engine(41, input).with_num_workers(workers);
        assert_eq!(sharded.num_workers(), workers);
        let logits = sharded.predict_batch(&test.inputs).expect("predict");
        // Bitwise identity, not approximate agreement: each sample runs
        // the exact same field walk regardless of which worker serves it.
        assert_eq!(logits, want_logits, "{workers} workers: logits differ");
        let classes = sharded.classify(&test.inputs).expect("classify");
        assert_eq!(classes, want_classes, "{workers} workers: classes differ");
        let stats = sharded.stats();
        assert_eq!(stats.samples, 240, "{workers} workers: sample counter");
        assert_eq!(stats.batches, 2, "{workers} workers: batch counter");
    }
}

#[test]
fn streaming_accuracy_matches_one_shot_accuracy() {
    let test = test_view(100, 5);
    let input = test.inputs.shape()[1];
    let mut engine = engine(43, input).with_num_workers(2);
    let one_shot = engine.accuracy(&test).expect("one-shot accuracy");
    // Window sizes that do and do not divide the test set evenly.
    for window in [1usize, 7, 32, 100, 1000] {
        let streamed = engine
            .accuracy_streaming(&test, window)
            .expect("streamed accuracy");
        assert_eq!(streamed, one_shot, "window {window}");
    }
}

#[test]
fn classify_range_serves_bounded_windows() {
    let test = test_view(50, 7);
    let input = test.inputs.shape()[1];
    let mut engine = engine(47, input);
    let full = engine.classify(&test.inputs).expect("full batch");
    let windowed = engine.classify_range(&test.inputs, 10, 20).expect("window");
    assert_eq!(windowed, full[10..30].to_vec());
    // Overruns are typed errors, not panics — including windows whose end
    // would overflow usize.
    assert!(engine.classify_range(&test.inputs, 40, 20).is_err());
    assert!(engine.classify_range(&test.inputs, 1, usize::MAX).is_err());
}

#[test]
fn arc_backed_views_do_not_alias_mutations_across_grid_arms() {
    let base = test_view(30, 9);
    // A sweep clones the assigned view once per grid arm: the clones must
    // be reference bumps that detach on first write.
    let arm_a = base.clone();
    let mut arm_b = base.clone();
    assert!(
        base.inputs.shares_storage(&arm_a.inputs),
        "grid-arm clone must share storage (reference bump, not a copy)"
    );
    let before = base.inputs.re.at2(0, 0);
    arm_b.inputs.re.as_mut_slice()[0] = before + 42.0;
    assert_eq!(
        base.inputs.re.at2(0, 0),
        before,
        "mutating one grid arm must not leak into the base view"
    );
    assert_eq!(arm_a.inputs.re.at2(0, 0), before);
    assert_eq!(arm_b.inputs.re.at2(0, 0), before + 42.0);
    assert!(!base.inputs.shares_storage(&arm_b.inputs));
}

#[test]
fn every_entry_point_shares_one_compiled_kernel_bitwise() {
    use oplix_linalg::Complex64;

    let test = test_view(40, 13);
    let input = test.inputs.shape()[1];
    let mut engine = engine(59, input);

    // The batched tensor path is the reference.
    let want_logits = engine.predict_batch(&test.inputs).expect("predict_batch");
    let want_classes = engine.classify(&test.inputs).expect("classify");

    // Single-sample `predict` routes through the same windowed compiled
    // kernel: bitwise equality, not approximate agreement.
    let rows: Vec<Vec<Complex64>> = (0..40)
        .map(|i| oplixnet::serve::sample_row(&test.inputs, i))
        .collect();
    for (i, row) in rows.iter().enumerate() {
        let single = engine.predict(row).expect("predict");
        assert_eq!(single, want_logits[i], "sample {i}: predict differs");
    }

    // The borrowed-batch rows path (the serving front end's entry point)
    // is bitwise the tensor path too.
    let flat: Vec<Complex64> = rows.iter().flatten().copied().collect();
    assert_eq!(
        engine.classify_rows(&flat).expect("classify_rows"),
        want_classes
    );

    // Typed errors, not panics, on malformed row slices.
    assert!(matches!(
        engine.classify_rows(&flat[..input + 1]),
        Err(oplixnet::Error::ShapeMismatch { .. })
    ));
    assert!(matches!(
        engine.classify_rows(&[]),
        Err(oplixnet::Error::EmptyInput { .. })
    ));
}

/// A deep (≥ 4 deployed stage) conv body: training-scale LeNet-5,
/// channel-halved, on 8×8 single-channel image views.
fn lenet_engine(seed: u64) -> InferenceEngine {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = LenetConfig::training_scale(2, 8, 10).halved();
    let net = build_lenet(&cfg, ModelVariant::Split(DecoderKind::Merge), &mut rng);
    InferenceEngine::from_network_shaped(
        &net,
        Some((cfg.in_ch, cfg.input_h, cfg.input_w)),
        DeployedDetection::Differential,
        MeshStyle::Clements,
    )
    .expect("LeNet deploys")
}

fn image_view(n: usize, c: usize, h: usize, w: usize, seed: u64) -> CTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    CTensor::new(
        Tensor::random_uniform(&[n, c, h, w], 1.0, &mut rng),
        Tensor::random_uniform(&[n, c, h, w], 1.0, &mut rng),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The opt-in stage pipeline is **bitwise identical** to the
    /// sequential staged walk — same logits, same classes — across
    /// engine worker counts {1, 2, 7} and batch sizes straddling the
    /// inter-stage ring capacity
    /// ([`oplixnet::deploy::STAGE_RING_WINDOWS`] windows of 64 samples
    /// in flight), for a two-stage FCNN and a deep LeNet conv body. On
    /// a single-core budget the pipeline degrades to the sequential
    /// walk itself; the CI `pipeline` job re-runs this binary under
    /// `OPLIX_JOBS ∈ {2, 7}`, where helper stages actually engage.
    #[test]
    fn stage_pipeline_is_bitwise_identical_to_sequential_walk(
        samples in 97usize..=192,
        workers_ix in 0usize..3,
    ) {
        let workers = [1usize, 2, 7][workers_ix];

        // FCNN (two deployed stages: hidden + head).
        let test = test_view(samples, 23);
        let input = test.inputs.shape()[1];
        let want = engine(61, input)
            .predict_batch(&test.inputs)
            .expect("sequential FCNN");
        let mut piped = engine(61, input)
            .with_num_workers(workers)
            .with_stage_pipeline(true);
        prop_assert!(piped.stage_pipeline());
        let got = piped.predict_batch(&test.inputs).expect("pipelined FCNN");
        prop_assert_eq!(&got, &want, "FCNN: {} workers, {} samples", workers, samples);

        // Deep conv body (conv-pool-conv-pool-fc-fc-fc).
        let view = image_view(samples, 1, 8, 8, 29);
        let want = lenet_engine(67).classify(&view).expect("sequential LeNet");
        let got = lenet_engine(67)
            .with_num_workers(workers)
            .with_stage_pipeline(true)
            .classify(&view)
            .expect("pipelined LeNet");
        prop_assert_eq!(got, want, "LeNet: {} workers, {} samples", workers, samples);
    }
}

#[test]
fn repeated_deployments_hit_the_decomposition_cache() {
    let test = test_view(20, 11);
    let input = test.inputs.shape()[1];
    let first = engine(53, input);
    let stages = first.deployed().num_stages() as u64;
    let _admit = engine(53, input); // second sight populates the cache
    let before = deploy_cache_stats();
    let second = engine(53, input); // identical weights: every stage hits
    let after = deploy_cache_stats();
    assert!(
        after.hits >= before.hits + stages,
        "repeat deployment must be served from the cache \
         (hits {} -> {}, needed +{stages})",
        before.hits,
        after.hits
    );
    // And the cached deployment serves the same classifications.
    let mut a = first;
    let mut b = second;
    assert_eq!(
        a.classify(&test.inputs).expect("first"),
        b.classify(&test.inputs).expect("second")
    );
}
