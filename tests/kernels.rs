//! Integration tests for the compiled compute-kernel layer: compiled
//! mesh/layer kernels pinned bitwise against the interpreted walk on
//! realistic (decomposition-produced) meshes, the transpose-free GEMM
//! layouts pinned bitwise against transpose-then-multiply, and the
//! persistent executor serving the sharded engine across worker counts.

use oplix_linalg::{CMatrix, Complex64};
use oplix_nn::ctensor::CTensor;
use oplix_nn::tensor::Tensor;
use oplix_photonics::clements::decompose_clements;
use oplix_photonics::compiled::{CompiledLayer, CompiledMesh, MODE_MAJOR_MIN_SAMPLES};
use oplix_photonics::decoder::DecoderKind;
use oplix_photonics::reck::decompose_reck;
use oplix_photonics::svd_map::{MeshStyle, PhotonicLayer};
use oplixnet::engine::InferenceEngine;
use oplixnet::pool;
use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
use oplixnet::DeployedDetection;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// The window range sampled by `propagate_batch_is_bitwise_per_sample_across_windows`
// must straddle the scalar/planar switch so both paths are covered.
const _: () = assert!(MODE_MAJOR_MIN_SAMPLES < 40);

fn random_fields(n: usize, seed: u64) -> Vec<Complex64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect()
}

#[test]
fn compiled_kernels_are_bitwise_on_decomposed_unitaries() {
    // Meshes that come out of the real decomposition algorithms (not just
    // random MZI lists): full Clements rectangles and Reck triangles.
    let mut rng = StdRng::seed_from_u64(1);
    for n in [1usize, 2, 5, 16] {
        let u = CMatrix::random_unitary(n, &mut rng);
        for mesh in [decompose_clements(&u), decompose_reck(&u)] {
            let compiled = CompiledMesh::compile(&mesh);
            assert_eq!(compiled.mzi_count(), mesh.mzi_count());
            assert_eq!(compiled.stage_count(), mesh.depth());
            for seed in 0..4u64 {
                let mut fast = random_fields(n, 100 * n as u64 + seed);
                let mut reference = fast.clone();
                compiled.propagate_in_place(&mut fast);
                mesh.propagate_in_place(&mut reference);
                assert_eq!(fast, reference, "n={n} seed={seed}");
            }
        }
    }
}

#[test]
fn compiled_svd_layers_are_bitwise_across_styles() {
    let mut rng = StdRng::seed_from_u64(2);
    for &(m, n) in &[(1usize, 1usize), (3, 7), (7, 3), (16, 16)] {
        let w = CMatrix::from_fn(m, n, |_, _| {
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        for style in [MeshStyle::Clements, MeshStyle::Reck] {
            let layer = PhotonicLayer::from_matrix(&w, style);
            let compiled = CompiledLayer::compile(&layer);
            let mut io = random_fields(n, (m * 31 + n) as u64);
            let mut reference = io.clone();
            let (mut tmp_a, mut tmp_b) = (Vec::new(), Vec::new());
            compiled.forward_into(&mut io, &mut tmp_a);
            layer.forward_into(&mut reference, &mut tmp_b);
            assert_eq!(io, reference, "{m}x{n} {style:?}");
        }
    }
}

/// Naive strictly-ascending-`k` f32 matmul: the scalar twin the lane
/// micro-kernel in `oplix_linalg::gemm` must reproduce bit for bit.
fn naive_matmul_f32(x: &Tensor, w: &Tensor) -> Tensor {
    let (m, k) = (x.shape()[0], x.shape()[1]);
    let n = w.shape()[1];
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for t in 0..k {
            let a = x.as_slice()[i * k + t];
            for j in 0..n {
                out.as_mut_slice()[i * n + j] += a * w.as_slice()[t * n + j];
            }
        }
    }
    out
}

/// Naive strictly-ascending-`k` complex matmul, same role as
/// [`naive_matmul_f32`] for the planar `Complex64` lane kernel.
fn naive_matmul_c64(x: &CMatrix, w: &CMatrix) -> CMatrix {
    let mut out = CMatrix::zeros(x.rows(), w.cols());
    for i in 0..x.rows() {
        for t in 0..x.cols() {
            let a = x[(i, t)];
            for j in 0..w.cols() {
                out[(i, j)] += a * w[(t, j)];
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The transpose-free layouts are bitwise transpose-then-multiply
    /// across random shapes, including empty and 1×N edge cases.
    #[test]
    fn gemm_nt_tn_are_bitwise_transpose_free(
        m in 0usize..10,
        k in 0usize..80,
        n in 0usize..10,
        seed in 0u64..u64::MAX,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::random_uniform(&[m, k], 1.0, &mut rng);
        let w = Tensor::random_uniform(&[n, k], 1.0, &mut rng);
        prop_assert_eq!(x.matmul_nt(&w), x.matmul(&w.transpose2()));
        let dy = Tensor::random_uniform(&[k, m], 1.0, &mut rng);
        let b = Tensor::random_uniform(&[k, n], 1.0, &mut rng);
        prop_assert_eq!(dy.matmul_tn(&b), dy.transpose2().matmul(&b));
    }

    /// The lane micro-kernel behind every GEMM is bitwise the naive
    /// strictly-ascending-`k` scalar loop, across shapes chosen to
    /// straddle the lane widths (4/8/16) in the `j` dimension —
    /// remainder-tail-only rows, exactly-one-lane rows, lane-plus-tail
    /// rows — and single-row products.
    #[test]
    fn gemm_lane_kernel_is_bitwise_naive_scalar(
        mi in 0usize..3,
        ki in 0usize..4,
        ni in 0usize..11,
        seed in 0u64..u64::MAX,
    ) {
        let m = [1usize, 2, 5][mi];
        let k = [1usize, 3, 8, 17][ki];
        let n = [1usize, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33][ni];
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::random_uniform(&[m, k], 1.0, &mut rng);
        let w = Tensor::random_uniform(&[k, n], 1.0, &mut rng);
        prop_assert_eq!(x.matmul(&w), naive_matmul_f32(&x, &w));
        let cx = CMatrix::from_fn(m, k, |_, _| {
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let cw = CMatrix::from_fn(k, n, |_, _| {
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        prop_assert_eq!(cx.matmul(&cw), naive_matmul_c64(&cx, &cw));
    }

    /// The planar lane sweep behind `propagate_batch` is bitwise the
    /// per-sample compiled walk (itself pinned to the interpreted mesh)
    /// for every window size straddling `MODE_MAJOR_MIN_SAMPLES` and the
    /// lane widths: below the threshold (scalar chunk path), exactly at
    /// it, lane-multiple windows, and windows with remainder tails.
    #[test]
    fn propagate_batch_is_bitwise_per_sample_across_windows(
        ni in 0usize..4,
        samples in 0usize..=40,
        seed in 0u64..u64::MAX,
    ) {
        let n = [1usize, 2, 5, 16][ni];
        let mut rng = StdRng::seed_from_u64(seed);
        let mesh = decompose_clements(&CMatrix::random_unitary(n, &mut rng));
        let compiled = CompiledMesh::compile(&mesh);
        let mut batch = random_fields(n * samples, seed ^ 0x5eed);
        let mut reference = batch.clone();
        compiled.propagate_batch(&mut batch, samples);
        for row in reference.chunks_exact_mut(n) {
            compiled.propagate_in_place(row);
        }
        prop_assert_eq!(batch, reference, "n={} samples={}", n, samples);
    }
}

#[test]
fn sharded_engine_on_persistent_executor_is_bitwise_sequential() {
    // Force a multi-slot budget so the sharded path really runs on the
    // persistent executor's workers (not the inline fallback), then pin
    // the compiled window path bitwise across worker counts.
    pool::set_jobs(4);
    let mut rng = StdRng::seed_from_u64(5);
    let net = build_fcnn(
        &FcnnConfig {
            input: 12,
            hidden: 10,
            classes: 4,
        },
        ModelVariant::Split(DecoderKind::Merge),
        &mut rng,
    );
    let make = || {
        InferenceEngine::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
            .expect("FCNN deploys")
    };
    // A batch bigger than one serve window (64), so the window loop and
    // the shard split both engage.
    let batch = CTensor::new(
        Tensor::random_uniform(&[150, 12], 1.0, &mut rng),
        Tensor::random_uniform(&[150, 12], 1.0, &mut rng),
    );
    let want = make().predict_batch(&batch).expect("sequential");
    for workers in [2usize, 3, 7] {
        let got = make()
            .with_num_workers(workers)
            .predict_batch(&batch)
            .expect("sharded");
        assert_eq!(got, want, "{workers} workers");
    }
    assert!(
        pool::workers_alive() >= 1,
        "the sharded batches must have spun up persistent workers"
    );
}
