//! Cross-crate integration tests: dataset → assignment → training →
//! photonic deployment, exercised through the public APIs only.

use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::{colors, digits, SynthConfig};
use oplix_linalg::Complex64;
use oplix_photonics::decoder::DecoderKind;
use oplix_photonics::encoder::{ComplexEncoder, DcComplexEncoder};
use oplix_photonics::svd_map::MeshStyle;
use oplixnet::engine::InferenceEngine;
use oplixnet::experiments::{train_and_eval, TrainSetup};
use oplixnet::pipeline::OplixNetBuilder;
use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_setup() -> TrainSetup {
    TrainSetup {
        epochs: 12,
        batch: 32,
        lr: 0.05,
        momentum: 0.9,
        weight_decay: 1e-4,
    }
}

#[test]
fn split_fcnn_learns_and_deploys_with_identical_predictions() {
    let cfg = SynthConfig {
        height: 8,
        width: 8,
        samples: 240,
        ..Default::default()
    };
    let train_raw = digits(&cfg);
    let test_raw = digits(&SynthConfig {
        samples: 120,
        seed: 1,
        ..cfg
    });
    let train = AssignmentKind::SpatialInterlace.apply_dataset_flat(&train_raw);
    let test = AssignmentKind::SpatialInterlace.apply_dataset_flat(&test_raw);

    let mut rng = StdRng::seed_from_u64(3);
    let mut net = build_fcnn(
        &FcnnConfig {
            input: 32,
            hidden: 16,
            classes: 10,
        },
        ModelVariant::Split(DecoderKind::Merge),
        &mut rng,
    );
    let acc = train_and_eval(&mut net, &train, &test, &quick_setup(), 5);
    assert!(acc > 0.6, "software accuracy too low: {acc}");

    let variant = ModelVariant::Split(DecoderKind::Merge);
    let mut engine = InferenceEngine::from_network(&net, variant.detection(), MeshStyle::Clements)
        .expect("FCNN deploys");
    let hw_acc = engine
        .accuracy(&test)
        .expect("test view matches mesh fan-in");
    assert!(
        (acc - hw_acc).abs() < 0.02,
        "hardware accuracy {hw_acc} diverges from software {acc}"
    );
    assert_eq!(engine.stats().samples, test.len() as u64);
}

#[test]
fn interlace_beats_symmetric_on_correlated_digits() {
    // The central Fig. 8 ordering claim, end to end: with strong adjacent-
    // pixel correlation, SI must not lose to SS.
    let cfg = SynthConfig {
        height: 8,
        width: 8,
        samples: 320,
        noise: 0.12,
        ..Default::default()
    };
    let train_raw = digits(&cfg);
    let test_raw = digits(&SynthConfig {
        samples: 160,
        seed: 1,
        ..cfg
    });

    let mut accs = Vec::new();
    for assignment in [
        AssignmentKind::SpatialInterlace,
        AssignmentKind::SpatialSymmetric,
    ] {
        let train = assignment.apply_dataset_flat(&train_raw);
        let test = assignment.apply_dataset_flat(&test_raw);
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = build_fcnn(
            &FcnnConfig {
                input: 32,
                hidden: 16,
                classes: 10,
            },
            ModelVariant::Split(DecoderKind::Merge),
            &mut rng,
        );
        accs.push(train_and_eval(&mut net, &train, &test, &quick_setup(), 9));
    }
    assert!(
        accs[0] >= accs[1] - 0.05,
        "interlace {} should not trail symmetric {} materially",
        accs[0],
        accs[1]
    );
}

#[test]
fn channel_lossless_preserves_information_vs_remapping() {
    let cfg = SynthConfig {
        height: 8,
        width: 8,
        samples: 320,
        ..Default::default()
    };
    let train_raw = colors(&cfg);
    let test_raw = colors(&SynthConfig {
        samples: 160,
        seed: 1,
        ..cfg
    });

    let mut accs = Vec::new();
    for assignment in [
        AssignmentKind::ChannelLossless,
        AssignmentKind::ChannelRemapping,
    ] {
        let train = assignment.apply_dataset_flat(&train_raw);
        let test = assignment.apply_dataset_flat(&test_raw);
        let input = train.inputs.shape()[1];
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = build_fcnn(
            &FcnnConfig {
                input,
                hidden: 16,
                classes: 10,
            },
            ModelVariant::Split(DecoderKind::Merge),
            &mut rng,
        );
        accs.push(train_and_eval(&mut net, &train, &test, &quick_setup(), 13));
    }
    // CL keeps all the information; CR collapsed 3 channels into 2 real
    // values. CL must not lose.
    assert!(
        accs[0] >= accs[1] - 0.05,
        "channel-lossless {} should not trail remapping {}",
        accs[0],
        accs[1]
    );
}

#[test]
fn pipeline_builder_full_workflow() {
    let cfg = SynthConfig {
        height: 8,
        width: 8,
        samples: 240,
        ..Default::default()
    };
    let train = digits(&cfg);
    let test = digits(&SynthConfig {
        samples: 120,
        seed: 1,
        ..cfg
    });
    let outcome = OplixNetBuilder::new()
        .hidden(16)
        .mutual_learning(true)
        .train_setup(quick_setup())
        .build(&train, &test)
        .run()
        .expect("valid geometry; FCNN bodies deploy");
    assert!(outcome.accuracy > 0.5, "accuracy {}", outcome.accuracy);
    assert!(outcome.hardware_gap() < 0.05);

    // The outcome's engine keeps serving the deployed meshes.
    let mut engine = outcome.engine;
    let view = AssignmentKind::SpatialInterlace.apply_dataset_flat(&test);
    let preds = engine.classify(&view.inputs).expect("batch matches fan-in");
    assert_eq!(preds.len(), test.len());
}

#[test]
fn encoder_feeds_deployment_exactly() {
    // The DC encoder's field output is bit-identical to the (re, im)
    // representation the deployment consumes.
    let enc = DcComplexEncoder::new();
    let pairs = [(0.3, -0.4), (0.9, 0.1), (0.0, 0.0)];
    let fields = enc.encode(&pairs);
    for (&(a, b), z) in pairs.iter().zip(&fields) {
        assert!((z.re - a).abs() < 1e-12);
        assert!((z.im - b).abs() < 1e-12);
    }
    let _: Vec<Complex64> = fields;
}
