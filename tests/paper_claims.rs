//! Integration tests pinning the paper's quantitative claims that are
//! closed-form (no training): every area number of Table II, the decoder
//! ordering of Fig. 9, and the device relationships of Fig. 7.

use oplix_photonics::count::{mzi_count, reduction_ratio};
use oplix_photonics::decoder::DecoderKind;
use oplixnet::experiments::fig7::Fig7Model;
use oplixnet::experiments::fig9::{normalized_area, Fig9Model};
use oplixnet::spec::{fcnn_orig, fcnn_prop, lenet5_orig, lenet5_prop, resnet_orig, resnet_prop};

#[test]
fn table2_area_column_digit_for_digit() {
    // Paper Table II, #MZI (×10⁴):      Orig.   Prop.
    //   FCNN                            31.7    7.9
    //   LeNet-5                         11.5    2.9
    //   ResNet-20                      116.6   29.1
    //   ResNet-32                      205.1   51.5
    assert_eq!(fcnn_orig().mzis_e4(), 31.7);
    assert_eq!(fcnn_prop().mzis_e4(), 7.9);
    assert_eq!(lenet5_orig().mzis_e4(), 11.5);
    assert_eq!(lenet5_prop().mzis_e4(), 2.9);
    // ResNets land within one rounding step of the paper (116.7 vs 116.6,
    // 51.6 vs 51.5) — see EXPERIMENTS.md for the convention notes.
    assert!((resnet_orig(20, 10).mzis_e4() - 116.6).abs() <= 0.2);
    assert_eq!(resnet_prop(20, 10).mzis_e4(), 29.1);
    assert!((resnet_orig(32, 100).mzis_e4() - 205.1).abs() <= 0.2);
    assert!((resnet_prop(32, 100).mzis_e4() - 51.5).abs() <= 0.2);
}

#[test]
fn table2_reduction_column() {
    // Paper: 75.03 %, 74.62 %, 75.06 %, 74.88 %.
    let cases = [
        (fcnn_orig().mzis(), fcnn_prop().mzis(), 0.7503),
        (lenet5_orig().mzis(), lenet5_prop().mzis(), 0.7462),
        (
            resnet_orig(20, 10).mzis(),
            resnet_prop(20, 10).mzis(),
            0.7506,
        ),
        (
            resnet_orig(32, 100).mzis(),
            resnet_prop(32, 100).mzis(),
            0.7488,
        ),
    ];
    for (orig, prop, expect) in cases {
        let red = reduction_ratio(orig, prop);
        assert!(
            (red - expect).abs() < 0.003,
            "expected ~{expect}, got {red}"
        );
    }
}

#[test]
fn conclusion_claim_reduction_band() {
    // Paper §V: "74.62 % ~ 75.06 % area reduction".
    let reductions = [
        reduction_ratio(fcnn_orig().mzis(), fcnn_prop().mzis()),
        reduction_ratio(lenet5_orig().mzis(), lenet5_prop().mzis()),
        reduction_ratio(resnet_orig(20, 10).mzis(), resnet_prop(20, 10).mzis()),
        reduction_ratio(resnet_orig(32, 100).mzis(), resnet_prop(32, 100).mzis()),
    ];
    for r in reductions {
        assert!(
            (0.744..0.753).contains(&r),
            "reduction {r} outside the band"
        );
    }
}

#[test]
fn paper_mzi_formula() {
    // §II-A: n(n-1)/2 + min(m,n) + m(m-1)/2, and Fig. 1(b)'s 4×4 = 6 MZIs.
    assert_eq!(mzi_count(4, 4), 6 + 4 + 6);
    assert_eq!(mzi_count(100, 784), 784 * 783 / 2 + 100 + 100 * 99 / 2);
}

#[test]
fn fig9_decoder_area_ordering_everywhere() {
    for model in Fig9Model::all() {
        let coh = normalized_area(model, DecoderKind::Coherent);
        let merge = normalized_area(model, DecoderKind::Merge);
        let unitary = normalized_area(model, DecoderKind::Unitary);
        let linear = normalized_area(model, DecoderKind::Linear);
        assert_eq!(coh, 1.0);
        assert!(
            coh < merge && merge < unitary && unitary < linear,
            "{model:?}: {coh} {merge} {unitary} {linear}"
        );
    }
}

#[test]
fn fig9_merge_overhead_band_for_ten_class_models() {
    // Paper: merge costs 0.04 %–0.73 % more area than coherent.
    for model in [Fig9Model::Fcnn, Fig9Model::Lenet5, Fig9Model::Resnet20] {
        let over = normalized_area(model, DecoderKind::Merge) - 1.0;
        assert!(
            (0.0004..0.0073).contains(&over),
            "{model:?}: overhead {over}"
        );
    }
}

#[test]
fn fig7_device_relationships() {
    use oplix_offt::cost::OfftCostModel;
    use oplixnet::spec::LayerShape;
    // For every model: OplixNet uses fewer DCs and PSs than OFFT; OFFT
    // holds fewer parameters than OplixNet (the paper notes Model2 as the
    // parameter exception in accuracy, not in counts; our OFFT always
    // compresses parameters).
    for m in Fig7Model::all() {
        let oplix_mzis: u64 = m.oplix_spec().layers.iter().map(LayerShape::mzis).sum();
        let offt = OfftCostModel::new(8)
            .network_cost(&m.widths.iter().map(|&w| w as u64).collect::<Vec<_>>());
        assert!(2 * oplix_mzis < offt.dcs, "{}: DC", m.name);
        assert!(oplix_mzis < offt.pss, "{}: PS", m.name);
        assert!(m.oplix_spec().params() > offt.params, "{}: params", m.name);
        // And both beat the original ONN on devices.
        let orig: u64 = m.orig_spec().layers.iter().map(LayerShape::mzis).sum();
        assert!(oplix_mzis < orig);
        assert!(offt.pss < orig);
    }
}

#[test]
fn fcnn_split_halves_every_dimension() {
    let orig = fcnn_orig();
    let prop = fcnn_prop();
    // 784 -> 392, 100 -> 50, classifier 10 -> 10.
    assert_eq!(orig.layers.len(), prop.layers.len());
    assert!(prop.mzis() * 4 < orig.mzis() + 4 * 4000);
}
