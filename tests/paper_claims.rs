//! Integration tests pinning the paper's quantitative claims: every
//! closed-form area number of Table II, the decoder ordering of Fig. 9,
//! the device relationships of Fig. 7 — plus one *trained* golden row:
//! the Table II LeNet-5 (CNN) row hardware-verified through the conv
//! lowering, pinning the electronic-vs-deployed accuracy gap.

use oplix_photonics::count::{mzi_count, reduction_ratio};
use oplix_photonics::decoder::DecoderKind;
use oplixnet::experiments::fig7::Fig7Model;
use oplixnet::experiments::fig9::{normalized_area, Fig9Model};
use oplixnet::spec::{fcnn_orig, fcnn_prop, lenet5_orig, lenet5_prop, resnet_orig, resnet_prop};

#[test]
fn table2_area_column_digit_for_digit() {
    // Paper Table II, #MZI (×10⁴):      Orig.   Prop.
    //   FCNN                            31.7    7.9
    //   LeNet-5                         11.5    2.9
    //   ResNet-20                      116.6   29.1
    //   ResNet-32                      205.1   51.5
    assert_eq!(fcnn_orig().mzis_e4(), 31.7);
    assert_eq!(fcnn_prop().mzis_e4(), 7.9);
    assert_eq!(lenet5_orig().mzis_e4(), 11.5);
    assert_eq!(lenet5_prop().mzis_e4(), 2.9);
    // ResNets land within one rounding step of the paper (116.7 vs 116.6,
    // 51.6 vs 51.5) — see EXPERIMENTS.md for the convention notes.
    assert!((resnet_orig(20, 10).mzis_e4() - 116.6).abs() <= 0.2);
    assert_eq!(resnet_prop(20, 10).mzis_e4(), 29.1);
    assert!((resnet_orig(32, 100).mzis_e4() - 205.1).abs() <= 0.2);
    assert!((resnet_prop(32, 100).mzis_e4() - 51.5).abs() <= 0.2);
}

#[test]
fn table2_reduction_column() {
    // Paper: 75.03 %, 74.62 %, 75.06 %, 74.88 %.
    let cases = [
        (fcnn_orig().mzis(), fcnn_prop().mzis(), 0.7503),
        (lenet5_orig().mzis(), lenet5_prop().mzis(), 0.7462),
        (
            resnet_orig(20, 10).mzis(),
            resnet_prop(20, 10).mzis(),
            0.7506,
        ),
        (
            resnet_orig(32, 100).mzis(),
            resnet_prop(32, 100).mzis(),
            0.7488,
        ),
    ];
    for (orig, prop, expect) in cases {
        let red = reduction_ratio(orig, prop);
        assert!(
            (red - expect).abs() < 0.003,
            "expected ~{expect}, got {red}"
        );
    }
}

#[test]
fn conclusion_claim_reduction_band() {
    // Paper §V: "74.62 % ~ 75.06 % area reduction".
    let reductions = [
        reduction_ratio(fcnn_orig().mzis(), fcnn_prop().mzis()),
        reduction_ratio(lenet5_orig().mzis(), lenet5_prop().mzis()),
        reduction_ratio(resnet_orig(20, 10).mzis(), resnet_prop(20, 10).mzis()),
        reduction_ratio(resnet_orig(32, 100).mzis(), resnet_prop(32, 100).mzis()),
    ];
    for r in reductions {
        assert!(
            (0.744..0.753).contains(&r),
            "reduction {r} outside the band"
        );
    }
}

#[test]
fn paper_mzi_formula() {
    // §II-A: n(n-1)/2 + min(m,n) + m(m-1)/2, and Fig. 1(b)'s 4×4 = 6 MZIs.
    assert_eq!(mzi_count(4, 4), 6 + 4 + 6);
    assert_eq!(mzi_count(100, 784), 784 * 783 / 2 + 100 + 100 * 99 / 2);
}

#[test]
fn fig9_decoder_area_ordering_everywhere() {
    for model in Fig9Model::all() {
        let coh = normalized_area(model, DecoderKind::Coherent);
        let merge = normalized_area(model, DecoderKind::Merge);
        let unitary = normalized_area(model, DecoderKind::Unitary);
        let linear = normalized_area(model, DecoderKind::Linear);
        assert_eq!(coh, 1.0);
        assert!(
            coh < merge && merge < unitary && unitary < linear,
            "{model:?}: {coh} {merge} {unitary} {linear}"
        );
    }
}

#[test]
fn fig9_merge_overhead_band_for_ten_class_models() {
    // Paper: merge costs 0.04 %–0.73 % more area than coherent.
    for model in [Fig9Model::Fcnn, Fig9Model::Lenet5, Fig9Model::Resnet20] {
        let over = normalized_area(model, DecoderKind::Merge) - 1.0;
        assert!(
            (0.0004..0.0073).contains(&over),
            "{model:?}: overhead {over}"
        );
    }
}

#[test]
fn fig7_device_relationships() {
    use oplix_offt::cost::OfftCostModel;
    use oplixnet::spec::LayerShape;
    // For every model: OplixNet uses fewer DCs and PSs than OFFT; OFFT
    // holds fewer parameters than OplixNet (the paper notes Model2 as the
    // parameter exception in accuracy, not in counts; our OFFT always
    // compresses parameters).
    for m in Fig7Model::all() {
        let oplix_mzis: u64 = m.oplix_spec().layers.iter().map(LayerShape::mzis).sum();
        let offt = OfftCostModel::new(8)
            .network_cost(&m.widths.iter().map(|&w| w as u64).collect::<Vec<_>>());
        assert!(2 * oplix_mzis < offt.dcs, "{}: DC", m.name);
        assert!(oplix_mzis < offt.pss, "{}: PS", m.name);
        assert!(m.oplix_spec().params() > offt.params, "{}: params", m.name);
        // And both beat the original ONN on devices.
        let orig: u64 = m.orig_spec().layers.iter().map(LayerShape::mzis).sum();
        assert!(oplix_mzis < orig);
        assert!(offt.pss < orig);
    }
}

#[test]
fn table2_lenet_row_hardware_verifies_with_bounded_gap() {
    // The Table II LeNet-5 row ("Prop.": split LeNet on the CL
    // assignment), trained at quick scale and *hardware-verified* through
    // the im2col conv lowering — the golden regression tying the conv
    // deployment path to a paper claim, like the FCNN rows. The pinned
    // fact is the electronic-vs-deployed accuracy gap (< 0.05, the same
    // bar the FCNN pipeline pins); the absolute accuracy at this scale is
    // only sanity-checked.
    use oplix_datasets::assign::AssignmentKind;
    use oplix_datasets::synth::{colors, SynthConfig};
    use oplixnet::engine::InferenceEngine;
    use oplixnet::experiments::TrainSetup;
    use oplixnet::stage::{
        AssignStage, AssignedData, DatasetPair, DeployStage, DeployedModel, EvaluateStage, Stage,
        StageExt, TrainStage,
    };
    use oplixnet::zoo::{build_lenet, LenetConfig, ModelVariant};
    use rand::rngs::StdRng;

    let variant = ModelVariant::Split(DecoderKind::Merge);
    let mk = |samples, seed| SynthConfig {
        height: 8,
        width: 8,
        num_classes: 10,
        samples,
        seed,
        ..Default::default()
    };
    let pair = DatasetPair::new(colors(&mk(200, 21)), colors(&mk(80, 22)));
    let assign = AssignStage::image(AssignmentKind::ChannelLossless);
    let train = TrainStage::new(
        Box::new(move |data: &AssignedData, rng: &mut StdRng| {
            // The halved (split) LeNet of Table II at training scale.
            let full = LenetConfig::training_scale(3, data.raw_shape.1, data.classes);
            Ok(build_lenet(&full.halved(), variant, rng))
        }),
        TrainSetup {
            epochs: 8,
            batch: 32,
            lr: 0.1,
            momentum: 0.9,
            weight_decay: 1e-4,
        },
        31,
    );
    let trained = assign.then(train).run(pair).expect("assign + train");
    let data = trained.data.clone();
    let deployed = DeployStage::new(variant.detection())
        .run(trained)
        .expect("the LeNet body deploys through the conv lowering");
    let streamed = EvaluateStage::with_batch_size(32)
        .run(deployed)
        .expect("hardware evaluation");
    assert!(
        (0.0..=1.0).contains(&streamed.software_accuracy) && streamed.software_accuracy > 0.1,
        "LeNet failed to learn at all: {}",
        streamed.software_accuracy
    );
    assert!(
        streamed.hardware_gap() < 0.05,
        "Table II LeNet row: electronic {} vs deployed {}",
        streamed.software_accuracy,
        streamed.hardware_accuracy
    );

    // The same row evaluated *through the serving front end* (queue →
    // micro-batcher → engine): the serving layer's bitwise contract means
    // identical accuracy.
    let engine = InferenceEngine::from_network_shaped(
        &streamed.network,
        Some(data.assigned_shape),
        variant.detection(),
        oplix_photonics::svd_map::MeshStyle::Clements,
    )
    .expect("redeploys from the cache");
    let deployed_b = DeployedModel {
        engine,
        network: streamed.network,
        software_accuracy: streamed.software_accuracy,
        data,
    };
    let served = EvaluateStage::with_batch_size(32)
        .with_concurrent_clients(3)
        .run(deployed_b)
        .expect("served evaluation");
    assert_eq!(streamed.hardware_accuracy, served.hardware_accuracy);
    assert_eq!(served.hardware_abstained, 0);
}

#[test]
fn fcnn_split_halves_every_dimension() {
    let orig = fcnn_orig();
    let prop = fcnn_prop();
    // 784 -> 392, 100 -> 50, classifier 10 -> 10.
    assert_eq!(orig.layers.len(), prop.layers.len());
    assert!(prop.mzis() * 4 < orig.mzis() + 4 * 4000);
}
