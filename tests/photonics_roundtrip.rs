//! Integration tests for the photonics ↔ linalg ↔ nn seams: weights
//! trained in the nn crate must run identically on the simulated chip.

use oplix_linalg::{CMatrix, Complex64};
use oplix_nn::ctensor::CTensor;
use oplix_nn::layers::{CDense, CLayer};
use oplix_nn::tensor::Tensor;
use oplix_photonics::clements::decompose_clements;
use oplix_photonics::encoder::{ComplexEncoder, DcComplexEncoder};
use oplix_photonics::reck::decompose_reck;
use oplix_photonics::svd_map::{MeshStyle, PhotonicLayer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Lifts a trained CDense weight (with bias column) to a complex matrix.
fn dense_to_cmatrix(dense: &CDense) -> CMatrix {
    let (w_re, w_im) = dense.weight();
    let (m, n) = (dense.n_out(), dense.n_in());
    CMatrix::from_fn(m, n, |i, j| {
        Complex64::new(w_re.at2(i, j) as f64, w_im.at2(i, j) as f64)
    })
}

#[test]
fn trained_layer_runs_identically_on_chip() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut dense = CDense::new(6, 4, &mut rng);

    // "Train" a little: nudge the weights with a few random gradient-like
    // updates so we are not deploying the raw init.
    for step in 0..5 {
        let x = CTensor::new(
            Tensor::random_uniform(&[3, 6], 1.0, &mut rng),
            Tensor::random_uniform(&[3, 6], 1.0, &mut rng),
        );
        let y = dense.forward(&x, true);
        let dy = CTensor::new(Tensor::full(y.shape(), 0.1), Tensor::full(y.shape(), -0.1));
        dense.backward(&dy);
        dense.visit_params(&mut |p| {
            for (w, &g) in p.value.as_mut_slice().iter_mut().zip(p.grad.as_slice()) {
                *w -= 0.01 * g;
            }
            p.zero_grad();
        });
        let _ = step;
    }

    // Deploy (bias-free path: zero biases at init, never updated above
    // beyond the gradient steps — include them via forward comparison on
    // the weight part only).
    let w = dense_to_cmatrix(&dense);
    let chip = PhotonicLayer::from_matrix(&w, MeshStyle::Clements);
    let x: Vec<Complex64> = (0..6)
        .map(|k| Complex64::new(0.1 * k as f64, -0.05))
        .collect();
    let optical = chip.forward(&x);
    let exact = w.mul_vec(&x);
    for (a, b) in optical.iter().zip(&exact) {
        assert!((*a - *b).abs() < 1e-7);
    }
}

#[test]
fn encoder_mesh_detector_chain() {
    // Two real values -> DC encoder -> 4x4 mesh -> intensities, checked
    // against direct matrix arithmetic.
    let mut rng = StdRng::seed_from_u64(2);
    let u = CMatrix::random_unitary(4, &mut rng);
    let mesh = decompose_clements(&u);

    let enc = DcComplexEncoder::new();
    let fields: Vec<Complex64> = enc.encode(&[(0.5, 0.1), (-0.2, 0.3), (0.0, -0.6), (0.8, 0.0)]);
    let out_mesh = mesh.propagate(&fields);
    let out_exact = u.mul_vec(&fields);
    for (a, b) in out_mesh.iter().zip(&out_exact) {
        assert!((*a - *b).abs() < 1e-8);
    }
    // Intensity detection conserves total power through the unitary.
    let p_in: f64 = fields.iter().map(|z| z.norm_sqr()).sum();
    let p_out: f64 = out_mesh.iter().map(|z| z.norm_sqr()).sum();
    assert!((p_in - p_out).abs() < 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_unitary_decomposes_both_ways(seed in 0u64..500, n in 2usize..10) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = CMatrix::random_unitary(n, &mut rng);
        let reck = decompose_reck(&u);
        let clements = decompose_clements(&u);
        prop_assert!(reck.matrix().max_abs_diff(&u) < 1e-8);
        prop_assert!(clements.matrix().max_abs_diff(&u) < 1e-8);
        prop_assert_eq!(reck.mzi_count(), clements.mzi_count());
    }

    #[test]
    fn any_weight_deploys(seed in 0u64..500, m in 1usize..7, n in 1usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = CMatrix::from_fn(m, n, |_, _| {
            Complex64::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0))
        });
        let layer = PhotonicLayer::from_matrix(&w, MeshStyle::Clements);
        prop_assert!(layer.matrix().max_abs_diff(&w) < 1e-7);
    }

    #[test]
    fn encoder_is_exact_for_any_pair(a in -10.0f64..10.0, b in -10.0f64..10.0) {
        let z = DcComplexEncoder::new().encode_pair(a, b);
        prop_assert!((z - Complex64::new(a, b)).abs() < 1e-9);
    }
}
