//! Integration tests for zero-downtime versioned hot swap and canary
//! routing (`oplixnet::serve` + `oplixnet::router`):
//!
//! * under concurrent submitters, every ticket across a sequence of hot
//!   swaps resolves against exactly the version it was admitted under,
//!   bitwise identical to a dedicated engine of that version;
//! * any interleaving of {submit, swap, drain} never loses or
//!   double-serves a ticket (property test);
//! * canary tallies exactly match replaying the same seeded admission
//!   partition through two direct engines, and promote/rollback leave
//!   the lane serving only the chosen version;
//! * deregistering a router lane while a swap is still queued returns
//!   the *currently serving* engine and aborts the swap cleanly, its
//!   replacement coming back through the `SwapTicket`;
//! * every failure mode surfaces as a typed error.
//!
//! The CI matrix runs this binary under `OPLIX_JOBS ∈ {2, 7}`; nothing
//! here may depend on the worker budget.

use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::{digits, SynthConfig};
use oplix_photonics::decoder::DecoderKind;
use oplix_photonics::svd_map::MeshStyle;
use oplixnet::engine::{Confidence, InferenceEngine};
use oplixnet::serve::{sample_row, CanaryPolicy, Prediction, Server, SwapOutcome};
use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
use oplixnet::{DeployedDetection, Error};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Barrier;
use std::time::Duration;

fn test_view(samples: usize, seed: u64) -> oplix_nn::trainer::CDataset {
    let raw = digits(&SynthConfig {
        height: 8,
        width: 8,
        samples,
        seed,
        ..Default::default()
    });
    AssignmentKind::SpatialInterlace.apply_dataset_flat(&raw)
}

/// A deployable engine whose weights are a pure function of `seed` —
/// "version v" in these tests is the engine from seed `BASE + v`.
fn engine(seed: u64, input: usize) -> InferenceEngine {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = build_fcnn(
        &FcnnConfig {
            input,
            hidden: 16,
            classes: 10,
        },
        ModelVariant::Split(DecoderKind::Merge),
        &mut rng,
    );
    InferenceEngine::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
        .expect("FCNN deploys")
}

/// Stress tentpole: 8 concurrent submitters across 4 versions (3 hot
/// swaps mid-traffic). Round structure — all clients submit, barrier,
/// the coordinator swaps, barrier — makes the per-version ticket counts
/// deterministic; the served classes must be bitwise the dedicated
/// engine of each ticket's admitted version.
#[test]
fn concurrent_swaps_serve_every_ticket_by_its_admitted_version() {
    const CLIENTS: usize = 8;
    const PER_ROUND: usize = 31;
    const VERSIONS: usize = 4; // v1..v4: 3 swaps
    const BASE: u64 = 71_000;

    let test = test_view(CLIENTS * PER_ROUND, 70_999);
    let input = test.inputs.shape()[1];
    let n = CLIENTS * PER_ROUND;

    // Dedicated reference engines, one per version.
    let want: Vec<Vec<usize>> = (1..=VERSIONS as u64)
        .map(|v| {
            engine(BASE + v, input)
                .classify(&test.inputs)
                .expect("reference classify")
        })
        .collect();

    let server = Server::builder()
        .max_batch(32)
        .max_wait(Duration::from_micros(200))
        .queue_cap(256)
        .workers(0)
        .serve_engine(engine(BASE + 1, input));
    assert_eq!(server.version(), 1);

    // Two barriers per round: everyone submitted, then swap completed.
    let submitted = Barrier::new(CLIENTS + 1);
    let swapped = Barrier::new(CLIENTS + 1);

    let resolved: Vec<Vec<(usize, u64, Prediction)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let client = server.client();
                let (test, submitted, swapped) = (&test, &submitted, &swapped);
                scope.spawn(move || {
                    let mut tickets = Vec::new();
                    for round in 0..VERSIONS {
                        for k in 0..PER_ROUND {
                            let sample = (round * PER_ROUND + k + c * 17) % (CLIENTS * PER_ROUND);
                            let ticket = client
                                .submit(sample_row(&test.inputs, sample))
                                .expect("admits");
                            assert_eq!(
                                ticket.version(),
                                round as u64 + 1,
                                "round {round}: admission stamped the wrong version"
                            );
                            tickets.push((sample, ticket));
                        }
                        submitted.wait();
                        swapped.wait();
                    }
                    tickets
                        .into_iter()
                        .map(|(sample, t)| {
                            let version = t.version();
                            (sample, version, t.wait().expect("ticket resolves"))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();

        // Coordinator: swap between rounds, while traffic is queued.
        for v in 2..=VERSIONS as u64 {
            submitted.wait();
            let swap = server.swap(engine(BASE + v, input)).expect("swap admits");
            match swap.wait().expect("swap resolves") {
                SwapOutcome::Applied { retired, version } => {
                    assert_eq!(version, v);
                    // The retired engine is bitwise the previous version.
                    let mut retired = retired;
                    assert_eq!(
                        retired.classify(&test.inputs).expect("retired classifies"),
                        want[v as usize - 2],
                        "swap to v{v}: retired engine is not the v{} deployment",
                        v - 1
                    );
                }
                SwapOutcome::Aborted { .. } => panic!("server is live; swap must apply"),
            }
            assert_eq!(server.version(), v);
            swapped.wait();
        }
        // Final round has no swap after it.
        submitted.wait();
        swapped.wait();

        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Zero lost, zero duplicated: every submitted ticket resolved once.
    let mut by_version = [0u64; VERSIONS + 1];
    for per_client in &resolved {
        assert_eq!(per_client.len(), VERSIONS * PER_ROUND);
        for &(sample, version, prediction) in per_client {
            by_version[version as usize] += 1;
            let got = prediction.class().expect("no confidence policy is set");
            assert_eq!(
                got,
                want[version as usize - 1][sample],
                "sample {sample} admitted under v{version} was not served by v{version}"
            );
        }
    }
    for v in 1..=VERSIONS {
        assert_eq!(
            by_version[v],
            (CLIENTS * PER_ROUND) as u64,
            "v{v}: deterministic round structure fixes the per-version count"
        );
    }

    let stats = server.stats();
    assert_eq!(stats.version, VERSIONS as u64);
    assert_eq!(stats.swaps, VERSIONS as u64 - 1);
    assert_eq!(stats.submitted, (VERSIONS * n) as u64);
    assert_eq!(stats.served, (VERSIONS * n) as u64);
    assert_eq!(stats.queue_depth, 0);

    // The engine that comes back out of shutdown is the last version.
    let mut last = server.shutdown();
    assert_eq!(
        last.classify(&test.inputs).expect("classifies"),
        want[VERSIONS - 1]
    );
}

/// Canary accounting: the seeded admission split is deterministic, and
/// the per-version tallies exactly match replaying the observed
/// partition through two direct engines under the effective confidence
/// policy. Promote freezes the tallies and leaves the lane serving only
/// the candidate; a later rollback leaves it on the (new) baseline.
#[test]
fn canary_tallies_match_direct_replay_and_promote_rollback_settle_the_lane() {
    const BASE: u64 = 72_000;
    const N: usize = 200;

    let test = test_view(N, 71_999);
    let input = test.inputs.shape()[1];
    let labels: Vec<usize> = test.labels.clone();

    let confidence = Confidence {
        threshold: 0.25,
        top_k: 3,
    };
    let policy = CanaryPolicy {
        fraction: 0.35,
        confidence: Some(confidence),
        seed: 42,
    };

    // The observed partition must be reproducible: run the same admission
    // sequence against two independent servers with the same seed.
    let partition = |server: &Server| -> Vec<u64> {
        let client = server.client();
        let tickets: Vec<_> = (0..N)
            .map(|i| {
                client
                    .submit_labeled(sample_row(&test.inputs, i), labels[i])
                    .expect("admits")
            })
            .collect();
        let versions: Vec<u64> = tickets.iter().map(|t| t.version()).collect();
        for t in tickets {
            t.wait().expect("ticket resolves");
        }
        versions
    };

    let server = Server::builder()
        .max_batch(16)
        .workers(0)
        .serve_engine(engine(BASE + 1, input));
    server
        .canary(engine(BASE + 2, input), policy)
        .expect("canary stages");
    let versions = partition(&server);

    let replay_server = Server::builder()
        .max_batch(16)
        .workers(0)
        .serve_engine(engine(BASE + 1, input));
    replay_server
        .canary(engine(BASE + 2, input), policy)
        .expect("canary stages");
    assert_eq!(
        partition(&replay_server),
        versions,
        "the seeded split must reproduce the exact partition"
    );
    drop(replay_server);

    // Replay the partition through two direct engines under the same
    // (canary-effective) confidence policy.
    let mut direct = [engine(BASE + 1, input), engine(BASE + 2, input)];
    let mut expect = [[0u64; 5]; 2]; // [routed, served, accepted, abstained, correct]
    for (i, &v) in versions.iter().enumerate() {
        let slot = (v - 1) as usize;
        let logits = direct[slot]
            .predict(&sample_row(&test.inputs, i))
            .expect("direct predict");
        let (best, score) = confidence.score(&logits);
        expect[slot][0] += 1; // routed
        expect[slot][1] += 1; // served (all tickets were waited)
        if score >= confidence.threshold {
            expect[slot][2] += 1; // accepted
            if best == labels[i] {
                expect[slot][4] += 1; // correct
            }
        } else {
            expect[slot][3] += 1; // abstained
        }
    }

    let stats = server.canary_stats().expect("canary ran");
    assert_eq!(stats.fraction, 0.35);
    assert_eq!(stats.seed, 42);
    for (slot, tally) in [(0, stats.baseline), (1, stats.candidate)] {
        assert_eq!(tally.version, slot as u64 + 1);
        assert_eq!(tally.routed, expect[slot][0], "v{}: routed", slot + 1);
        assert_eq!(tally.served, expect[slot][1], "v{}: served", slot + 1);
        assert_eq!(tally.accepted, expect[slot][2], "v{}: accepted", slot + 1);
        assert_eq!(tally.abstained, expect[slot][3], "v{}: abstained", slot + 1);
        assert_eq!(
            tally.labeled,
            expect[slot][1],
            "v{}: every submission carried a label",
            slot + 1
        );
        assert_eq!(tally.correct, expect[slot][4], "v{}: correct", slot + 1);
    }
    assert_eq!(stats.baseline.served + stats.candidate.served, N as u64);

    // Promote: the candidate takes the lane; the retired baseline comes
    // back bitwise; the frozen tallies survive for the audit trail.
    let want_v2 = direct[1].classify(&test.inputs).expect("v2 reference");
    match server
        .promote()
        .expect("promote admits")
        .wait()
        .expect("promote applies")
    {
        SwapOutcome::Applied { retired, version } => {
            let mut retired = retired;
            assert_eq!(version, 2);
            assert_eq!(
                retired.classify(&test.inputs).expect("retired classifies"),
                direct[0].classify(&test.inputs).expect("v1 reference"),
                "promote must retire the v1 baseline"
            );
        }
        SwapOutcome::Aborted { .. } => panic!("server is live; promote must apply"),
    }
    assert_eq!(server.version(), 2);
    assert_eq!(
        server
            .canary_stats()
            .expect("frozen stats remain")
            .candidate
            .routed,
        expect[1][0]
    );

    // The lane now serves only v2.
    let client = server.client();
    let after: Vec<_> = (0..24)
        .map(|i| client.submit(sample_row(&test.inputs, i)).expect("admits"))
        .collect();
    for (i, t) in after.into_iter().enumerate() {
        assert_eq!(t.version(), 2);
        assert_eq!(
            t.wait().expect("resolves").class().expect("no policy now"),
            want_v2[i]
        );
    }

    // A second canary (v3), rolled back: the candidate comes back out,
    // and the lane keeps serving v2.
    server
        .canary(engine(BASE + 3, input), CanaryPolicy::default())
        .expect("second canary stages");
    match server
        .rollback()
        .expect("rollback admits")
        .wait()
        .expect("rollback applies")
    {
        SwapOutcome::Applied { retired, version } => {
            let mut candidate = retired;
            assert_eq!(version, 2, "rollback keeps the baseline version");
            assert_eq!(
                candidate.classify(&test.inputs).expect("classifies"),
                engine(BASE + 3, input)
                    .classify(&test.inputs)
                    .expect("v3 reference"),
                "rollback must hand the candidate back"
            );
        }
        SwapOutcome::Aborted { .. } => panic!("server is live; rollback must apply"),
    }
    assert_eq!(server.version(), 2);
    let t = client
        .submit(sample_row(&test.inputs, 0))
        .expect("admits after rollback");
    assert_eq!(t.version(), 2);
    assert_eq!(
        t.wait().expect("resolves").class().expect("no policy"),
        want_v2[0]
    );
}

/// Regression (deregister-during-swap): a router lane deregistered while
/// a swap control is still queued must hand back the *currently serving*
/// engine and abort the swap cleanly — the replacement returns through
/// the `SwapTicket`, and every admitted request still resolves against
/// its admitted version.
#[test]
fn deregister_during_swap_returns_serving_engine_and_aborts_the_swap() {
    use oplixnet::router::{Router, RouterRequest};

    const BASE: u64 = 73_000;
    const BACKLOG: usize = 256;

    let test = test_view(64, 72_999);
    let input = test.inputs.shape()[1];
    let want: Vec<Vec<usize>> = (1..=2u64)
        .map(|v| {
            engine(BASE + v, input)
                .classify(&test.inputs)
                .expect("reference classify")
        })
        .collect();

    // The abort path needs the swap control to apply after `deregister`
    // set the stop flag. A large backlog ahead of the control makes that
    // overwhelmingly likely (the batcher must flush the whole backlog
    // before applying the control, while deregister stops the lane
    // within microseconds); retry a few times and require the abort path
    // to be observed. Invariants hold on every attempt either way.
    let mut aborted_seen = false;
    for attempt in 0..5 {
        let router = Router::builder()
            .max_batch(8)
            .max_wait(Duration::from_micros(50))
            .queue_cap(BACKLOG + 16)
            .build();
        router
            .register_engine("m", engine(BASE + 1, input))
            .expect("registers");

        let client = router.client();
        let tickets: Vec<_> = (0..BACKLOG)
            .map(|k| {
                let sample = k % 64;
                (
                    sample,
                    client
                        .submit(RouterRequest::new("m", sample_row(&test.inputs, sample)))
                        .expect("admits"),
                )
            })
            .collect();

        let swap = router
            .swap_model_engine("m", engine(BASE + 2, input))
            .expect("swap admits");
        let mut deregistered = router.deregister("m").expect("lane comes back");

        // Every admitted ticket resolves against its admitted version.
        for (sample, ticket) in tickets {
            let served = ticket.wait().expect("ticket resolves");
            let got = served.prediction.class().expect("no policy");
            assert_eq!(
                got,
                want[served.version as usize - 1][sample],
                "attempt {attempt}: ticket served by the wrong version"
            );
        }

        match swap.wait().expect("swap resolves either way") {
            SwapOutcome::Aborted { replacement } => {
                aborted_seen = true;
                let mut replacement = replacement;
                assert_eq!(
                    replacement.classify(&test.inputs).expect("classifies"),
                    want[1],
                    "attempt {attempt}: aborted swap must hand the v2 candidate back"
                );
                assert_eq!(
                    deregistered.classify(&test.inputs).expect("classifies"),
                    want[0],
                    "attempt {attempt}: deregister must return the serving (v1) engine"
                );
            }
            SwapOutcome::Applied { retired, version } => {
                // The swap won the race: deregister then returns v2 and
                // the retired engine is v1 — still nothing lost.
                let mut retired = retired;
                assert_eq!(version, 2);
                assert_eq!(
                    retired.classify(&test.inputs).expect("classifies"),
                    want[0],
                    "attempt {attempt}: applied swap must retire the v1 engine"
                );
                assert_eq!(
                    deregistered.classify(&test.inputs).expect("classifies"),
                    want[1],
                    "attempt {attempt}: deregister after an applied swap returns v2"
                );
            }
        }
        if aborted_seen {
            break;
        }
    }
    assert!(
        aborted_seen,
        "the abort path was never exercised in 5 attempts (backlog of {BACKLOG} \
         requests ahead of the control should make it near-certain)"
    );
}

/// Typed errors across the versioned-serving surface — and no engine is
/// ever lost to an error path that could return it.
#[test]
fn versioned_serving_failure_modes_are_typed_errors() {
    use oplixnet::router::Router;

    const BASE: u64 = 74_000;
    let test = test_view(8, 73_999);
    let input = test.inputs.shape()[1];

    let server = Server::builder()
        .workers(0)
        .serve_engine(engine(BASE + 1, input));

    // Wrong candidate geometry: typed mismatch naming the candidate.
    let narrow = {
        let mut rng = StdRng::seed_from_u64(BASE + 9);
        let net = build_fcnn(
            &FcnnConfig {
                input: input / 2,
                hidden: 8,
                classes: 10,
            },
            ModelVariant::Split(DecoderKind::Merge),
            &mut rng,
        );
        InferenceEngine::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
            .expect("deploys")
    };
    match server.swap(narrow) {
        Err(Error::ShapeMismatch { expected, what, .. }) => {
            assert_eq!(expected, input);
            assert_eq!(what, "candidate input width");
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }

    // No canary staged: promote/rollback are typed refusals.
    assert!(matches!(server.promote(), Err(Error::NoCanary)));
    assert!(matches!(server.rollback(), Err(Error::NoCanary)));
    assert!(server.canary_stats().is_none());

    // While a canary is live, version changes are refused.
    server
        .canary(engine(BASE + 2, input), CanaryPolicy::default())
        .expect("canary stages");
    assert!(matches!(
        server.swap(engine(BASE + 3, input)),
        Err(Error::CanaryActive)
    ));
    assert!(matches!(
        server.canary(engine(BASE + 3, input), CanaryPolicy::default()),
        Err(Error::CanaryActive)
    ));
    server
        .rollback()
        .expect("rollback admits")
        .wait()
        .expect("rollback applies");

    // Plain tickets are stamped with the live version.
    let t = server
        .client()
        .submit(sample_row(&test.inputs, 0))
        .expect("admits");
    assert_eq!(t.version(), 1);
    assert!(t.wait().is_ok());

    // After shutdown every versioning call is a typed refusal.
    let client = server.client();
    let _ = server.shutdown();
    assert!(matches!(
        client.submit(sample_row(&test.inputs, 0)),
        Err(Error::ServerClosed)
    ));

    // Router-side: unknown model and geometry mismatches are typed too.
    let router = Router::builder().build();
    router
        .register_engine("m", engine(BASE + 4, input))
        .expect("registers");
    assert!(matches!(
        router.swap_model_engine("ghost", engine(BASE + 5, input)),
        Err(Error::UnknownModel { .. })
    ));
    let narrow = {
        let mut rng = StdRng::seed_from_u64(BASE + 10);
        let net = build_fcnn(
            &FcnnConfig {
                input: input / 2,
                hidden: 8,
                classes: 10,
            },
            ModelVariant::Split(DecoderKind::Merge),
            &mut rng,
        );
        InferenceEngine::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
            .expect("deploys")
    };
    assert!(matches!(
        router.swap_model_engine("m", narrow),
        Err(Error::ShapeMismatch {
            what: "candidate input width",
            ..
        })
    ));
    let _ = router.deregister("m").expect("lane comes back");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of {submit, swap, drain-outstanding} never loses
    /// or double-serves a ticket: every ticket resolves exactly once, to
    /// the dedicated-engine prediction of exactly the version it was
    /// admitted under, and the final drain (shutdown) leaves nothing
    /// behind.
    #[test]
    fn any_interleaving_of_submit_swap_drain_resolves_every_ticket(
        ops in proptest::collection::vec((0u8..8, 0usize..32), 1..=24)
    ) {
        const BASE: u64 = 75_000;
        let test = test_view(32, 74_999);
        let input = test.inputs.shape()[1];

        let max_versions = 1 + ops.iter().filter(|(op, _)| *op == 6).count();
        let want: Vec<Vec<usize>> = (1..=max_versions as u64)
            .map(|v| {
                engine(BASE + v, input)
                    .classify(&test.inputs)
                    .expect("reference classify")
            })
            .collect();

        let server = Server::builder()
            .max_batch(4)
            .max_wait(Duration::from_micros(50))
            .workers(0)
            .serve_engine(engine(BASE + 1, input));
        let client = server.client();

        let mut outstanding: Vec<(usize, oplixnet::serve::Ticket)> = Vec::new();
        let mut submitted = 0u64;
        let mut resolved = 0u64;
        let mut version = 1u64;
        let drain = |outstanding: &mut Vec<(usize, oplixnet::serve::Ticket)>,
                     resolved: &mut u64| {
            for (sample, ticket) in outstanding.drain(..) {
                let v = ticket.version();
                assert!(v >= 1 && v <= max_versions as u64);
                let got = ticket
                    .wait()
                    .expect("ticket resolves")
                    .class()
                    .expect("no confidence policy");
                assert_eq!(
                    got,
                    want[v as usize - 1][sample],
                    "ticket admitted under v{v} served by another version"
                );
                *resolved += 1;
            }
        };

        for &(op, sample) in &ops {
            match op {
                // Submit dominates the mix, like real traffic.
                0..=5 => {
                    let ticket = client
                        .submit(sample_row(&test.inputs, sample))
                        .expect("admits");
                    prop_assert_eq!(ticket.version(), version);
                    outstanding.push((sample, ticket));
                    submitted += 1;
                }
                6 => {
                    version += 1;
                    let swap = server
                        .swap(engine(BASE + version, input))
                        .expect("swap admits");
                    prop_assert!(swap.wait().expect("swap resolves").is_applied());
                }
                _ => drain(&mut outstanding, &mut resolved),
            }
        }
        drain(&mut outstanding, &mut resolved);
        prop_assert_eq!(resolved, submitted, "lost or double-served tickets");

        let stats = server.stats();
        prop_assert_eq!(stats.submitted, submitted);
        prop_assert_eq!(stats.served, submitted);
        prop_assert_eq!(stats.version, version);
        prop_assert_eq!(stats.swaps, version - 1);
        let _ = server.shutdown();
    }
}
