//! Integration tests for serving under accumulating phase drift
//! (`oplix_photonics::PhaseDrift` + `oplixnet::serve`):
//!
//! * an engine-level `DriftSession` degrades agreement with the clean
//!   deployment as the walk accumulates and restores the phases bitwise
//!   on drop;
//! * the end-to-end online-recalibration scenario: a server configured
//!   with `.drift(...)` wanders between micro-batches, windowed
//!   agreement with the clean deployment degrades, a mid-serve hot swap
//!   to a freshly calibrated deployment restores it, and throughput
//!   stays positive throughout (every ticket resolves; no stall at the
//!   swap boundary).
//!
//! Agreement is measured against the clean engine's own predictions
//! (pseudo-labels), so no training is needed and the degradation signal
//! is exactly "how far the drifted hardware strayed from calibration".
//!
//! The CI matrix runs this binary under `OPLIX_JOBS ∈ {2, 7}`; nothing
//! here may depend on the worker budget.

use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::{digits, SynthConfig};
use oplix_nn::network::Network;
use oplix_photonics::decoder::DecoderKind;
use oplix_photonics::svd_map::MeshStyle;
use oplix_photonics::PhaseDrift;
use oplixnet::engine::InferenceEngine;
use oplixnet::serve::{sample_row, Server, SwapOutcome};
use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
use oplixnet::DeployedDetection;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn test_view(samples: usize, seed: u64) -> oplix_nn::trainer::CDataset {
    let raw = digits(&SynthConfig {
        height: 8,
        width: 8,
        samples,
        seed,
        ..Default::default()
    });
    AssignmentKind::SpatialInterlace.apply_dataset_flat(&raw)
}

fn network(seed: u64, input: usize) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    build_fcnn(
        &FcnnConfig {
            input,
            hidden: 16,
            classes: 10,
        },
        ModelVariant::Split(DecoderKind::Merge),
        &mut rng,
    )
}

fn deploy(net: &Network) -> InferenceEngine {
    InferenceEngine::from_network(net, DeployedDetection::Differential, MeshStyle::Clements)
        .expect("FCNN deploys")
}

fn agreement(got: &[usize], want: &[usize]) -> f64 {
    assert_eq!(got.len(), want.len());
    let same = got.iter().zip(want).filter(|(a, b)| a == b).count();
    same as f64 / want.len() as f64
}

#[test]
fn drift_session_degrades_agreement_and_restores_phases_bitwise_on_drop() {
    let test = test_view(120, 80_999);
    let input = test.inputs.shape()[1];
    let net = network(81_000, input);
    let mut engine = deploy(&net);
    let clean = engine.classify(&test.inputs).expect("clean classify");
    let clean_logits = engine.predict_batch(&test.inputs).expect("clean predict");

    let mid_agree;
    let late_agree;
    {
        let mut session = engine.drift_session(PhaseDrift::new(0.05, 4242));
        // Before any step the session is bitwise the clean deployment.
        assert_eq!(
            session.classify(&test.inputs).expect("classify"),
            clean,
            "zero-step session must be the clean deployment"
        );
        for _ in 0..8 {
            session.step();
        }
        mid_agree = agreement(&session.classify(&test.inputs).expect("classify"), &clean);
        for _ in 0..56 {
            session.step();
        }
        late_agree = agreement(&session.classify(&test.inputs).expect("classify"), &clean);
        assert_eq!(session.drift().meshes_stepped() % 64, 0);
    }
    // Degradation accumulates (in expectation; generous slack for the
    // non-monotone sample path) and a long walk strays far.
    assert!(
        late_agree <= mid_agree + 0.1,
        "drift must accumulate: 8 steps {mid_agree} vs 64 steps {late_agree}"
    );
    assert!(
        late_agree < 0.95,
        "64 steps of σ=0.05 must visibly degrade agreement, got {late_agree}"
    );

    // Dropping the session restores the hardware bitwise, not just
    // approximately: the logits, not only the classes, are identical.
    assert_eq!(
        engine
            .predict_batch(&test.inputs)
            .expect("restored predict"),
        clean_logits,
        "drift session failed to restore the clean phases"
    );
}

/// The online-recalibration scenario end to end: serve under drift,
/// watch windowed agreement with the calibrated deployment decay, hot
/// swap to a fresh deployment of the same network mid-serve, and watch
/// agreement recover — with every ticket resolving throughout.
#[test]
fn serving_under_drift_recovers_after_mid_serve_hot_swap() {
    const WINDOW: usize = 24;
    const WINDOWS: usize = 24;
    const N: usize = 96;

    let test = test_view(N, 81_999);
    let input = test.inputs.shape()[1];
    let net = network(82_000, input);

    // Pseudo-labels: the clean deployment's own predictions.
    let clean = deploy(&net).classify(&test.inputs).expect("clean classify");

    // A generous max_wait makes each window coalesce into a single
    // flush (the 24 submits land in microseconds), so the batcher takes
    // one drift step per window and the trajectory is reproducible.
    let server = Server::builder()
        .max_batch(WINDOW)
        .max_wait(Duration::from_millis(50))
        .workers(0)
        .drift(PhaseDrift::new(0.04, 777))
        .serve_engine(deploy(&net));
    let client = server.client();

    let mut serve_window = |w: usize| -> f64 {
        let samples: Vec<usize> = (0..WINDOW).map(|k| (w * WINDOW + k) % N).collect();
        let tickets: Vec<_> = samples
            .iter()
            .map(|&s| {
                (
                    s,
                    client
                        .submit(sample_row(&test.inputs, s))
                        .expect("admits under drift"),
                )
            })
            .collect();
        let got: Vec<(usize, usize)> = tickets
            .into_iter()
            .map(|(s, t)| {
                (
                    s,
                    t.wait()
                        .expect("ticket resolves under drift")
                        .class()
                        .expect("no confidence policy"),
                )
            })
            .collect();
        let same = got.iter().filter(|&&(s, c)| clean[s] == c).count();
        same as f64 / WINDOW as f64
    };

    let pre_swap: Vec<f64> = (0..WINDOWS).map(&mut serve_window).collect();
    let early: f64 = pre_swap[..4].iter().sum::<f64>() / 4.0;
    let late: f64 = pre_swap[WINDOWS - 4..].iter().sum::<f64>() / 4.0;

    // The walk accumulates: late windows agree less with the calibrated
    // deployment than early ones (in expectation — coarse 4-window
    // averages keep the sample path's noise down).
    assert!(
        late < early,
        "drift must degrade agreement over time: early {early} vs late {late}"
    );
    assert!(
        late < 0.9,
        "after {WINDOWS} drifting windows agreement should be visibly degraded, got {late}"
    );

    // Recalibrate mid-serve: hot swap to a fresh deployment of the same
    // network. The swap applies at a micro-batch boundary with traffic
    // still flowing.
    let swap = server.swap_network(&net, DeployedDetection::Differential, MeshStyle::Clements);
    match swap.expect("swap admits").wait().expect("swap resolves") {
        SwapOutcome::Applied { version, .. } => assert_eq!(version, 2),
        SwapOutcome::Aborted { .. } => panic!("server is live; swap must apply"),
    }

    // The first post-swap window serves on freshly calibrated phases
    // (drift keeps walking afterwards, so only the first window is
    // guaranteed near-clean).
    let post_swap = serve_window(WINDOWS);
    assert!(
        post_swap > late,
        "recalibration must restore agreement: post-swap {post_swap} vs late {late}"
    );
    assert!(
        post_swap >= 0.9,
        "the first post-swap window serves near-calibrated phases, got {post_swap}"
    );

    // Throughput stayed positive throughout: every admitted ticket was
    // served (none lost at the swap boundary), and the queue is empty.
    let stats = server.stats();
    assert_eq!(stats.submitted, ((WINDOWS + 1) * WINDOW) as u64);
    assert_eq!(stats.served, stats.submitted);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.version, 2);
    assert_eq!(stats.swaps, 1);
    assert!(stats.batches >= (WINDOWS + 1) as u64 / 2);

    let _ = server.shutdown();
}
