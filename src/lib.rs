//! Umbrella crate for the OplixNet reproduction workspace.
//!
//! This crate exists to host the runnable examples under `examples/` and the
//! cross-crate integration tests under `tests/`. The actual functionality
//! lives in the member crates:
//!
//! * [`oplix_linalg`] — complex numbers, matrices, SVD, FFT.
//! * [`oplix_photonics`] — MZI devices, meshes, decompositions, area/power.
//! * [`oplix_nn`] — split-complex neural-network framework.
//! * [`oplix_datasets`] — synthetic datasets and real-to-complex assignment.
//! * [`oplix_offt`] — FFT-based ONN baseline.
//! * [`oplixnet`] — the stage-based OplixNet pipeline, the batched
//!   inference engine, and the experiment runners.
//!
//! # The pipeline at a glance
//!
//! The user-facing API is staged (see [`oplixnet::stage`]):
//!
//! ```text
//! DatasetPair ─ AssignStage → AssignedData ─ TrainStage → TrainedModel
//!             ─ DeployStage → DeployedModel ─ EvaluateStage → Evaluation
//! ```
//!
//! [`oplixnet::pipeline::OplixNetBuilder`] wires the standard FCNN flow in
//! one call and returns a `Result` (no panicking paths); the produced
//! [`oplixnet::engine::InferenceEngine`] then serves batched queries over
//! the deployed MZI meshes with preallocated buffers, scoped phase-noise
//! sessions and throughput counters:
//!
//! ```
//! use oplix::core::experiments::TrainSetup;
//! use oplix::core::pipeline::OplixNetBuilder;
//! use oplix::datasets::assign::AssignmentKind;
//! use oplix::datasets::synth::{digits, SynthConfig};
//!
//! let train = digits(&SynthConfig { height: 8, width: 8, samples: 80, ..Default::default() });
//! let test = digits(&SynthConfig { height: 8, width: 8, samples: 40, seed: 1, ..Default::default() });
//! let outcome = OplixNetBuilder::new()
//!     .hidden(12)
//!     .mutual_learning(false)
//!     .train_setup(TrainSetup { epochs: 2, batch: 20, lr: 0.05, momentum: 0.9, weight_decay: 1e-4 })
//!     .build(&train, &test)
//!     .run()
//!     .expect("valid geometry; FCNN bodies deploy");
//!
//! let mut engine = outcome.engine;
//! let queries = AssignmentKind::SpatialInterlace.apply_dataset_flat(&test);
//! let classes = engine.classify(&queries.inputs).expect("fan-in matches");
//! assert_eq!(classes.len(), 40);
//! ```
//!
//! For concurrent clients, move the engine behind the serving front end
//! ([`oplixnet::serve`]): a `Server` owns the deployed model behind a
//! bounded request queue, a micro-batcher coalesces submissions into
//! engine batches, and each `Ticket` resolves to the same prediction a
//! direct `classify` call would return — see
//! `examples/concurrent_serving.rs`.
//!
//! See `examples/quickstart.rs` for the full workflow, and
//! `examples/paper_tables.rs` to regenerate every table and figure of the
//! paper.
//!
//! # Workspace invariants
//!
//! The contracts the tests sample — no FMA contraction in kernel crates
//! (the bitwise scalar≡SIMD guarantee), documented `unsafe`, typed errors
//! instead of panics on library paths, deterministic iteration on serving
//! paths, live bench-baseline keys — are enforced *statically* by the
//! workspace's own checker:
//!
//! ```text
//! cargo run -p oplix-lint                       # check; exit 1 on findings
//! cargo run -p oplix-lint -- --write-baseline   # ratchet the pins down
//! ```
//!
//! See the `oplix_lint` crate docs for the rule catalogue, the scoped
//! `// oplix-lint: allow(<rule>, reason = "...")` suppression syntax, and
//! the `lint-baseline.toml` count-pinning workflow.

pub use oplix_datasets as datasets;
pub use oplix_linalg as linalg;
pub use oplix_nn as nn;
pub use oplix_offt as offt;
pub use oplix_photonics as photonics;
pub use oplixnet as core;
