//! Umbrella crate for the OplixNet reproduction workspace.
//!
//! This crate exists to host the runnable examples under `examples/` and the
//! cross-crate integration tests under `tests/`. The actual functionality
//! lives in the member crates:
//!
//! * [`oplix_linalg`] — complex numbers, matrices, SVD, FFT.
//! * [`oplix_photonics`] — MZI devices, meshes, decompositions, area/power.
//! * [`oplix_nn`] — split-complex neural-network framework.
//! * [`oplix_datasets`] — synthetic datasets and real-to-complex assignment.
//! * [`oplix_offt`] — FFT-based ONN baseline.
//! * [`oplixnet`] — the OplixNet framework and experiment runners.

pub use oplix_datasets as datasets;
pub use oplix_linalg as linalg;
pub use oplix_nn as nn;
pub use oplix_offt as offt;
pub use oplix_photonics as photonics;
pub use oplixnet as core;
