//! Domain scenario: which real-to-complex assignment should you use?
//!
//! Reproduces the reasoning behind the paper's Fig. 8 on live data: it
//! measures the pixel/channel correlation statistics of the dataset, trains
//! the split FCNN under each spatial assignment and a LeNet under each
//! channel assignment, and prints accuracy next to the paper-scale area
//! reduction.
//!
//! Run with `cargo run --release --example assignment_study`.

use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::{
    adjacent_pixel_correlation, channel_correlation, colors, digits, symmetric_pixel_correlation,
    SynthConfig,
};
use oplixnet::experiments::fig8::{self, Fig8Model};
use oplixnet::experiments::Scale;

fn main() {
    let scale = Scale::standard();

    // --- Why interlace? Look at the data statistics first. ---
    let probe = digits(&SynthConfig {
        height: 16,
        width: 16,
        samples: 200,
        ..Default::default()
    });
    println!("digit dataset statistics:");
    println!(
        "  adjacent-pixel correlation:   {:+.3}",
        adjacent_pixel_correlation(&probe)
    );
    println!(
        "  180-degree-pair correlation:  {:+.3}",
        symmetric_pixel_correlation(&probe)
    );
    let colour_probe = colors(&SynthConfig {
        height: 16,
        width: 16,
        samples: 200,
        ..Default::default()
    });
    println!("colour dataset statistics:");
    println!(
        "  cross-channel correlation:    {:+.3}",
        channel_correlation(&colour_probe)
    );
    println!();
    println!("The paper's §III-A: the more related the two values packed into one");
    println!("complex number, the smaller the accuracy loss. Adjacent pixels and");
    println!("colour channels are the most correlated pairings available.");
    println!();

    // --- Spatial schemes on the FCNN. ---
    println!("training FCNN under each spatial assignment...");
    let report = fig8::run_model(Fig8Model::Fcnn, &scale);
    print!("{report}");
    println!();

    // --- Channel schemes (and SI) on LeNet-5. ---
    println!("training LeNet-5 under SI / CL / CR...");
    let report = fig8::run_model(Fig8Model::Lenet5, &scale);
    print!("{report}");
    println!();

    // --- The paper-scale area ledger for every scheme. ---
    println!("paper-scale area reductions:");
    for model in [Fig8Model::Fcnn, Fig8Model::Lenet5, Fig8Model::Resnet20] {
        for assignment in model_assignments(model) {
            println!(
                "  {:<10} {:<4} {:>7.2}%",
                model.name(),
                assignment.short_name(),
                100.0 * fig8::area_reduction(model, assignment)
            );
        }
    }
}

fn model_assignments(model: Fig8Model) -> Vec<AssignmentKind> {
    model.assignments()
}
