//! Domain scenario: regenerate every table and figure of the paper in one
//! run (the same code paths the benchmark harness uses).
//!
//! Pass `--quick` to use the smoke-test scale (~1 min); the default
//! standard scale takes several minutes on one CPU because it trains the
//! full model grid. Pass `--jobs N` to bound the shared worker pool every
//! experiment grid draws from (default: available parallelism, or the
//! `OPLIX_JOBS` environment variable).
//!
//! Run with `cargo run --release --example paper_tables -- --quick --jobs 4`.

use oplixnet::experiments::{ablation, fig7, fig8, fig9, table2, table3, Scale};
use oplixnet::pool;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => pool::set_jobs(n),
            _ => {
                eprintln!("--jobs needs a positive integer argument");
                std::process::exit(2);
            }
        }
    }
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::standard()
    };
    println!(
        "running at {} scale ({} jobs): {} train / {} test samples, {} epochs\n",
        if quick { "quick" } else { "standard" },
        pool::jobs(),
        scale.train_samples,
        scale.test_samples,
        scale.setup.epochs
    );

    println!("=== Table II ===");
    let t2 = table2::run(&scale);
    println!("{t2}");

    println!("=== Table III ===");
    let t3 = table3::run(&scale);
    println!("{t3}");

    println!("=== Fig. 7 ===");
    let f7 = fig7::run(&scale);
    println!("{f7}");

    println!("=== Fig. 8 ===");
    let f8 = fig8::run(&scale);
    println!("{f8}");

    println!("=== Fig. 9 ===");
    let f9 = fig9::run(&scale);
    println!("{f9}");

    println!("=== Ablation A1: KD mixing factor ===");
    let a1 = ablation::alpha_sweep(&[0.25, 0.5, 1.0, 2.0], &scale);
    println!("{a1}");

    println!("=== Ablation A2: phase noise ===");
    let a2 = ablation::noise_sweep(&[0.0, 0.01, 0.03, 0.1, 0.3], &scale);
    println!("{a2}");

    println!("=== Ablation A3: static power ===");
    let a3 = ablation::power_comparison(&scale);
    print!("{a3}");
}
