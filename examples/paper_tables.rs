//! Domain scenario: regenerate every table and figure of the paper in one
//! run (the same code paths the benchmark harness uses).
//!
//! Pass `--quick` to use the smoke-test scale (~1 min); the default
//! standard scale takes several minutes on one CPU because it trains the
//! full model grid.
//!
//! Run with `cargo run --release --example paper_tables -- --quick`.

use oplixnet::experiments::{ablation, fig7, fig8, fig9, table2, table3, Scale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::quick() } else { Scale::standard() };
    println!(
        "running at {} scale: {} train / {} test samples, {} epochs\n",
        if quick { "quick" } else { "standard" },
        scale.train_samples,
        scale.test_samples,
        scale.setup.epochs
    );

    println!("=== Table II ===");
    let t2 = table2::run(&scale);
    print!("{t2}\n");

    println!("=== Table III ===");
    let t3 = table3::run(&scale);
    print!("{t3}\n");

    println!("=== Fig. 7 ===");
    let f7 = fig7::run(&scale);
    print!("{f7}\n");

    println!("=== Fig. 8 ===");
    let f8 = fig8::run(&scale);
    print!("{f8}\n");

    println!("=== Fig. 9 ===");
    let f9 = fig9::run(&scale);
    print!("{f9}\n");

    println!("=== Ablation A1: KD mixing factor ===");
    let a1 = ablation::alpha_sweep(&[0.25, 0.5, 1.0, 2.0], &scale);
    print!("{a1}\n");

    println!("=== Ablation A2: phase noise ===");
    let a2 = ablation::noise_sweep(&[0.0, 0.01, 0.03, 0.1, 0.3], &scale);
    print!("{a2}\n");

    println!("=== Ablation A3: static power ===");
    let a3 = ablation::power_comparison(&scale);
    print!("{a3}");
}
