//! Versioned serving quickstart: drift, canary, promote — zero downtime.
//!
//! The online-recalibration story end to end: a deployed model serves
//! under slow thermal phase drift and its agreement with the calibrated
//! deployment decays window by window. A freshly calibrated deployment
//! of the same network is then staged as a *canary* — a seeded fraction
//! of live traffic routes to it while per-version tallies compare the
//! two — and, once the tallies favour it, promoted. The promote applies
//! at a micro-batch boundary with traffic still flowing: no ticket is
//! lost, duplicated or served by the wrong version.
//!
//! Labels here are the clean deployment's own predictions, so the
//! per-version "accuracy" reads as agreement-with-calibration and no
//! training is needed.
//!
//! Run with `cargo run --release --example hot_swap_serving`.

use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::{digits, SynthConfig};
use oplix_photonics::decoder::DecoderKind;
use oplix_photonics::svd_map::MeshStyle;
use oplix_photonics::PhaseDrift;
use oplixnet::engine::InferenceEngine;
use oplixnet::serve::{sample_row, CanaryPolicy, Server, SwapOutcome, Ticket};
use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
use oplixnet::DeployedDetection;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const WINDOW: usize = 32;

fn deploy(net: &oplix_nn::network::Network) -> InferenceEngine {
    InferenceEngine::from_network(net, DeployedDetection::Differential, MeshStyle::Clements)
        .expect("FCNN deploys")
}

fn main() {
    // 1. One model, one test view, and the calibrated reference answers.
    let raw = digits(&SynthConfig {
        height: 8,
        width: 8,
        samples: 128,
        seed: 5,
        ..Default::default()
    });
    let view = AssignmentKind::SpatialInterlace.apply_dataset_flat(&raw);
    let input = view.inputs.shape()[1];
    let net = build_fcnn(
        &FcnnConfig {
            input,
            hidden: 16,
            classes: 10,
        },
        ModelVariant::Split(DecoderKind::Merge),
        &mut StdRng::seed_from_u64(99),
    );
    let clean = deploy(&net).classify(&view.inputs).expect("clean classify");
    let n = view.inputs.shape()[0];

    // 2. Serve under continuous phase drift: one random-walk step per
    //    flushed micro-batch, no restore — exactly the slow thermal
    //    wander a real chip accumulates between recalibrations.
    let server = Server::builder()
        .max_batch(WINDOW)
        .max_wait(Duration::from_millis(20))
        .drift(PhaseDrift::new(0.01, 7))
        .serve_engine(deploy(&net));
    let client = server.client();

    // One micro-batch of traffic — always the same probe samples, so
    // window-over-window agreement is apples-to-apples. Labeled
    // submissions feed the canary tallies once a canary is live.
    let agreement = |labeled: bool| -> f64 {
        let tickets: Vec<(usize, Ticket)> = (0..WINDOW)
            .map(|k| {
                let s = k % n;
                let row = sample_row(&view.inputs, s);
                let t = if labeled {
                    client.submit_labeled(row, clean[s]).expect("admits")
                } else {
                    client.submit(row).expect("admits")
                };
                (s, t)
            })
            .collect();
        let agree: usize = tickets
            .into_iter()
            .map(|(s, t)| {
                let p = t.wait().expect("ticket resolves");
                usize::from(p.class() == Some(clean[s]))
            })
            .sum();
        agree as f64 / WINDOW as f64
    };

    let mut window = 0usize;
    println!("serving v1 under drift (agreement with the calibrated deployment):");
    for _ in 0..12 {
        let a = agreement(false);
        window += 1;
        if window.is_multiple_of(4) {
            println!("  window {window:2}: {a:.2}");
        }
    }

    // 3. Stage a freshly calibrated deployment as a canary: 40 % of
    //    admissions route to it (seeded split — reproducible), labeled
    //    traffic feeds the per-version tallies.
    server
        .canary(
            deploy(&net),
            CanaryPolicy {
                fraction: 0.4,
                confidence: None,
                seed: 21,
            },
        )
        .expect("canary installs");
    for _ in 0..6 {
        let _ = agreement(true);
        window += 1;
    }
    let stats = server.canary_stats().expect("canary is live");
    println!(
        "canary tallies: v{} baseline {:.2} over {} labeled, v{} candidate {:.2} over {} labeled",
        stats.baseline.version,
        stats.baseline.accuracy(),
        stats.baseline.labeled,
        stats.candidate.version,
        stats.candidate.accuracy(),
        stats.candidate.labeled,
    );

    // 4. The candidate (freshly calibrated, barely drifted) wins:
    //    promote it. The change applies at a micro-batch boundary; the
    //    drifted v1 engine comes back out with its counters intact.
    let outcome = server
        .promote()
        .expect("promote admits")
        .wait()
        .expect("promote resolves");
    match outcome {
        SwapOutcome::Applied { retired, version } => println!(
            "promoted to v{version}; retired v1 served {} samples",
            retired.stats().samples
        ),
        SwapOutcome::Aborted { .. } => unreachable!("server is live"),
    }

    println!("serving v{} after recalibration:", server.version());
    for _ in 0..4 {
        let a = agreement(false);
        window += 1;
        println!("  window {window:2}: {a:.2}");
    }

    // 5. Nothing was lost across the version change.
    let stats = server.stats();
    println!(
        "submitted {} = served {} across {} micro-batches, {} version change(s), final version {}",
        stats.submitted, stats.served, stats.batches, stats.swaps, stats.version
    );
    let _ = server.shutdown();
}
