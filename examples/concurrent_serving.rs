//! Concurrent serving quickstart: many clients, one photonic engine.
//!
//! Trains a small split-complex FCNN, deploys it behind the
//! `oplixnet::serve` front end, and fans four client threads out over the
//! test set. Requests coalesce in the bounded queue, the micro-batcher
//! flushes them through the sharded engine, and each ticket resolves to
//! the same prediction a direct `classify` call would have produced — with
//! low-confidence samples reported as abstentions under the configured
//! early-exit policy.
//!
//! Run with `cargo run --release --example concurrent_serving`.

use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::{digits, SynthConfig};
use oplixnet::engine::Confidence;
use oplixnet::experiments::TrainSetup;
use oplixnet::pipeline::OplixNetBuilder;
use oplixnet::serve::{sample_row, Prediction, Server, Ticket};
use oplixnet::stage::DatasetPair;
use std::time::Duration;

fn main() {
    // 1. Train + deploy through the standard pipeline.
    let cfg = SynthConfig {
        height: 8,
        width: 8,
        samples: 400,
        ..Default::default()
    };
    let pair = DatasetPair::new(
        digits(&cfg),
        digits(&SynthConfig {
            samples: 200,
            seed: 1,
            ..cfg
        }),
    );
    let test_view = AssignmentKind::SpatialInterlace.apply_dataset_flat(&pair.test);
    let outcome = OplixNetBuilder::new()
        .hidden(16)
        .mutual_learning(false)
        .train_setup(TrainSetup {
            epochs: 8,
            batch: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
        })
        .build(&pair.train, &pair.test)
        .run()
        .expect("geometry is valid and FCNNs deploy");
    println!(
        "trained: software accuracy {:.3}, hardware accuracy {:.3}",
        outcome.accuracy, outcome.deployed_accuracy
    );

    // 2. Move the deployed engine behind a serving front end.
    let server = Server::builder()
        .max_batch(64)
        .max_wait(Duration::from_micros(500))
        .queue_cap(1024)
        .workers(0) // engine shards on the shared --jobs budget
        .confidence(Confidence {
            threshold: 0.6,
            top_k: 2,
        })
        .serve_engine(outcome.engine);

    // 3. Four concurrent clients split the test set and submit
    //    sample-by-sample; the batcher re-forms batches behind the queue.
    const CLIENTS: usize = 4;
    let n = test_view.inputs.shape()[0];
    let per_client = n.div_ceil(CLIENTS);
    let verdicts: Vec<(usize, Prediction)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let client = server.client();
                let view = &test_view;
                scope.spawn(move || {
                    let lo = c * per_client;
                    let hi = ((c + 1) * per_client).min(n);
                    let tickets: Vec<(usize, Ticket)> = (lo..hi)
                        .map(|i| {
                            let ticket = client
                                .submit(sample_row(&view.inputs, i))
                                .expect("queue admits");
                            (i, ticket)
                        })
                        .collect();
                    tickets
                        .into_iter()
                        .map(|(i, t)| (i, t.wait().expect("ticket resolves")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });

    let correct = verdicts
        .iter()
        .filter(|(i, p)| p.class() == Some(test_view.labels[*i]))
        .count();
    let abstained = verdicts.iter().filter(|(_, p)| p.is_abstain()).count();
    let stats = server.stats();
    println!(
        "served {} requests from {CLIENTS} clients in {} micro-batches \
         (mean fill {:.1})",
        stats.served,
        stats.batches,
        stats.mean_batch_fill()
    );
    println!(
        "selective accuracy {:.3} at coverage {:.3} ({abstained} abstentions)",
        correct as f64 / (n - abstained).max(1) as f64,
        (n - abstained) as f64 / n as f64
    );

    // 4. Drain and reclaim the engine (with its serving counters).
    let engine = server.shutdown();
    println!(
        "engine served {} samples at {:.0} samples/s of busy time",
        engine.stats().samples,
        engine.stats().samples_per_sec()
    );
}
