//! Quickstart: the whole OplixNet workflow (paper Fig. 2) in one page.
//!
//! ```text
//! real images → spatial-interlace assignment → split FCNN (SCVNN)
//!             ⇄ mutual learning with a CVNN teacher
//!             → SVD phase mapping → MZI meshes → field-level inference
//! ```
//!
//! Run with `cargo run --release --example quickstart`.

use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::{digits, SynthConfig};
use oplix_photonics::count::reduction_ratio;
use oplixnet::experiments::TrainSetup;
use oplixnet::pipeline::OplixNetBuilder;
use oplixnet::spec::{fcnn_orig, fcnn_prop};

fn main() {
    // 1. A seeded synthetic MNIST stand-in (16×16 digits, 10 classes).
    let data_cfg = SynthConfig {
        height: 16,
        width: 16,
        samples: 480,
        ..Default::default()
    };
    let train = digits(&data_cfg);
    let test = digits(&SynthConfig {
        samples: 240,
        seed: 1,
        ..data_cfg
    });
    println!(
        "dataset: {} train / {} test images of {:?}",
        train.len(),
        test.len(),
        train.image_shape()
    );

    // 2. Run the Assign → Train → Deploy → Evaluate stages with the
    //    paper's defaults: spatial interlace, merging decoder, SCVNN-CVNN
    //    mutual learning (α = 1). Failures are typed errors, not panics.
    let outcome = OplixNetBuilder::new()
        .hidden(32)
        .train_setup(TrainSetup {
            epochs: 16,
            batch: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
        })
        .build(&train, &test)
        .run()
        .expect("valid geometry; FCNN bodies deploy");

    println!("software accuracy:  {:.2}%", 100.0 * outcome.accuracy);
    println!(
        "hardware accuracy:  {:.2}% (field-level MZI simulation)",
        100.0 * outcome.deployed_accuracy
    );
    println!("software/hardware gap: {:.4}", outcome.hardware_gap());

    // 3. The area story at the paper's full scale.
    let orig = fcnn_orig();
    let prop = fcnn_prop();
    println!(
        "paper-scale area: original {:.1}e4 MZIs -> split {:.1}e4 MZIs ({:.2}% reduction)",
        orig.mzis() as f64 / 1e4,
        prop.mzis() as f64 / 1e4,
        100.0 * reduction_ratio(orig.mzis(), prop.mzis()),
    );
    println!(
        "deployed training-scale pipeline uses {} MZIs over {} optical stages",
        outcome.deployed_mzis,
        outcome.deployed().num_stages(),
    );

    // 4. The outcome carries a reusable serving engine: batched queries
    //    over the same deployed meshes, with throughput counters.
    let mut engine = outcome.engine;
    let queries = AssignmentKind::SpatialInterlace.apply_dataset_flat(&test);
    let predictions = engine
        .classify(&queries.inputs)
        .expect("query batch matches mesh fan-in");
    let stats = engine.stats();
    println!(
        "engine served {} samples in {} batch(es) at {:.0} samples/s (first prediction: class {})",
        stats.samples,
        stats.batches,
        stats.samples_per_sec(),
        predictions[0],
    );
}
