//! Multi-model serving quickstart: one router, three named models.
//!
//! Builds three split-complex FCNNs — two of them over *identical*
//! weights, so their deployments share one cached mesh decomposition —
//! registers them with the `oplixnet::router` admission tier, and fans
//! mixed-priority client threads out over them. Each model gets its own
//! earliest-deadline-first micro-batching lane and a fair,
//! queue-depth-weighted share of the worker budget; requests carry
//! optional deadlines that are enforced at admission and at flush time.
//!
//! The models carry random (untrained) weights: the example demonstrates
//! the serving tier — routing, EDF scheduling, deadline misses, cache
//! sharing, per-model stats — not classification accuracy. See
//! `examples/concurrent_serving.rs` for the train-then-serve flow.
//!
//! Run with `cargo run --release --example multi_model_serving`.

use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::{digits, SynthConfig};
use oplix_photonics::decoder::DecoderKind;
use oplix_photonics::svd_map::MeshStyle;
use oplixnet::engine::InferenceEngine;
use oplixnet::serve::sample_row;
use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
use oplixnet::{
    deploy_cache_stats, DeployedDetection, Error, Priority, Router, RouterRequest, RouterTicket,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn main() {
    // 1. A synthetic digits test set under the paper's real-to-complex
    //    spatial-interlace assignment.
    let raw = digits(&SynthConfig {
        height: 8,
        width: 8,
        samples: 240,
        seed: 7,
        ..Default::default()
    });
    let view = AssignmentKind::SpatialInterlace.apply_dataset_flat(&raw);
    let input = view.inputs.shape()[1];

    // 2. Three models. "canary" and "stable" are built from the same seed,
    //    so their weights are bitwise identical — the deploy cache serves
    //    the second registration without a second SVD decomposition.
    let small = |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        build_fcnn(
            &FcnnConfig {
                input,
                hidden: 16,
                classes: 10,
            },
            ModelVariant::Split(DecoderKind::Merge),
            &mut rng,
        )
    };
    let shared_net = small(11);
    let mut rng = StdRng::seed_from_u64(13);
    let heavy_net = build_fcnn(
        &FcnnConfig {
            input,
            hidden: 32,
            classes: 10,
        },
        ModelVariant::Split(DecoderKind::Merge),
        &mut rng,
    );

    // Prime the cache: the second-sight admission policy fingerprints a
    // deployment on first sight and inserts it on the second, so two
    // warm-up deploys make every later registration a pure cache hit.
    for _ in 0..2 {
        let _prime = InferenceEngine::from_network(
            &shared_net,
            DeployedDetection::Differential,
            MeshStyle::Clements,
        )
        .expect("FCNN deploys");
    }

    // 3. One admission tier over all three lanes.
    let router = Router::builder()
        .max_batch(32)
        .max_wait(Duration::from_micros(500))
        .queue_cap(1024)
        .build();
    router
        .register(
            "canary",
            &shared_net,
            DeployedDetection::Differential,
            MeshStyle::Clements,
        )
        .expect("registers");
    router
        .register(
            "stable",
            &shared_net,
            DeployedDetection::Differential,
            MeshStyle::Clements,
        )
        .expect("registers");
    router
        .register(
            "heavy",
            &heavy_net,
            DeployedDetection::Differential,
            MeshStyle::Clements,
        )
        .expect("registers");
    let cache = deploy_cache_stats();
    println!(
        "registered {:?}; deploy cache: {} entries, {} hits, {} KiB resident",
        router.models(),
        cache.entries,
        cache.hits,
        cache.resident_bytes / 1024,
    );

    // 4. Six clients, two per model, with mixed priority classes:
    //    interactive traffic carries a tight deadline, standard traffic a
    //    generous one, batch traffic none at all. Expired requests are
    //    refused with the typed `DeadlineExceeded` error instead of
    //    wasting mesh cycles.
    let lanes = [
        (
            "canary",
            Priority::Interactive,
            Some(Duration::from_millis(250)),
        ),
        ("canary", Priority::Batch, None),
        ("stable", Priority::Standard, Some(Duration::from_secs(2))),
        ("stable", Priority::Batch, None),
        (
            "heavy",
            Priority::Interactive,
            Some(Duration::from_millis(250)),
        ),
        ("heavy", Priority::Standard, Some(Duration::from_secs(2))),
    ];
    const PER_CLIENT: usize = 40;
    let (served, missed): (usize, usize) = std::thread::scope(|scope| {
        let handles: Vec<_> = lanes
            .iter()
            .enumerate()
            .map(|(c, &(model, priority, deadline))| {
                let client = router.client();
                let view = &view;
                scope.spawn(move || {
                    let lo = c * PER_CLIENT;
                    let tickets: Vec<RouterTicket> = (lo..lo + PER_CLIENT)
                        .map(|i| {
                            let mut req =
                                RouterRequest::new(model, sample_row(&view.inputs, i % 240))
                                    .priority(priority);
                            if let Some(budget) = deadline {
                                req = req.deadline_in(budget);
                            }
                            client.submit(req).expect("queue admits")
                        })
                        .collect();
                    let mut served = 0usize;
                    let mut missed = 0usize;
                    for t in tickets {
                        match t.wait() {
                            Ok(_) => served += 1,
                            Err(Error::DeadlineExceeded { .. }) => missed += 1,
                            Err(e) => panic!("unexpected serving error: {e}"),
                        }
                    }
                    (served, missed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .fold((0, 0), |(s, m), (cs, cm)| (s + cs, m + cm))
    });

    // 5. Per-model observability, then a draining shutdown.
    let stats = router.stats();
    println!(
        "served {served} requests ({missed} deadline misses); \
         {} of {} models share a cached deployment",
        stats.cache_shared_deployments,
        stats.models.len(),
    );
    for (name, m) in &stats.models {
        println!(
            "  {name:>6}: served {:>3}, depth {}, batches {}, wait p50 {:?} p99 {:?} max {:?}, \
             misses {}, stages {}, cache-shared {}",
            m.serve.served,
            m.serve.queue_depth,
            m.serve.batches,
            m.wait_p50,
            m.wait_p99,
            m.serve.max_wait_observed,
            m.deadline_missed,
            m.optical_stages,
            m.cache_shared,
        );
    }
    let engines = router.shutdown();
    println!(
        "shut down; {} engines returned to their owners",
        engines.len()
    );
}
