//! Domain scenario: program a photonic chip by hand.
//!
//! Exercises the hardware substrate directly — no neural network involved:
//!
//! 1. decompose a random unitary into Reck and Clements meshes and compare
//!    their optical depth;
//! 2. deploy a non-unitary weight through SVD and verify the optical MVM;
//! 3. push data through the proposed DC-based complex encoder and recover
//!    it with coherent detection;
//! 4. study phase quantisation and the static-power ledger.
//!
//! Run with `cargo run --release --example photonic_chip`.

use oplix_linalg::{CMatrix, Complex64};
use oplix_photonics::clements::decompose_clements;
use oplix_photonics::decoder::CoherentDetector;
use oplix_photonics::encoder::{ComplexEncoder, DcComplexEncoder, PsComplexEncoder};
use oplix_photonics::power::{mesh_static_power_mw, DEFAULT_MAX_MW};
use oplix_photonics::reck::decompose_reck;
use oplix_photonics::svd_map::{MeshStyle, PhotonicLayer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // --- 1. Unitary -> phases, two layouts. ---
    let n = 12;
    let u = CMatrix::random_unitary(n, &mut rng);
    let reck = decompose_reck(&u);
    let clements = decompose_clements(&u);
    println!("decomposing a random {n}x{n} unitary:");
    println!(
        "  Reck:     {:>3} MZIs, optical depth {:>2}, reconstruction error {:.2e}",
        reck.mzi_count(),
        reck.depth(),
        reck.matrix().max_abs_diff(&u)
    );
    println!(
        "  Clements: {:>3} MZIs, optical depth {:>2}, reconstruction error {:.2e}",
        clements.mzi_count(),
        clements.depth(),
        clements.matrix().max_abs_diff(&u)
    );

    // --- 2. Arbitrary weight through SVD. ---
    let w = CMatrix::from_fn(5, 8, |i, j| {
        Complex64::new((i as f64 - 2.0) * 0.3, (j as f64 - 4.0) * 0.2)
    });
    let layer = PhotonicLayer::from_matrix(&w, MeshStyle::Clements);
    let x: Vec<Complex64> = (0..8)
        .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    let optical = layer.forward(&x);
    let exact = w.mul_vec(&x);
    let err = optical
        .iter()
        .zip(&exact)
        .map(|(a, b)| (*a - *b).abs())
        .fold(0.0f64, f64::max);
    println!("\n5x8 weight deployed as V*({}) + Σ + U({}):", 8, 5);
    println!(
        "  devices: {} MZIs, optical gain {:.3}",
        layer.device_count().mzis,
        layer.gain()
    );
    println!("  max |optical - exact| over a random input: {err:.2e}");

    // --- 3. Encoder + coherent detection round trip. ---
    let dc = DcComplexEncoder::new();
    let ps = PsComplexEncoder::new();
    let (a1, a2) = (0.62, -0.35);
    let z = dc.encode_pair(a1, a2);
    println!("\nDC complex encoder: ({a1}, {a2}) -> {z}");
    println!(
        "  symbol time: DC encoder {:.0} ps vs PS encoder {:.0} ns (thermal bottleneck)",
        dc.symbol_time_s() * 1e12,
        ps.symbol_time_s() * 1e9
    );
    let det = CoherentDetector::new(2.0);
    let (re, im) = det.detect(z);
    println!(
        "  coherent detection recovers ({re:.3}, {im:.3}) using {} intensity measurements",
        det.measurements_per_symbol()
    );

    // --- 4. Quantisation & power. ---
    println!("\nphase quantisation of the {n}x{n} Clements mesh:");
    for bits in [4u32, 6, 8, 10] {
        let err = clements
            .with_quantized_phases(bits)
            .matrix()
            .max_abs_diff(&u);
        println!("  {bits:>2}-bit phases: matrix error {err:.3e}");
    }
    println!(
        "\nstatic power at 0-{DEFAULT_MAX_MW} mW/PS: {:.1} mW across {} phases",
        mesh_static_power_mw(&clements, DEFAULT_MAX_MW),
        clements.phases().len()
    );
}
