use std::collections::HashMap;

pub fn tally(counts: &HashMap<String, u64>) -> u64 {
    let mut total = 0;
    for (_, v) in counts.iter() {
        total += v;
    }
    total
}
