use std::collections::HashMap;

pub fn lookup(counts: &HashMap<String, u64>, key: &str) -> u64 {
    counts.get(key).copied().unwrap_or(0)
}
