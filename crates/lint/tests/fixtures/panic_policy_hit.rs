pub fn parse(s: &str) -> u32 {
    s.parse().unwrap()
}
