pub fn axpy(a: f64, b: f64, c: f64) -> f64 {
    // oplix-lint: allow(no-fma, reason = "divergence experiment measures fused rounding")
    a.mul_add(b, c)
}
