pub fn parse(s: &str) -> u32 {
    // oplix-lint: allow(panic-policy, reason = "input validated by the CLI parser upstream")
    s.parse().unwrap()
}
