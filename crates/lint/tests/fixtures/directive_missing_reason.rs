pub fn axpy(a: f64, b: f64, c: f64) -> f64 {
    // oplix-lint: allow(no-fma)
    a.mul_add(b, c)
}
