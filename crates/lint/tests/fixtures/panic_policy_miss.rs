pub fn parse(s: &str) -> Option<u32> {
    s.parse().ok()
}

#[cfg(test)]
mod tests {
    #[test]
    fn parses() {
        assert_eq!(super::parse("7").unwrap(), 7);
    }
}
