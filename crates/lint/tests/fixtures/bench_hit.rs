fn measure() -> Vec<(&'static str, f64)> {
    vec![
        ("mesh16_compiled_ns_per_sample", 1.0),
        ("metric_missing_from_baseline", 2.0),
    ]
}
