pub fn axpy(a: f64, b: f64, c: f64) -> f64 {
    a * b + c
}
