pub fn first(xs: &[f64]) -> f64 {
    // SAFETY: the caller guarantees `xs` is non-empty.
    unsafe { *xs.get_unchecked(0) }
}
