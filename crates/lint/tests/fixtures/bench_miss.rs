fn measure() -> Vec<(&'static str, f64)> {
    vec![("mesh16_compiled_ns_per_sample", 1.0)]
}
