pub fn first(xs: &[f64]) -> f64 {
    // oplix-lint: allow(unsafe-hygiene, reason = "hazard documented on the caller instead")
    unsafe { *xs.get_unchecked(0) }
}
