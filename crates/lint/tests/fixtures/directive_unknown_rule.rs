pub fn f() {
    // oplix-lint: allow(made-up-rule, reason = "typo that must not widen suppression")
}
