use std::collections::HashMap;

pub fn tally(counts: &HashMap<String, u64>) -> u64 {
    let mut total = 0;
    // oplix-lint: allow(determinism-hazards, reason = "sum is order-independent over u64")
    for (_, v) in counts.iter() {
        total += v;
    }
    total
}
