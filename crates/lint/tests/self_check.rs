//! The lint's own acceptance test: the workspace at HEAD, checked
//! against the checked-in `lint-baseline.toml`, must be clean. This is
//! what keeps the repo's invariants enforced even where CI is not run —
//! `cargo test` alone catches a violation.

use oplix_lint::baseline::Baseline;
use std::path::Path;

#[test]
fn workspace_is_lint_clean_against_checked_in_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.toml"))
        .expect("lint-baseline.toml is checked in at the workspace root");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");
    let report = oplix_lint::lint_workspace(&root, &baseline).expect("workspace walk");
    assert!(
        report.findings.is_empty(),
        "workspace has lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn baseline_pins_match_reality_exactly() {
    // Not just "no finding" (counts below a pin are mere notes): the pins
    // must equal the measured counts, so stale baselines cannot mask a
    // later regression of the same size.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let baseline_text = std::fs::read_to_string(root.join("lint-baseline.toml"))
        .expect("lint-baseline.toml is checked in at the workspace root");
    let baseline = Baseline::parse(&baseline_text).expect("baseline parses");
    let report = oplix_lint::lint_workspace(&root, &baseline).expect("workspace walk");
    let fresh = report.as_baseline();
    assert_eq!(
        baseline.unsafe_sites, fresh.unsafe_sites,
        "unsafe-hygiene pins are stale — run `cargo run -p oplix-lint -- --write-baseline`"
    );
    assert_eq!(
        baseline.panic_sites, fresh.panic_sites,
        "panic-policy pins are stale — run `cargo run -p oplix-lint -- --write-baseline`"
    );
}
