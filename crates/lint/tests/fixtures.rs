//! Fixture tests: every rule has a *hit* (a planted violation the lint
//! must flag), a *miss* (a compliant twin it must not), and an *allow*
//! (the violation suppressed in scope, with a reason). The fixture files
//! live under `tests/fixtures/` and are linted under virtual workspace
//! paths, since rule applicability is path-dependent.

use oplix_lint::engine::SourceFile;
use oplix_lint::{lint_file, rules};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Lint a fixture as if it sat at `virtual_path`, returning the rules hit.
fn lint(virtual_path: &str, name: &str) -> Vec<String> {
    lint_file(virtual_path, &fixture(name))
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

const KERNEL_PATH: &str = "crates/linalg/src/fixture.rs";
const SERVE_PATH: &str = "crates/core/src/serve.rs";
const LIB_PATH: &str = "crates/nn/src/fixture.rs";

#[test]
fn no_fma_hit_miss_allow() {
    assert_eq!(lint(KERNEL_PATH, "no_fma_hit.rs"), ["no-fma"]);
    assert!(lint(KERNEL_PATH, "no_fma_miss.rs").is_empty());
    assert!(lint(KERNEL_PATH, "no_fma_allow.rs").is_empty());
    // The rule is scoped to kernel crates: the same hit elsewhere is fine.
    assert!(lint("crates/core/src/fixture.rs", "no_fma_hit.rs").is_empty());
}

#[test]
fn unsafe_hygiene_hit_miss_allow() {
    assert_eq!(lint(LIB_PATH, "unsafe_hygiene_hit.rs"), ["unsafe-hygiene"]);
    assert!(lint(LIB_PATH, "unsafe_hygiene_miss.rs").is_empty());
    assert!(lint(LIB_PATH, "unsafe_hygiene_allow.rs").is_empty());
}

#[test]
fn panic_policy_hit_miss_allow() {
    assert_eq!(lint(LIB_PATH, "panic_policy_hit.rs"), ["panic-policy"]);
    // The miss twin's only `unwrap` sits inside `#[cfg(test)]`.
    assert!(lint(LIB_PATH, "panic_policy_miss.rs").is_empty());
    assert!(lint(LIB_PATH, "panic_policy_allow.rs").is_empty());
    // Test code (a `tests/` path) is out of the policy's scope entirely.
    assert!(lint("tests/fixture.rs", "panic_policy_hit.rs").is_empty());
}

#[test]
fn determinism_hit_miss_allow() {
    assert_eq!(
        lint(SERVE_PATH, "determinism_hit.rs"),
        ["determinism-hazards"]
    );
    // Keyed lookup on a hash map is allowed even on serving paths; the
    // `unwrap_or` in the miss twin is not a panic site either.
    assert!(lint(SERVE_PATH, "determinism_miss.rs").is_empty());
    assert!(lint(SERVE_PATH, "determinism_allow.rs").is_empty());
    // Hash iteration off the serving paths is not a hazard.
    assert!(lint(LIB_PATH, "determinism_hit.rs").is_empty());
}

#[test]
fn determinism_flags_wall_clock_in_kernel_crates() {
    assert_eq!(
        lint(KERNEL_PATH, "determinism_clock_hit.rs"),
        ["determinism-hazards"]
    );
    assert!(lint("crates/core/src/fixture.rs", "determinism_clock_hit.rs").is_empty());
}

#[test]
fn bench_baseline_hit_and_miss() {
    let baseline = fixture("bench_baseline.json");
    let bench_path = rules::BENCH_BASELINE_PAIRS[0].0;

    let hit = SourceFile::parse(bench_path, &fixture("bench_hit.rs"));
    let findings = rules::bench_baseline(&hit, &[("bench_baseline.json", Some(baseline.as_str()))]);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("metric_missing_from_baseline"));

    let miss = SourceFile::parse(bench_path, &fixture("bench_miss.rs"));
    assert!(
        rules::bench_baseline(&miss, &[("bench_baseline.json", Some(baseline.as_str()))])
            .is_empty()
    );

    // A referenced baseline file that does not exist is itself a
    // finding — and with nothing left to union against, the key the
    // bench references is missing too.
    assert_eq!(
        rules::bench_baseline(&miss, &[("bench_baseline.json", None)]).len(),
        2
    );
}

#[test]
fn malformed_directives_are_findings_not_suppressions() {
    let unknown = lint(LIB_PATH, "directive_unknown_rule.rs");
    assert_eq!(unknown, ["directive"]);

    // A directive missing its reason is invalid AND does not suppress:
    // both the directive error and the no-fma hit surface.
    let mut missing = lint(KERNEL_PATH, "directive_missing_reason.rs");
    missing.sort();
    assert_eq!(missing, ["directive", "no-fma"]);
}
