//! The `oplix-lint` driver: walk the workspace, run every rule, compare
//! against `lint-baseline.toml`, and report machine-readable findings.
//!
//! ```text
//! oplix-lint [--root <dir>] [--write-baseline]
//! ```
//!
//! Findings print to stdout as `path:line: [rule] message`, one per
//! line. Exit codes: 0 clean, 1 findings, 2 usage/IO error.
//! `--write-baseline` regenerates the pinned counts from the current
//! tree instead of checking (use after a cleanup or an intentional,
//! reviewed addition).

use oplix_lint::baseline::Baseline;
use oplix_lint::lint_workspace;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: oplix-lint [--root <dir>] [--write-baseline]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut write = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--write-baseline" => write = true,
            "--help" | "-h" => {
                println!("oplix-lint: workspace invariant checker");
                println!("  --root <dir>       workspace root (default: nearest ancestor with lint-baseline.toml, else cwd)");
                println!(
                    "  --write-baseline   regenerate lint-baseline.toml pins from the current tree"
                );
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    let root = root.unwrap_or_else(find_root);
    let baseline_path = root.join("lint-baseline.toml");

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("oplix-lint: {} is malformed: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        // A missing baseline pins everything at zero: the first run on a
        // fresh tree reports every site, and `--write-baseline` seeds it.
        Err(_) => Baseline::default(),
    };

    let report = match lint_workspace(&root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "oplix-lint: failed to read workspace at {}: {e}",
                root.display()
            );
            return ExitCode::from(2);
        }
    };

    if write {
        let rendered = report.as_baseline().render();
        if let Err(e) = std::fs::write(&baseline_path, rendered) {
            eprintln!("oplix-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "oplix-lint: wrote {} ({} unsafe-pinned file(s), {} panic-pinned file(s))",
            baseline_path.display(),
            report.unsafe_counts.len(),
            report.panic_counts.len()
        );
        // Non-counting findings still matter in write mode: a missing
        // SAFETY comment is not something a baseline bump can absorb.
        let hard: Vec<_> = report
            .findings
            .iter()
            .filter(|f| {
                !matches!(f.rule.as_str(), "unsafe-hygiene" | "panic-policy")
                    || f.message.contains("SAFETY")
            })
            .collect();
        for f in &hard {
            println!("{f}");
        }
        return if hard.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for note in &report.notes {
        eprintln!("note: {note}");
    }
    for f in &report.findings {
        println!("{f}");
    }
    if report.findings.is_empty() {
        println!(
            "oplix-lint: clean ({} file(s) checked, {} unsafe pin(s), {} panic pin(s))",
            oplix_lint::engine::workspace_files(&root).len(),
            report.unsafe_counts.len(),
            report.panic_counts.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("oplix-lint: {} finding(s)", report.findings.len());
        ExitCode::FAILURE
    }
}

/// Nearest ancestor of the current directory holding `lint-baseline.toml`
/// or a `crates/` directory — lets `oplix-lint` run from a crate subdir.
fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("lint-baseline.toml").exists() || dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}
