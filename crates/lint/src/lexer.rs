//! A small, self-contained Rust lexer.
//!
//! The rule engine needs just enough token structure to tell *code* from
//! *comments* and *string contents* — a `mul_add` inside a doc comment
//! must not trip the no-FMA rule, and a `// SAFETY:` comment must be
//! recognisable as the token immediately preceding an `unsafe` block.
//! This lexer therefore keeps comments in the token stream (tagged, with
//! their full text) instead of discarding them, and collapses every
//! literal to a single token carrying its raw contents.
//!
//! It handles the parts of the Rust grammar that matter for those
//! distinctions and that genuinely appear in this workspace: nested block
//! comments, doc comments (`///`, `//!`, `/** */`), raw strings with
//! arbitrary `#` fences, byte and raw-byte strings, raw identifiers
//! (`r#type`), char literals vs. lifetimes, and numeric literals with
//! suffixes. It does **not** build an AST — rules pattern-match over the
//! token stream.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unsafe`, `mul_add`, `HashMap`, …).
    Ident,
    /// A lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// A string literal of any flavour (`"…"`, `r#"…"#`, `b"…"`). The
    /// token text is the literal's *contents*, without quotes or fences.
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal, including any type suffix (`1.0f64`).
    Num,
    /// A single punctuation character (`.`, `!`, `{`, …).
    Punct,
    /// A `//` comment (doc or plain). Text excludes the leading slashes.
    LineComment,
    /// A `/* … */` comment (doc or plain). Text excludes the delimiters.
    BlockComment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification of the token.
    pub kind: TokenKind,
    /// The token's text (see [`TokenKind`] for what each kind carries).
    pub text: String,
    /// 1-based line on which the token *starts*.
    pub line: u32,
}

impl Token {
    /// True for comment tokens of either flavour.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// True if this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// Lex `src` into a token stream, keeping comments.
///
/// The lexer never fails: malformed input (an unterminated string, a
/// stray byte) degrades to best-effort tokens rather than an error, which
/// is the right trade-off for a lint pass that must keep walking the rest
/// of the workspace.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Advance one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => {
                    self.bump();
                    self.string_body(line);
                }
                'r' | 'b' if self.raw_or_byte_literal(line) => {}
                '\'' => self.char_or_lifetime(line),
                c if is_ident_start(c) => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                c => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line);
                }
            }
        }
        self.tokens
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // both slashes
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // `/*`
        let mut depth = 1usize;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    break;
                }
                text.push_str("*/");
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, text, line);
    }

    /// Body of a `"`-delimited string, opening quote already consumed.
    fn string_body(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    // Keep escapes verbatim; rules only substring-match.
                    text.push(c);
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '"' => break,
                _ => text.push(c),
            }
        }
        self.push(TokenKind::Str, text, line);
    }

    /// Handle `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`, and raw
    /// identifiers (`r#type`). Returns false if the `r`/`b` at the cursor
    /// is just the start of an ordinary identifier.
    fn raw_or_byte_literal(&mut self, line: u32) -> bool {
        let c0 = self.peek(0).unwrap_or('\0');
        // Longest prefix first: `br#"`, `br"`, `r#"`, `r"`, `b"`, `b'`, `r#ident`.
        let (prefix_len, raw) = if c0 == 'b' && self.peek(1) == Some('r') {
            match self.peek(2) {
                Some('"') | Some('#') => (2, true),
                _ => return false,
            }
        } else if c0 == 'r' {
            match self.peek(1) {
                Some('"') => (1, true),
                Some('#') => {
                    // `r#"…"#` (raw string) or `r#ident` (raw identifier).
                    let mut k = 1;
                    while self.peek(k) == Some('#') {
                        k += 1;
                    }
                    if self.peek(k) == Some('"') {
                        (1, true)
                    } else {
                        // Raw identifier: consume `r#` then lex the ident.
                        self.bump();
                        self.bump();
                        self.ident(line);
                        return true;
                    }
                }
                _ => return false,
            }
        } else if c0 == 'b' {
            match self.peek(1) {
                Some('"') => (1, false),
                Some('\'') => {
                    self.bump(); // `b`
                    self.char_or_lifetime(line);
                    return true;
                }
                _ => return false,
            }
        } else {
            return false;
        };
        for _ in 0..prefix_len {
            self.bump();
        }
        if raw {
            let mut fences = 0usize;
            while self.peek(0) == Some('#') {
                fences += 1;
                self.bump();
            }
            self.bump(); // opening quote
            let mut text = String::new();
            'outer: while let Some(c) = self.bump() {
                if c == '"' {
                    // A close needs `fences` trailing `#`s.
                    for k in 0..fences {
                        if self.peek(k) != Some('#') {
                            text.push('"');
                            continue 'outer;
                        }
                    }
                    for _ in 0..fences {
                        self.bump();
                    }
                    break;
                }
                text.push(c);
            }
            self.push(TokenKind::Str, text, line);
        } else {
            self.bump(); // opening quote
            self.string_body(line);
        }
        true
    }

    /// Disambiguate `'a` (lifetime) from `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // `'`
        let c1 = self.peek(0);
        let c2 = self.peek(1);
        if let Some(c1) = c1 {
            if is_ident_start(c1) && c2 != Some('\'') {
                // Lifetime: `'a`, `'static`, `'_`.
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    self.bump();
                }
                self.push(TokenKind::Lifetime, text, line);
                return;
            }
        }
        // Char literal; consume through the closing quote.
        let mut text = String::new();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    text.push(c);
                    if let Some(e) = self.bump() {
                        text.push(e);
                    }
                }
                '\'' => break,
                _ => text.push(c),
            }
        }
        self.push(TokenKind::Char, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            self.bump();
        }
        // A fractional part: `.` followed by a digit (so `0..n` stays a
        // range and `1.max(2)` stays a method call).
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            text.push('.');
            self.bump();
            while let Some(c) = self.peek(0) {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::Num, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_strings_and_code_are_distinguished() {
        let toks = kinds("let x = a.mul_add(b, c); // uses mul_add\n\"mul_add\"");
        let code_idents: Vec<_> = toks
            .iter()
            .filter(|(k, t)| *k == TokenKind::Ident && t == "mul_add")
            .collect();
        assert_eq!(code_idents.len(), 1);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::LineComment && t.contains("mul_add")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t == "mul_add"));
    }

    #[test]
    fn raw_strings_and_fences() {
        let toks = kinds(r##"r#"has "quotes" inside"# b"bytes" r"plain""##);
        let strs: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, [r#"has "quotes" inside"#, "bytes", "plain"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            2
        );
    }

    #[test]
    fn nested_block_comments_terminate() {
        let toks = kinds("/* outer /* inner */ still outer */ ident");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[0].1.contains("inner"));
        assert_eq!(toks[1], (TokenKind::Ident, "ident".into()));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = kinds("let r#type = 1;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "type"));
    }

    #[test]
    fn lines_are_tracked_across_multiline_tokens() {
        let toks = lex("/* a\nb */\nident");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 3);
        assert_eq!(toks[1].text, "ident");
    }
}
