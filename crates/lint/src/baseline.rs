//! The checked-in `lint-baseline.toml`: pinned per-file counts for the
//! ratcheted rules (unsafe sites, panic sites).
//!
//! A *pin* is how the checker makes growth explicit without demanding a
//! boil-the-ocean cleanup first: the current count of `unsafe` sites and
//! library-path panic sites per file is committed, a diff that adds one
//! must also bump the pin (which a reviewer sees), and a diff that
//! removes some should ratchet the pin down (`--write-baseline`). The
//! file is a deliberately tiny TOML subset — sections of
//! `"path" = count` lines — parsed and rendered here so the tool has no
//! dependencies.

use std::collections::BTreeMap;

/// Pinned per-file counts, keyed by workspace-relative path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `[unsafe-hygiene]`: `unsafe` sites per file.
    pub unsafe_sites: BTreeMap<String, usize>,
    /// `[panic-policy]`: panic sites (`unwrap`/`expect`/`panic!`) per file.
    pub panic_sites: BTreeMap<String, usize>,
}

impl Baseline {
    /// Parse the TOML subset: `[section]` headers over `"key" = count`
    /// entries, `#` comments, blank lines. Anything else is an error —
    /// a malformed baseline must not silently pin nothing.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut out = Baseline::default();
        let mut section: Option<&str> = None;
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                section = match name {
                    "unsafe-hygiene" => Some("unsafe-hygiene"),
                    "panic-policy" => Some("panic-policy"),
                    other => return Err(format!("line {}: unknown section `[{other}]`", i + 1)),
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `\"path\" = count`", i + 1));
            };
            let key = key
                .trim()
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .ok_or_else(|| format!("line {}: path must be quoted", i + 1))?;
            let count: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("line {}: count must be an integer", i + 1))?;
            let map = match section {
                Some("unsafe-hygiene") => &mut out.unsafe_sites,
                Some("panic-policy") => &mut out.panic_sites,
                _ => return Err(format!("line {}: entry outside a section", i + 1)),
            };
            map.insert(key.to_string(), count);
        }
        Ok(out)
    }

    /// Render back to the canonical checked-in form (zero-count entries
    /// are omitted; paths sort lexicographically).
    pub fn render(&self) -> String {
        let mut s = String::from(
            "# Pinned invariant counts for `oplix-lint` (see crates/lint).\n\
             #\n\
             # A new `unsafe` site or library-path panic site fails the lint\n\
             # until the pin for its file is bumped in the same diff. After\n\
             # removing sites, ratchet pins down with:\n\
             #\n\
             #     cargo run -p oplix-lint -- --write-baseline\n",
        );
        for (header, map) in [
            ("unsafe-hygiene", &self.unsafe_sites),
            ("panic-policy", &self.panic_sites),
        ] {
            s.push_str(&format!("\n[{header}]\n"));
            for (path, count) in map {
                if *count > 0 {
                    s.push_str(&format!("\"{path}\" = {count}\n"));
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let mut b = Baseline::default();
        b.unsafe_sites.insert("crates/core/src/pool.rs".into(), 3);
        b.panic_sites.insert("crates/core/src/serve.rs".into(), 7);
        b.panic_sites.insert("crates/core/src/zoo.rs".into(), 0);
        let text = b.render();
        let parsed = Baseline::parse(&text).expect("canonical form parses");
        assert_eq!(parsed.unsafe_sites, b.unsafe_sites);
        // Zero-count entries are dropped in rendering.
        assert_eq!(parsed.panic_sites.len(), 1);
        assert_eq!(parsed.panic_sites["crates/core/src/serve.rs"], 7);
    }

    #[test]
    fn malformed_baselines_are_errors() {
        assert!(Baseline::parse("[no-such-section]\n").is_err());
        assert!(Baseline::parse("\"a.rs\" = 3\n").is_err());
        assert!(Baseline::parse("[panic-policy]\na.rs = 3\n").is_err());
        assert!(Baseline::parse("[panic-policy]\n\"a.rs\" = lots\n").is_err());
    }
}
