//! # oplix-lint — the workspace invariant checker
//!
//! A self-contained static-analysis pass over the OplixNet workspace
//! source. The repo's value proposition — paper-faithful results served
//! at production speed — rests on contracts that property tests can only
//! sample: the no-FMA rule behind the lanes layer's bitwise guarantee,
//! one documented `unsafe` per hazard, typed errors instead of panics on
//! public API paths, deterministic iteration on serving paths, and a
//! perf gate whose baseline keys actually exist. `oplix-lint` checks all
//! of them on every file, on every push — the violation is caught the
//! day it is written, not the day a property test happens to sample it.
//!
//! ## Quickstart
//!
//! ```text
//! cargo run -p oplix-lint              # check the workspace, exit 1 on findings
//! cargo run -p oplix-lint -- --write-baseline   # ratchet the pins after a cleanup
//! ```
//!
//! ## The rule catalogue
//!
//! | rule | contract it enforces |
//! |------|----------------------|
//! | `no-fma` | no `mul_add`/`fma` in kernel crates (`linalg`, `photonics`) — FMA rounds once and breaks the lanes layer's scalar≡SIMD bitwise guarantee |
//! | `unsafe-hygiene` | every `unsafe` site carries a preceding `// SAFETY:` comment, and the per-file site count is pinned in `lint-baseline.toml` |
//! | `panic-policy` | no `.unwrap()`/`.expect(`/`panic!` in non-test library code beyond the pinned per-file counts — public paths return the typed [`oplixnet` `Error`] instead |
//! | `determinism-hazards` | no iteration over `HashMap`/`HashSet` on serving/deploy paths (keyed lookup is fine); no `Instant::now`/thread-identity reads in kernel crates |
//! | `bench-baseline` | every metric key `bench_smoke` references exists in its `BENCH_*.json` baseline, so the perf gate cannot erode silently |
//!
//! [`oplixnet` `Error`]: https://docs.rs/oplixnet
//!
//! ## Suppression
//!
//! A finding that is intentional is suppressed *in scope*, with a reason,
//! on the line above (or the same line):
//!
//! ```text
//! // oplix-lint: allow(determinism-hazards, reason = "results collect into a BTreeMap")
//! for (name, lane) in lanes.iter() {
//! ```
//!
//! The directive itself is validated: an unknown rule name, a missing or
//! empty `reason`, or a malformed shape is an error — a typo cannot
//! silently widen the suppression.
//!
//! ## Baseline workflow
//!
//! `lint-baseline.toml` pins the current per-file counts of `unsafe`
//! sites and panic sites. Adding a site fails the lint until the pin is
//! bumped in the same diff (making growth a visible, reviewable act);
//! removing sites prints a ratchet note until `--write-baseline`
//! regenerates the pins.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod engine;
pub mod lexer;
pub mod rules;

use baseline::Baseline;
use engine::{Finding, SourceFile};
use std::collections::BTreeMap;
use std::path::Path;

/// Everything one full check of a workspace produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Actionable findings: violations not covered by an `allow`
    /// directive or the checked-in baseline. Non-empty ⇒ exit 1.
    pub findings: Vec<Finding>,
    /// Non-fatal observations (counts below baseline that could be
    /// ratcheted down, stale baseline entries).
    pub notes: Vec<String>,
    /// Current `unsafe` sites per file (the `[unsafe-hygiene]` pins).
    pub unsafe_counts: BTreeMap<String, usize>,
    /// Current panic sites per file (the `[panic-policy]` pins).
    pub panic_counts: BTreeMap<String, usize>,
}

impl Report {
    /// The baseline that would pin the workspace exactly as it is now.
    pub fn as_baseline(&self) -> Baseline {
        Baseline {
            unsafe_sites: self.unsafe_counts.clone(),
            panic_sites: self.panic_counts.clone(),
        }
    }
}

/// Lint a single file (rules R1–R4 plus directive validation), as the
/// workspace pass would see it at `path`. The path determines rule
/// applicability — kernel-crate rules, serving-path rules, the panic
/// policy's library scope — so fixture tests lint snippets under
/// *virtual* paths.
///
/// Returned findings are already filtered through the file's `allow`
/// directives. Counting rules (the baseline side of `unsafe-hygiene` /
/// `panic-policy`) are not applied here; use [`lint_workspace`] for the
/// pinned-count comparison.
pub fn lint_file(path: &str, text: &str) -> Vec<Finding> {
    let file = SourceFile::parse(path, text);
    let mut findings = file.directive_findings.clone();
    let mut raw = Vec::new();
    raw.extend(rules::no_fma(&file));
    raw.extend(rules::unsafe_hygiene(&file));
    raw.extend(rules::determinism_hazards(&file));
    raw.extend(rules::panic_sites(&file).into_iter().map(|line| {
        Finding {
            rule: "panic-policy".into(),
            path: file.path.clone(),
            line,
            message: "panic site (`unwrap`/`expect`/`panic!`) in library code — \
                          return the typed error instead"
                .into(),
        }
    }));
    findings.extend(file.apply_allows(raw));
    findings
}

/// Check the whole workspace rooted at `root` against `baseline`.
///
/// Walks `src/`, `tests/`, `crates/*/src/`, and `crates/*/benches/`,
/// runs every rule, applies suppressions, and folds the counting rules
/// against the pinned baseline: counts above a pin are findings, counts
/// below it are ratchet notes.
pub fn lint_workspace(root: &Path, baseline: &Baseline) -> std::io::Result<Report> {
    let mut report = Report::default();
    let rel_paths = engine::workspace_files(root);
    let mut panic_lines: BTreeMap<String, Vec<u32>> = BTreeMap::new();

    for rel in &rel_paths {
        let text = std::fs::read_to_string(root.join(rel))?;
        let file = SourceFile::parse(rel, &text);

        // Directive validation is never suppressible.
        report.findings.extend(file.directive_findings.clone());

        let mut raw = Vec::new();
        raw.extend(rules::no_fma(&file));
        raw.extend(rules::unsafe_hygiene(&file));
        raw.extend(rules::determinism_hazards(&file));
        report.findings.extend(file.apply_allows(raw));

        // Counting rules: unsafe sites count regardless of allows (the
        // pin tracks existence, not documentation); panic sites with a
        // scoped allow are excluded from the count.
        let n_unsafe = rules::unsafe_sites(&file).len();
        if n_unsafe > 0 {
            report.unsafe_counts.insert(rel.clone(), n_unsafe);
        }
        let sites: Vec<u32> = rules::panic_sites(&file)
            .into_iter()
            .filter(|&l| !file.is_allowed("panic-policy", l))
            .collect();
        if !sites.is_empty() {
            report.panic_counts.insert(rel.clone(), sites.len());
            panic_lines.insert(rel.clone(), sites);
        }

        // R5 for any bench source paired with baseline files; a bench
        // registered against several baselines is checked against their
        // union.
        let baseline_texts: Vec<(&str, Option<String>)> = rules::BENCH_BASELINE_PAIRS
            .iter()
            .filter(|(src, _)| src == rel)
            .map(|(_, name)| (*name, std::fs::read_to_string(root.join(name)).ok()))
            .collect();
        if !baseline_texts.is_empty() {
            let baselines: Vec<(&str, Option<&str>)> = baseline_texts
                .iter()
                .map(|(name, text)| (*name, text.as_deref()))
                .collect();
            report
                .findings
                .extend(file.apply_allows(rules::bench_baseline(&file, &baselines)));
        }
    }

    // Fold counts against the pins.
    compare_counts(
        "unsafe-hygiene",
        "unsafe site(s)",
        &report.unsafe_counts,
        &baseline.unsafe_sites,
        &BTreeMap::new(),
        &mut report.findings,
        &mut report.notes,
    );
    compare_counts(
        "panic-policy",
        "panic site(s)",
        &report.panic_counts,
        &baseline.panic_sites,
        &panic_lines,
        &mut report.findings,
        &mut report.notes,
    );
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    Ok(report)
}

/// Compare measured per-file counts against pinned ones. Above the pin
/// is a finding (bump the baseline explicitly, in the same diff); below
/// it is a ratchet note; a pin for a vanished file is a stale-entry note.
fn compare_counts(
    rule: &str,
    noun: &str,
    actual: &BTreeMap<String, usize>,
    pinned: &BTreeMap<String, usize>,
    lines: &BTreeMap<String, Vec<u32>>,
    findings: &mut Vec<Finding>,
    notes: &mut Vec<String>,
) {
    for (path, &count) in actual {
        let pin = pinned.get(path).copied().unwrap_or(0);
        if count > pin {
            let at = lines
                .get(path)
                .map(|ls| {
                    format!(
                        " (sites at line{} {})",
                        if ls.len() == 1 { "" } else { "s" },
                        ls.iter()
                            .map(|l| l.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })
                .unwrap_or_default();
            findings.push(Finding {
                rule: rule.to_string(),
                path: path.clone(),
                line: lines
                    .get(path)
                    .and_then(|ls| ls.first().copied())
                    .unwrap_or(1),
                message: format!(
                    "{count} {noun} but lint-baseline.toml pins {pin}{at} — \
                     remove the new site or bump the pin in this diff"
                ),
            });
        } else if count < pin {
            notes.push(format!(
                "{path}: {count} {noun}, baseline pins {pin} — ratchet down with \
                 --write-baseline"
            ));
        }
    }
    for (path, &pin) in pinned {
        if pin > 0 && !actual.contains_key(path) {
            notes.push(format!(
                "{path}: baseline pins {pin} {noun} but the file has none (or was \
                 removed) — ratchet with --write-baseline"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_file_applies_scoped_allows() {
        let src = "\
// oplix-lint: allow(no-fma, reason = \"documented divergence experiment\")
let y = a.mul_add(b, c);
let z = d.mul_add(e, f);
";
        let findings = lint_file("crates/linalg/src/x.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn counts_above_pin_are_findings_below_are_notes() {
        let mut findings = Vec::new();
        let mut notes = Vec::new();
        let actual = BTreeMap::from([("a.rs".to_string(), 3), ("b.rs".to_string(), 1)]);
        let pinned = BTreeMap::from([
            ("a.rs".to_string(), 2),
            ("b.rs".to_string(), 4),
            ("gone.rs".to_string(), 2),
        ]);
        compare_counts(
            "panic-policy",
            "panic site(s)",
            &actual,
            &pinned,
            &BTreeMap::new(),
            &mut findings,
            &mut notes,
        );
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("3 panic site(s)"));
        assert_eq!(notes.len(), 2);
    }
}
