//! The rule catalogue. Each rule encodes a contract the workspace
//! already documents in prose (ARCHITECTURE.md, module docs) — the rule
//! is the machine-checkable form of that contract.
//!
//! Rules pattern-match over the comment-preserving token stream from
//! [`crate::lexer`]; none of them parse an AST. That keeps the pass
//! self-contained (no `syn`, no rustc internals) at the cost of being
//! heuristic — which is why findings can be suppressed with a scoped,
//! reasoned `// oplix-lint: allow(<rule>, reason = "...")` that the
//! engine itself validates.

use crate::engine::{Finding, SourceFile};
use crate::lexer::{Token, TokenKind};
use std::collections::BTreeSet;

/// Crates whose kernels carry the bitwise-determinism contract: the
/// lanes-layer no-FMA rule and the ban on wall-clock / thread-identity
/// reads inside numeric paths.
pub const KERNEL_CRATES: &[&str] = &["linalg", "photonics"];

/// Files on serving/deploy paths where iteration order of a hash
/// collection can leak into outputs or stats. Keyed lookup is fine;
/// iteration needs an ordered collection or a reasoned `allow`.
pub const ORDER_SENSITIVE_PATHS: &[&str] = &[
    "crates/core/src/serve.rs",
    "crates/core/src/router.rs",
    "crates/core/src/deploy.rs",
    "crates/core/src/engine.rs",
];

/// `(bench source, baseline json)` pairs for the bench-baseline rule:
/// every metric key the bench references must exist in its baseline,
/// otherwise the perf gate erodes silently (a missing key used to fail
/// loudly only at bench runtime, on a runner with matching metadata).
/// A bench may appear in several pairs (`bench_smoke` gates both the
/// kernel and the stage-pipeline baselines); its keys are then checked
/// against the union of the paired baselines.
pub const BENCH_BASELINE_PAIRS: &[(&str, &str)] = &[
    ("crates/bench/benches/bench_smoke.rs", "BENCH_kernels.json"),
    ("crates/bench/benches/bench_smoke.rs", "BENCH_pipeline.json"),
    (
        "crates/bench/benches/stage_pipeline.rs",
        "BENCH_pipeline.json",
    ),
];

/// Workspace-local stand-ins for crates.io dependencies. Panicking is
/// part of the API they emulate (`proptest` assertion failures,
/// `criterion` harness errors), so the panic policy exempts them.
const STUB_CRATES: &[&str] = &["rand", "criterion", "proptest"];

/// The crate a workspace-relative path belongs to, if under `crates/`.
pub fn crate_of(path: &str) -> Option<&str> {
    path.strip_prefix("crates/")?.split('/').next()
}

fn in_kernel_crate(path: &str) -> bool {
    crate_of(path).is_some_and(|c| KERNEL_CRATES.contains(&c))
}

/// True where the panic policy applies: library source (`src/` trees),
/// excluding test/bench harness code and the dependency stubs.
pub fn panic_policy_applies(path: &str) -> bool {
    let in_src = path.starts_with("src/") || path.contains("/src/");
    let exempt_crate = crate_of(path).is_some_and(|c| c == "bench" || STUB_CRATES.contains(&c));
    in_src && !exempt_crate
}

fn finding(rule: &str, file: &SourceFile, line: u32, message: String) -> Finding {
    Finding {
        rule: rule.to_string(),
        path: file.path.clone(),
        line,
        message,
    }
}

/// Code tokens only (comments stripped), for sequence matching.
fn code(file: &SourceFile) -> Vec<&Token> {
    file.tokens.iter().filter(|t| !t.is_comment()).collect()
}

// ---------------------------------------------------------------------------
// R1: no-fma
// ---------------------------------------------------------------------------

/// Forbid `mul_add` / `fma` tokens in kernel crates. The lanes layer's
/// bitwise contract requires separate mul and add — a fused multiply-add
/// rounds once instead of twice and silently changes every downstream
/// bit pattern (see `oplix_linalg::lanes`).
pub fn no_fma(file: &SourceFile) -> Vec<Finding> {
    if !in_kernel_crate(&file.path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for t in &file.tokens {
        if t.kind == TokenKind::Ident && (t.text == "mul_add" || t.text == "fma") {
            out.push(finding(
                "no-fma",
                file,
                t.line,
                format!(
                    "`{}` in a kernel crate: fused multiply-add rounds once, \
                     breaking the lanes-layer bitwise contract (use separate \
                     mul and add)",
                    t.text
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R2: unsafe-hygiene
// ---------------------------------------------------------------------------

/// Lines of every `unsafe` site in the file (block, fn, or impl).
pub fn unsafe_sites(file: &SourceFile) -> Vec<u32> {
    file.tokens
        .iter()
        .filter(|t| t.is_ident("unsafe"))
        .map(|t| t.line)
        .collect()
}

/// Is a line, trimmed, part of a comment run or attribute stack that a
/// SAFETY scan may step over?
fn scannable_line(trimmed: &str) -> bool {
    trimmed.is_empty()
        || trimmed.starts_with("//")
        || trimmed.starts_with("/*")
        || trimmed.starts_with('*')
        || trimmed.starts_with("#[")
        || trimmed.starts_with("#![")
}

/// Every `unsafe` site must be immediately preceded by a comment run
/// containing `SAFETY` (attributes and blank lines may sit between the
/// comment and the site — `#[target_feature]` fns keep their SAFETY
/// note above the attribute). Doc comments with a `# Safety` section
/// count.
pub fn unsafe_hygiene(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for &site in &unsafe_sites(file) {
        let idx = site as usize - 1;
        let own_line_ok = file
            .lines
            .get(idx)
            .is_some_and(|l| l.to_lowercase().contains("safety"));
        let mut ok = own_line_ok;
        let mut i = idx;
        while !ok && i > 0 {
            i -= 1;
            let trimmed = file.lines[i].trim();
            if !scannable_line(trimmed) {
                break;
            }
            if trimmed.starts_with("//") || trimmed.starts_with("/*") || trimmed.starts_with('*') {
                ok = trimmed.to_lowercase().contains("safety");
                if ok {
                    break;
                }
            }
        }
        if !ok {
            out.push(finding(
                "unsafe-hygiene",
                file,
                site,
                "`unsafe` site without an immediately preceding `// SAFETY:` \
                 comment explaining why the invariants hold"
                    .to_string(),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R3: panic-policy
// ---------------------------------------------------------------------------

/// Lines of every panic site (`.unwrap()`, `.expect(`, `panic!`) in
/// non-test library code. `#[cfg(test)]` regions and doc comments are
/// excluded; `unwrap_or`/`unwrap_or_else` are distinct tokens and never
/// match.
pub fn panic_sites(file: &SourceFile) -> Vec<u32> {
    if !panic_policy_applies(&file.path) {
        return Vec::new();
    }
    let code = code(file);
    let mut out = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if file.in_test_region(t.line) {
            continue;
        }
        let hit = (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|n| n.is_punct('('))
            || t.is_ident("panic") && code.get(i + 1).is_some_and(|n| n.is_punct('!'));
        if hit {
            out.push(t.line);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R4: determinism-hazards
// ---------------------------------------------------------------------------

/// Identify names bound to hash collections in this file: declarations
/// (`name: …HashMap<…>` fields, params, lets) plus a shallow taint pass
/// through `let name = <expr containing a hash name>;` so lock guards
/// over hash-typed fields are tracked too.
pub(crate) fn hash_bound_names(code: &[&Token]) -> BTreeSet<String> {
    let mut names: BTreeSet<String> = BTreeSet::new();
    // Declarations with a type annotation.
    for i in 0..code.len() {
        if code[i].kind != TokenKind::Ident || !code.get(i + 1).is_some_and(|t| t.is_punct(':')) {
            continue;
        }
        // `::` is path separation, not a type annotation.
        if code.get(i + 2).is_some_and(|t| t.is_punct(':')) || i > 0 && code[i - 1].is_punct(':') {
            continue;
        }
        let mut angle = 0i32;
        for t in code.iter().skip(i + 2).take(12) {
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if angle == 0
                && (t.is_punct(',') || t.is_punct(';') || t.is_punct('=') || t.is_punct(')'))
            {
                break;
            } else if t.is_ident("HashMap") || t.is_ident("HashSet") {
                names.insert(code[i].text.clone());
                break;
            }
        }
    }
    // Taint propagation through simple `let` bindings, to fixpoint.
    for _ in 0..4 {
        let before = names.len();
        let mut i = 0;
        while i < code.len() {
            if !code[i].is_ident("let") {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            if code.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let Some(name_tok) = code.get(j).filter(|t| t.kind == TokenKind::Ident) else {
                i += 1;
                continue;
            };
            // Only plain bindings (`let name = …`, `let name: T = …`)
            // taint; `let Some(x) = …` and friends are patterns, not
            // aliases.
            if !code
                .get(j + 1)
                .is_some_and(|t| t.is_punct('=') || t.is_punct(':'))
            {
                i = j + 1;
                continue;
            }
            // Scan the initialiser up to the statement-ending `;`.
            let mut depth = 0i32;
            let mut saw_eq = false;
            let mut tainted = false;
            for (off, t) in code.iter().enumerate().skip(j + 1) {
                if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if t.is_punct(';') && depth <= 0 {
                    break;
                } else if t.is_punct('=') && depth == 0 {
                    saw_eq = true;
                } else if saw_eq && t.kind == TokenKind::Ident {
                    // A tainted *value* reference, not an unrelated method
                    // that shares the name (`.map(|x| …)` is not the hash
                    // field `self.map`): method invocations — ident both
                    // preceded by `.` and followed by `(` — don't taint.
                    let is_method_call = off > 0
                        && code[off - 1].is_punct('.')
                        && code.get(off + 1).is_some_and(|n| n.is_punct('('));
                    if !is_method_call
                        && (t.text == "HashMap" || t.text == "HashSet" || names.contains(&t.text))
                    {
                        tainted = true;
                    }
                }
            }
            if tainted {
                names.insert(name_tok.text.clone());
            }
            i = j + 1;
        }
        if names.len() == before {
            break;
        }
    }
    names
}

const ITERATION_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// Flag (a) iteration over hash collections in order-sensitive
/// serving/deploy files, and (b) wall-clock / thread-identity reads in
/// kernel crates. Hash-keyed lookup (`get`/`insert`/`contains_key`) is
/// untouched — only *order* is the hazard: iteration order of
/// `HashMap`/`HashSet` varies per process (`RandomState`), so anything
/// it feeds — response ordering, stats, eviction choice — silently
/// breaks the bitwise-reproducibility contract.
pub fn determinism_hazards(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let code = code(file);
    if ORDER_SENSITIVE_PATHS.contains(&file.path.as_str()) {
        let hashy = hash_bound_names(&code);
        for i in 0..code.len() {
            let t = code[i];
            if file.in_test_region(t.line) {
                continue;
            }
            // `name.iter()` and friends on a hash-bound name.
            if t.kind == TokenKind::Ident
                && hashy.contains(&t.text)
                && code.get(i + 1).is_some_and(|n| n.is_punct('.'))
            {
                if let Some(m) = code.get(i + 2) {
                    if m.kind == TokenKind::Ident
                        && ITERATION_METHODS.contains(&m.text.as_str())
                        && code.get(i + 3).is_some_and(|n| n.is_punct('('))
                    {
                        out.push(finding(
                            "determinism-hazards",
                            file,
                            m.line,
                            format!(
                                "iteration (`.{}()`) over hash collection `{}` on a \
                                 serving/deploy path: HashMap/HashSet order varies per \
                                 process — use an ordered collection, sort first, or \
                                 `allow` with a reason why order cannot leak",
                                m.text, t.text
                            ),
                        ));
                    }
                }
            }
            // `for pat in [&][mut] name {` over a hash-bound name.
            if t.is_ident("for") {
                let mut j = i + 1;
                let mut depth = 0i32;
                while j < code.len() && !(depth == 0 && code[j].is_ident("in")) {
                    if code[j].is_punct('(') || code[j].is_punct('[') {
                        depth += 1;
                    } else if code[j].is_punct(')') || code[j].is_punct(']') {
                        depth -= 1;
                    } else if code[j].is_punct('{') {
                        break;
                    }
                    j += 1;
                }
                if j < code.len() && code[j].is_ident("in") {
                    let expr: Vec<&&Token> = code[j + 1..]
                        .iter()
                        .take_while(|t| !t.is_punct('{'))
                        .filter(|t| !t.is_punct('&') && !t.is_ident("mut"))
                        .collect();
                    if let [only] = expr.as_slice() {
                        if only.kind == TokenKind::Ident && hashy.contains(&only.text) {
                            out.push(finding(
                                "determinism-hazards",
                                file,
                                only.line,
                                format!(
                                    "`for … in {}` iterates a hash collection on a \
                                     serving/deploy path: HashMap/HashSet order varies \
                                     per process — use an ordered collection, sort \
                                     first, or `allow` with a reason",
                                    only.text
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
    if in_kernel_crate(&file.path) {
        for i in 0..code.len() {
            let t = code[i];
            if file.in_test_region(t.line) {
                continue;
            }
            let path2 = |a: &str, b: &str| {
                t.is_ident(a)
                    && code.get(i + 1).is_some_and(|x| x.is_punct(':'))
                    && code.get(i + 2).is_some_and(|x| x.is_punct(':'))
                    && code.get(i + 3).is_some_and(|x| x.is_ident(b))
            };
            if path2("Instant", "now") {
                out.push(finding(
                    "determinism-hazards",
                    file,
                    t.line,
                    "`Instant::now` inside a kernel crate: wall-clock reads in \
                     numeric paths are a determinism hazard (time belongs in the \
                     bench/serving layers)"
                        .to_string(),
                ));
            }
            if path2("thread", "current") || t.is_ident("ThreadId") {
                out.push(finding(
                    "determinism-hazards",
                    file,
                    t.line,
                    "thread-identity read inside a kernel crate: per-thread \
                     branching breaks the bitwise worker-count-invariance \
                     contract"
                        .to_string(),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// R5: bench-baseline
// ---------------------------------------------------------------------------

/// Metric keys a bench source references: string literals shaped like
/// identifiers (`mesh16_compiled_ns_per_sample`) in tuple position
/// (preceded by `(`, followed by `,`).
pub fn referenced_metric_keys(file: &SourceFile) -> Vec<(String, u32)> {
    let code = code(file);
    let mut out = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokenKind::Str {
            continue;
        }
        let looks_like_key = t.text.contains('_')
            && t.text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase())
            && t.text
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
        if !looks_like_key {
            continue;
        }
        let tuple_position =
            i > 0 && code[i - 1].is_punct('(') && code.get(i + 1).is_some_and(|n| n.is_punct(','));
        if tuple_position {
            out.push((t.text.clone(), t.line));
        }
    }
    out
}

/// Top-level keys of a flat JSON baseline (`"key": value` lines).
pub fn baseline_json_keys(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in text.lines() {
        let trimmed = line.trim();
        let Some(rest) = trimmed.strip_prefix('"') else {
            continue;
        };
        let Some((key, rest)) = rest.split_once('"') else {
            continue;
        };
        if rest.trim_start().starts_with(':') {
            out.insert(key.to_string());
        }
    }
    out
}

/// Every metric key the bench references must exist in one of its
/// checked-in baselines — otherwise the perf gate reports a missing key
/// only at bench runtime on a matching runner, i.e. the gate erodes
/// silently. `baselines` is every `(name, contents)` pair the bench is
/// registered against in [`BENCH_BASELINE_PAIRS`]; keys are checked
/// against the union, and each unreadable baseline is its own finding.
pub fn bench_baseline(bench: &SourceFile, baselines: &[(&str, Option<&str>)]) -> Vec<Finding> {
    let keys = referenced_metric_keys(bench);
    let mut out = Vec::new();
    let mut present = BTreeSet::new();
    for (name, text) in baselines {
        match text {
            Some(t) => present.extend(baseline_json_keys(t)),
            None => out.push(finding(
                "bench-baseline",
                bench,
                1,
                format!("references baseline `{name}`, which does not exist"),
            )),
        }
    }
    let names = baselines
        .iter()
        .map(|(n, _)| format!("`{n}`"))
        .collect::<Vec<_>>()
        .join(" / ");
    out.extend(
        keys.iter()
            .filter(|(k, _)| !present.contains(k))
            .map(|(k, line)| {
                finding(
                    "bench-baseline",
                    bench,
                    *line,
                    format!(
                        "metric `{k}` is referenced here but missing from \
                     {names} — the perf gate would fail (or silently \
                     skip) instead of comparing it"
                    ),
                )
            }),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, src)
    }

    #[test]
    fn no_fma_scopes_to_kernel_crates_and_code_tokens() {
        let src =
            "// mul_add in a comment is fine\nlet s = \"mul_add\";\nlet y = a.mul_add(b, c);\n";
        let hits = no_fma(&file("crates/linalg/src/x.rs", src));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 3);
        assert!(no_fma(&file("crates/core/src/x.rs", src)).is_empty());
    }

    #[test]
    fn unsafe_hygiene_accepts_comment_runs_over_attributes() {
        let ok = "// SAFETY: verified at runtime.\n#[target_feature(enable = \"avx2\")]\nunsafe fn f() {}\n";
        assert!(unsafe_hygiene(&file("crates/core/src/x.rs", ok)).is_empty());
        let bad = "fn g() {\n    let x = unsafe { erase() };\n}\n";
        assert_eq!(unsafe_hygiene(&file("crates/core/src/x.rs", bad)).len(), 1);
        let multiline = "// SAFETY: the pointee is pinned\n// and outlives the scope.\nunsafe impl Send for X {}\n";
        assert!(unsafe_hygiene(&file("crates/core/src/x.rs", multiline)).is_empty());
    }

    #[test]
    fn panic_sites_skip_tests_doc_comments_and_unwrap_or() {
        let src = "\
/// let x = foo().unwrap(); // doctest, fine
fn lib() {
    let a = b.unwrap();
    let c = d.unwrap_or_else(|| 0);
    let e = f.expect(\"msg\");
    panic!(\"boom\");
}
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}
";
        let sites = panic_sites(&file("crates/core/src/x.rs", src));
        assert_eq!(sites, vec![3, 5, 6]);
        assert!(panic_sites(&file("tests/x.rs", src)).is_empty());
        assert!(panic_sites(&file("crates/bench/src/x.rs", src)).is_empty());
    }

    #[test]
    fn determinism_flags_iteration_not_lookup() {
        let src = "\
struct S { lanes: RwLock<HashMap<String, u32>> }
fn stats(s: &S) {
    let lanes = s.lanes.read().unwrap();
    for (k, v) in lanes.iter() {}
    let hit = lanes.get(\"x\");
}
";
        let hits = determinism_hazards(&file("crates/core/src/router.rs", src));
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 4);
        // Same code off the serving paths is not flagged.
        assert!(determinism_hazards(&file("crates/core/src/spec.rs", src)).is_empty());
    }

    #[test]
    fn determinism_taints_guards_and_for_loops() {
        let src = "\
struct S { seen: HashSet<u64> }
fn f(s: &S) {
    let mut m = s.seen.lock();
    for x in &m {}
    m.drain();
}
";
        let hits = determinism_hazards(&file("crates/core/src/deploy.rs", src));
        assert_eq!(hits.len(), 2, "{hits:?}");
    }

    #[test]
    fn kernel_crates_reject_wall_clock() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(
            determinism_hazards(&file("crates/linalg/src/x.rs", src)).len(),
            1
        );
        assert!(determinism_hazards(&file("crates/core/src/spec.rs", src)).is_empty());
    }

    #[test]
    fn bench_baseline_catches_missing_and_present_keys() {
        let bench = "\
fn measure() -> Vec<(&'static str, f64)> {
    vec![(\"mesh16_compiled_ns_per_sample\", 1.0), (\"gone_metric_ms\", 2.0)]
}
";
        let f = file("crates/bench/benches/bench_smoke.rs", bench);
        let baseline = "{\n  \"mesh16_compiled_ns_per_sample\": 564.5\n}\n";
        let hits = bench_baseline(&f, &[("BENCH_kernels.json", Some(baseline))]);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("gone_metric_ms"));
        // A missing baseline is its own finding, and with nothing to
        // union against every referenced key is missing too.
        let missing = bench_baseline(&f, &[("BENCH_kernels.json", None)]);
        assert_eq!(missing.len(), 3, "{missing:?}");
        assert!(missing[0].message.contains("does not exist"));
    }

    #[test]
    fn bench_baseline_unions_keys_across_paired_baselines() {
        let bench = "\
fn measure() -> Vec<(&'static str, f64)> {
    vec![(\"kernel_metric_ns\", 1.0), (\"pipeline_metric_us\", 2.0)]
}
";
        let f = file("crates/bench/benches/bench_smoke.rs", bench);
        let kernels = "{\n  \"kernel_metric_ns\": 1.0\n}\n";
        let pipeline = "{\n  \"pipeline_metric_us\": 2.0\n}\n";
        // Each key lives in a different baseline: the union covers both.
        let hits = bench_baseline(
            &f,
            &[
                ("BENCH_kernels.json", Some(kernels)),
                ("BENCH_pipeline.json", Some(pipeline)),
            ],
        );
        assert!(hits.is_empty(), "{hits:?}");
        // Dropping one baseline surfaces both its absence and the key
        // that no remaining baseline covers.
        let hits = bench_baseline(
            &f,
            &[
                ("BENCH_kernels.json", Some(kernels)),
                ("BENCH_pipeline.json", None),
            ],
        );
        assert_eq!(hits.len(), 2, "{hits:?}");
    }
}
