//! The rule engine's file model: lexed sources, `#[cfg(test)]` region
//! tracking, suppression directives, and the workspace walk.

use crate::lexer::{lex, Token};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Rule names the engine knows. Directives naming anything else are
/// themselves findings.
pub const RULES: &[&str] = &[
    "no-fma",
    "unsafe-hygiene",
    "panic-policy",
    "determinism-hazards",
    "bench-baseline",
];

/// One reported violation, with a workspace-relative `file:line` span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (one of [`RULES`], or `directive` for a
    /// malformed suppression comment).
    pub rule: String,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A validated `// oplix-lint: allow(<rule>, reason = "...")` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule being suppressed.
    pub rule: String,
    /// Line the directive comment starts on.
    pub line: u32,
}

/// A lexed source file plus the derived structure rules need.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Raw source lines (for line-oriented checks like SAFETY comments).
    pub lines: Vec<String>,
    /// The token stream, comments included.
    pub tokens: Vec<Token>,
    /// Lines inside `#[cfg(test)]` items (whole test modules, test fns).
    pub test_lines: BTreeSet<u32>,
    /// Valid suppression directives found in the file.
    pub allows: Vec<Allow>,
    /// Findings produced while parsing directives (malformed ones).
    pub directive_findings: Vec<Finding>,
}

impl SourceFile {
    /// Lex and annotate a source file. Never fails — a file the lexer
    /// struggles with degrades to fewer tokens, not an error.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let tokens = lex(text);
        let test_lines = test_region_lines(&tokens);
        let (allows, directive_findings) = parse_directives(path, &tokens);
        SourceFile {
            path: path.to_string(),
            lines: text.lines().map(|l| l.to_string()).collect(),
            tokens,
            test_lines,
            allows,
            directive_findings,
        }
    }

    /// True if `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test_region(&self, line: u32) -> bool {
        self.test_lines.contains(&line)
    }

    /// True if a finding of `rule` at `line` is suppressed by an
    /// `allow` directive on the same line or the line directly above.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
    }

    /// Drop findings covered by a scoped `allow(...)` directive.
    pub fn apply_allows(&self, findings: Vec<Finding>) -> Vec<Finding> {
        findings
            .into_iter()
            .filter(|f| !self.is_allowed(&f.rule, f.line))
            .collect()
    }
}

/// Compute the set of lines covered by `#[cfg(test)]` items.
///
/// On seeing a `#[cfg(test)]` (or `#[cfg(all(test, …))]`) attribute, the
/// following item is skipped: everything up to the matching close brace
/// of its first `{`, or up to a `;` if one appears first (attribute on a
/// brace-less item such as a `use`).
fn test_region_lines(tokens: &[Token]) -> BTreeSet<u32> {
    let mut out = BTreeSet::new();
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut i = 0;
    while i < code.len() {
        if code[i].is_punct('#') && i + 1 < code.len() && code[i + 1].is_punct('[') {
            // Find the matching `]` and check the attribute mentions
            // `cfg` and `test`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let (mut saw_cfg, mut saw_test) = (false, false);
            while j < code.len() && depth > 0 {
                if code[j].is_punct('[') {
                    depth += 1;
                } else if code[j].is_punct(']') {
                    depth -= 1;
                } else if code[j].is_ident("cfg") {
                    saw_cfg = true;
                } else if code[j].is_ident("test") {
                    saw_test = true;
                }
                j += 1;
            }
            if saw_cfg && saw_test {
                let start_line = code[i].line;
                // Skip the annotated item: to the `;` of a brace-less
                // item, or through the matching `}` of its first block.
                let mut k = j;
                let mut brace_depth = 0usize;
                let mut entered = false;
                while k < code.len() {
                    let t = code[k];
                    if !entered && t.is_punct(';') {
                        break;
                    }
                    if t.is_punct('{') {
                        brace_depth += 1;
                        entered = true;
                    } else if t.is_punct('}') {
                        brace_depth = brace_depth.saturating_sub(1);
                        if entered && brace_depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                let end_line = code.get(k).map_or(u32::MAX, |t| t.line);
                for l in start_line..=end_line {
                    out.insert(l);
                }
                i = k + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

/// Parse every `oplix-lint:` comment in the stream. Valid directives
/// become [`Allow`]s; malformed ones (unknown rule, missing reason)
/// become findings so a typo can't silently un-suppress.
fn parse_directives(path: &str, tokens: &[Token]) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for t in tokens {
        if !t.is_comment() {
            continue;
        }
        let body = t.text.trim_start_matches(['/', '!', '*']).trim();
        let Some(rest) = body.strip_prefix("oplix-lint:") else {
            continue;
        };
        let rest = rest.trim();
        let err = |msg: String| Finding {
            rule: "directive".into(),
            path: path.to_string(),
            line: t.line,
            message: msg,
        };
        let Some(inner) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.trim_end().strip_suffix(')'))
        else {
            findings.push(err(format!(
                "malformed directive `{rest}`: expected \
                 `allow(<rule>, reason = \"...\")`"
            )));
            continue;
        };
        let Some((rule, reason)) = inner.split_once(',') else {
            findings.push(err(format!(
                "directive `allow({inner})` is missing a `reason = \"...\"`"
            )));
            continue;
        };
        let rule = rule.trim();
        if !RULES.contains(&rule) {
            findings.push(err(format!(
                "directive names unknown rule `{rule}` (known: {})",
                RULES.join(", ")
            )));
            continue;
        }
        let reason = reason.trim();
        let reason_text = reason
            .strip_prefix("reason")
            .map(|r| r.trim_start())
            .and_then(|r| r.strip_prefix('='))
            .map(|r| r.trim())
            .and_then(|r| r.strip_prefix('"'))
            .and_then(|r| r.strip_suffix('"'));
        match reason_text {
            Some(text) if !text.trim().is_empty() => allows.push(Allow {
                rule: rule.to_string(),
                line: t.line,
            }),
            Some(_) => findings.push(err(format!(
                "directive `allow({rule}, ...)` has an empty reason — say why"
            ))),
            None => findings.push(err(format!(
                "directive `allow({rule}, ...)` is missing `reason = \"...\"`"
            ))),
        }
    }
    (allows, findings)
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn rust_files_under(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            rust_files_under(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Enumerate the workspace source set the checker walks: `src/`,
/// `tests/`, `crates/*/src/`, and `crates/*/benches/` under `root`.
/// Returns workspace-relative paths with `/` separators, sorted.
pub fn workspace_files(root: &Path) -> Vec<String> {
    let mut abs = Vec::new();
    rust_files_under(&root.join("src"), &mut abs);
    rust_files_under(&root.join("tests"), &mut abs);
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for d in dirs {
            rust_files_under(&d.join("src"), &mut abs);
            rust_files_under(&d.join("benches"), &mut abs);
        }
    }
    let mut rel: Vec<String> = abs
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| {
            p.components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    rel.sort();
    rel.dedup();
    rel
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_regions_cover_whole_modules() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn also_live() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(2));
        assert!(f.in_test_region(4));
        assert!(!f.in_test_region(6));
    }

    #[test]
    fn cfg_test_on_braceless_item_stops_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.in_test_region(2));
        assert!(!f.in_test_region(3));
    }

    #[test]
    fn valid_allow_suppresses_same_and_next_line() {
        let src =
            "// oplix-lint: allow(no-fma, reason = \"test fixture\")\nlet y = a.mul_add(b, c);\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.directive_findings.is_empty());
        assert!(f.is_allowed("no-fma", 1));
        assert!(f.is_allowed("no-fma", 2));
        assert!(!f.is_allowed("no-fma", 3));
        assert!(!f.is_allowed("panic-policy", 2));
    }

    #[test]
    fn malformed_directives_are_findings() {
        let cases = [
            (
                "// oplix-lint: allow(not-a-rule, reason = \"x\")",
                "unknown rule",
            ),
            ("// oplix-lint: allow(no-fma)", "missing"),
            (
                "// oplix-lint: allow(no-fma, reason = \"\")",
                "empty reason",
            ),
            ("// oplix-lint: disallow(no-fma)", "malformed"),
        ];
        for (src, want) in cases {
            let f = SourceFile::parse("x.rs", src);
            assert_eq!(f.directive_findings.len(), 1, "{src}");
            assert!(
                f.directive_findings[0].message.contains(want),
                "{src}: {}",
                f.directive_findings[0].message
            );
            assert!(f.allows.is_empty(), "{src}");
        }
    }
}
