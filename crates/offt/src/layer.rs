//! The trainable block-circulant (OFFT) dense layer.

use oplix_nn::ctensor::CTensor;
use oplix_nn::layers::CLayer;
use oplix_nn::param::{Param, ParamVisitor};
use oplix_nn::tensor::Tensor;
use rand::Rng;

/// A real block-circulant dense layer `y = C x + b`.
///
/// The logical `m×n` weight is padded to multiples of the block size `k`
/// and tiled into circulant blocks; block `(i, j)` is parameterised by `k`
/// real values `w[i][j][·]` with `C_block = circ(w)`, so the block's action
/// is the circular convolution `y_i += w_ij ⊛ x_j`.
///
/// The layer is real-valued (as in the OFFT paper); applied to a complex
/// input it acts on the real and imaginary parts independently.
#[derive(Debug)]
pub struct OfftDense {
    n_in: usize,
    n_out: usize,
    k: usize,
    nb: usize,
    mb: usize,
    /// Circulant parameters, shape `[mb, nb, k]`.
    w: Param,
    /// Bias, shape `[n_out]`.
    b: Param,
    cache: Option<CTensor>,
}

impl OfftDense {
    /// Creates a block-circulant layer with block size `k` (the OFFT paper
    /// uses small powers of two; our Fig. 7 harness uses 8).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or either dimension is zero.
    pub fn new<R: Rng>(n_in: usize, n_out: usize, k: usize, rng: &mut R) -> Self {
        assert!(k > 0, "block size must be positive");
        assert!(n_in > 0 && n_out > 0, "layer dimensions must be positive");
        let nb = n_in.div_ceil(k);
        let mb = n_out.div_ceil(k);
        // Fan-in per output element is n_in (each output touches every
        // input once through its row of circulant blocks).
        let w = Param::new(Tensor::kaiming_uniform(&[mb, nb, k], n_in, rng));
        OfftDense {
            n_in,
            n_out,
            k,
            nb,
            mb,
            w,
            b: Param::new_no_decay(Tensor::zeros(&[n_out])),
            cache: None,
        }
    }

    /// Logical input width.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Logical output width.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Block size.
    pub fn block_size(&self) -> usize {
        self.k
    }

    /// `(block_rows, block_cols)` of the padded weight.
    pub fn blocks(&self) -> (usize, usize) {
        (self.mb, self.nb)
    }

    /// Number of independent real parameters (the Fig. 7 `#Para` metric).
    pub fn param_count(&self) -> usize {
        self.mb * self.nb * self.k + self.n_out
    }

    /// Reconstructs the full (padded) dense matrix this layer implements —
    /// a test/deployment helper, `[mb·k, nb·k]`.
    pub fn to_dense(&self) -> Tensor {
        let (mb, nb, k) = (self.mb, self.nb, self.k);
        let mut dense = Tensor::zeros(&[mb * k, nb * k]);
        for bi in 0..mb {
            for bj in 0..nb {
                let base = (bi * nb + bj) * k;
                for p in 0..k {
                    for q in 0..k {
                        // circ(w)[p][q] = w[(p - q) mod k]
                        let widx = (p + k - q) % k;
                        let v = self.w.value.as_slice()[base + widx];
                        dense.as_mut_slice()[(bi * k + p) * nb * k + bj * k + q] = v;
                    }
                }
            }
        }
        dense
    }

    /// Applies the block-circulant product to one padded real vector.
    fn apply_real(&self, x_pad: &[f32], y_pad: &mut [f32]) {
        let (mb, nb, k) = (self.mb, self.nb, self.k);
        for bi in 0..mb {
            let yb = &mut y_pad[bi * k..(bi + 1) * k];
            for bj in 0..nb {
                let wb = &self.w.value.as_slice()[(bi * nb + bj) * k..(bi * nb + bj + 1) * k];
                let xb = &x_pad[bj * k..(bj + 1) * k];
                // y[p] += sum_q w[(p-q) mod k] * x[q]
                for p in 0..k {
                    let mut acc = 0.0f32;
                    for q in 0..k {
                        acc += wb[(p + k - q) % k] * xb[q];
                    }
                    yb[p] += acc;
                }
            }
        }
    }

    fn pad_batch(&self, x: &Tensor) -> Vec<f32> {
        let (batch, n) = (x.shape()[0], x.shape()[1]);
        let np = self.nb * self.k;
        let mut out = vec![0.0f32; batch * np];
        for i in 0..batch {
            out[i * np..i * np + n].copy_from_slice(&x.as_slice()[i * n..(i + 1) * n]);
        }
        out
    }
}

impl CLayer for OfftDense {
    fn forward(&mut self, x: &CTensor, train: bool) -> CTensor {
        assert_eq!(x.shape().len(), 2, "OfftDense expects [batch, features]");
        assert_eq!(x.shape()[1], self.n_in, "OfftDense fan-in mismatch");
        if train {
            self.cache = Some(x.clone());
        }
        let batch = x.shape()[0];
        let (np, mp) = (self.nb * self.k, self.mb * self.k);
        let xr = self.pad_batch(&x.re);
        let xi = self.pad_batch(&x.im);
        let mut y_re = Tensor::zeros(&[batch, self.n_out]);
        let mut y_im = Tensor::zeros(&[batch, self.n_out]);
        let mut buf = vec![0.0f32; mp];
        for i in 0..batch {
            buf.fill(0.0);
            self.apply_real(&xr[i * np..(i + 1) * np], &mut buf);
            for j in 0..self.n_out {
                y_re.as_mut_slice()[i * self.n_out + j] = buf[j] + self.b.value.as_slice()[j];
            }
            buf.fill(0.0);
            self.apply_real(&xi[i * np..(i + 1) * np], &mut buf);
            for j in 0..self.n_out {
                y_im.as_mut_slice()[i * self.n_out + j] = buf[j];
            }
        }
        CTensor::new(y_re, y_im)
    }

    fn backward(&mut self, dy: &CTensor) -> CTensor {
        let x = self
            .cache
            .take()
            .expect("backward called before forward(train=true)");
        let batch = x.shape()[0];
        let (mb, nb, k) = (self.mb, self.nb, self.k);
        let (np, mp) = (nb * k, mb * k);

        let xr = self.pad_batch(&x.re);
        let xi = self.pad_batch(&x.im);
        // Pad output grads to mp.
        let pad_dy = |t: &Tensor| {
            let mut out = vec![0.0f32; batch * mp];
            for i in 0..batch {
                out[i * mp..i * mp + self.n_out]
                    .copy_from_slice(&t.as_slice()[i * self.n_out..(i + 1) * self.n_out]);
            }
            out
        };
        let gr = pad_dy(&dy.re);
        let gi = pad_dy(&dy.im);

        let mut dx_re = Tensor::zeros(&[batch, self.n_in]);
        let mut dx_im = Tensor::zeros(&[batch, self.n_in]);
        let mut dxp = vec![0.0f32; np];

        for i in 0..batch {
            // dw[bi][bj][r] += sum_p dy[bi*k+p] * x[bj*k + (p - r) mod k]
            // dx[bj*k+q]    += sum_p dy[bi*k+p] * w[(p - q) mod k]
            for (grad_slice, x_slice, dx_t) in [
                (
                    &gr[i * mp..(i + 1) * mp],
                    &xr[i * np..(i + 1) * np],
                    &mut dx_re,
                ),
                (
                    &gi[i * mp..(i + 1) * mp],
                    &xi[i * np..(i + 1) * np],
                    &mut dx_im,
                ),
            ] {
                dxp.fill(0.0);
                for bi in 0..mb {
                    let g = &grad_slice[bi * k..(bi + 1) * k];
                    for bj in 0..nb {
                        let widx = (bi * nb + bj) * k;
                        let xb = &x_slice[bj * k..(bj + 1) * k];
                        let dw = &mut self.w.grad.as_mut_slice()[widx..widx + k];
                        let wv = &self.w.value.as_slice()[widx..widx + k];
                        for p in 0..k {
                            let gp = g[p];
                            if gp == 0.0 {
                                continue;
                            }
                            for r in 0..k {
                                dw[r] += gp * xb[(p + k - r) % k];
                            }
                            let dxb = &mut dxp[bj * k..(bj + 1) * k];
                            for q in 0..k {
                                dxb[q] += gp * wv[(p + k - q) % k];
                            }
                        }
                    }
                }
                dx_t.as_mut_slice()[i * self.n_in..(i + 1) * self.n_in]
                    .copy_from_slice(&dxp[..self.n_in]);
            }
            // Bias: real gradient only (bias is real-valued).
            for j in 0..self.n_out {
                self.b.grad.as_mut_slice()[j] += dy.re.at2(i, j);
            }
        }
        CTensor::new(dx_re, dx_im)
    }

    fn visit_params(&mut self, visitor: &mut ParamVisitor) {
        visitor(&mut self.w);
        visitor(&mut self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_dense_reconstruction() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = OfftDense::new(8, 8, 4, &mut rng);
        let x = CTensor::from_re(Tensor::random_uniform(&[2, 8], 1.0, &mut rng));
        let y = layer.forward(&x, false);
        let dense = layer.to_dense();
        for i in 0..2 {
            for p in 0..8 {
                let mut acc = layer.b.value.as_slice()[p];
                for q in 0..8 {
                    acc += dense.at2(p, q) * x.re.at2(i, q);
                }
                assert!(
                    (y.re.at2(i, p) - acc).abs() < 1e-4,
                    "row {p}: {} vs {acc}",
                    y.re.at2(i, p)
                );
            }
        }
    }

    #[test]
    fn handles_non_multiple_dimensions() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = OfftDense::new(10, 6, 4, &mut rng);
        assert_eq!(layer.blocks(), (2, 3));
        let x = CTensor::from_re(Tensor::random_uniform(&[3, 10], 1.0, &mut rng));
        let y = layer.forward(&x, false);
        assert_eq!(y.shape(), &[3, 6]);
    }

    #[test]
    fn param_count_is_compressed() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = OfftDense::new(64, 32, 8, &mut rng);
        // 4 x 8 blocks x 8 params + 32 biases = 288 vs dense 64*32 = 2048.
        assert_eq!(layer.param_count(), 4 * 8 * 8 + 32);
        assert!(layer.param_count() < 64 * 32 / 4);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = OfftDense::new(6, 6, 3, &mut rng);
        let x = CTensor::from_re(Tensor::random_uniform(&[2, 6], 1.0, &mut rng));
        let y = layer.forward(&x, true);
        let dy = CTensor::new(Tensor::full(y.shape(), 1.0), Tensor::zeros(y.shape()));
        let dx = layer.backward(&dy);

        let loss = |layer: &mut OfftDense, x: &CTensor| {
            let y = layer.forward(x, false);
            y.re.sum()
        };
        let eps = 1e-3f32;
        for idx in 0..layer.w.value.numel() {
            let analytic = layer.w.grad.as_slice()[idx];
            layer.w.value.as_mut_slice()[idx] += eps;
            let lp = loss(&mut layer, &x);
            layer.w.value.as_mut_slice()[idx] -= 2.0 * eps;
            let lm = loss(&mut layer, &x);
            layer.w.value.as_mut_slice()[idx] += eps;
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (analytic - fd).abs() < 2e-2,
                "w idx {idx}: {analytic} vs {fd}"
            );
        }
        for idx in 0..6 {
            let mut xp = x.clone();
            xp.re.as_mut_slice()[idx] += eps;
            let lp = loss(&mut layer, &xp);
            let mut xm = x.clone();
            xm.re.as_mut_slice()[idx] -= eps;
            let lm = loss(&mut layer, &xm);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!((dx.re.as_slice()[idx] - fd).abs() < 2e-2, "x idx {idx}");
        }
    }

    #[test]
    fn circulant_structure_shift_property() {
        // A circulant block commutes with cyclic shifts: C(shift(x)) =
        // shift(C(x)) within one block.
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = OfftDense::new(4, 4, 4, &mut rng);
        layer.b.value.zero_();
        let x: Vec<f32> = (0..4).map(|v| v as f32 + 1.0).collect();
        let shifted: Vec<f32> = (0..4).map(|q| x[(q + 3) % 4]).collect();
        let run = |layer: &mut OfftDense, v: &[f32]| {
            let x = CTensor::from_re(Tensor::from_vec(&[1, 4], v.to_vec()));
            layer.forward(&x, false).re
        };
        let y = run(&mut layer, &x);
        let ys = run(&mut layer, &shifted);
        for p in 0..4 {
            assert!((ys.at2(0, p) - y.at2(0, (p + 3) % 4)).abs() < 1e-5);
        }
    }

    #[test]
    fn trains_on_toy_problem() {
        use oplix_nn::head::ReHead;
        use oplix_nn::layers::{CRelu, CSequential};
        use oplix_nn::network::Network;
        use oplix_nn::optim::Sgd;
        use oplix_nn::trainer::{fit, CDataset};

        let mut rng = StdRng::seed_from_u64(6);
        let body = CSequential::new()
            .push(OfftDense::new(4, 8, 4, &mut rng))
            .push(CRelu::new())
            .push(OfftDense::new(8, 2, 2, &mut rng));
        let mut net = Network::new(body, Box::new(ReHead::new()));

        let mut re = Tensor::zeros(&[32, 4]);
        let mut labels = Vec::new();
        for i in 0..32 {
            let class = i % 2;
            let sign = if class == 0 { 1.0 } else { -1.0f32 };
            for j in 0..4 {
                re.as_mut_slice()[i * 4 + j] =
                    sign * (j as f32 * 0.2 + 0.5) + rng.gen_range(-0.1..0.1);
            }
            labels.push(class);
        }
        let data = CDataset::new(CTensor::from_re(re), labels);
        let mut opt = Sgd::with_momentum(0.05, 0.9, 0.0);
        let acc = fit(&mut net, &data, &data, 30, 8, &mut opt, &mut rng, false);
        assert!(acc > 0.9, "accuracy only {acc}");
    }
}
