//! Optical device cost model of the OFFT architecture.
//!
//! Fig. 7 of the OplixNet paper compares #DC and #PS between OplixNet and
//! OFFT, both normalised to the original (dense SVD) ONN. The OplixNet side
//! uses the exact MZI formula; for OFFT we model the structure of Gu et al.
//! (ASP-DAC 2020) with explicitly documented assumptions:
//!
//! * Each `k×k` circulant block owns a dedicated engine — a `k`-point OFFT,
//!   `k` spectral multipliers, and a `k`-point OIFFT — so the layer keeps
//!   the single-pass throughput of the dense mesh (no time-multiplexed
//!   hardware sharing across blocks).
//! * A `k`-point optical FFT contains `(k/2)·log2(k)` 2×2 butterflies; each
//!   butterfly is realised by the **same MZI structure as the main
//!   comparison (2 DCs + 1 PS)**, as §IV of the paper prescribes for
//!   fairness.
//! * Each spectral multiplier (one complex coefficient) is one attenuating
//!   MZI (2 DCs + 1 PS) plus one phase shifter.

/// Device inventory of an OFFT network, in raw DC/PS counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OfftCost {
    /// Directional couplers.
    pub dcs: u64,
    /// Phase shifters.
    pub pss: u64,
    /// Independent real weight parameters.
    pub params: u64,
}

impl OfftCost {
    /// Component-wise sum.
    pub fn plus(&self, other: &OfftCost) -> OfftCost {
        OfftCost {
            dcs: self.dcs + other.dcs,
            pss: self.pss + other.pss,
            params: self.params + other.params,
        }
    }
}

/// The documented OFFT cost model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OfftCostModel {
    /// Circulant block size (power of two).
    pub block_size: u64,
}

impl OfftCostModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is not a power of two greater than 1.
    pub fn new(block_size: u64) -> Self {
        assert!(
            block_size.is_power_of_two() && block_size > 1,
            "block size must be a power of two > 1"
        );
        OfftCostModel { block_size }
    }

    /// Butterflies in one `k`-point FFT: `(k/2)·log2(k)`.
    pub fn butterflies_per_fft(&self) -> u64 {
        let k = self.block_size;
        (k / 2) * k.trailing_zeros() as u64
    }

    /// Cost of one `m×n` OFFT layer.
    pub fn layer_cost(&self, m: u64, n: u64) -> OfftCost {
        let k = self.block_size;
        let mb = m.div_ceil(k);
        let nb = n.div_ceil(k);
        let blocks = mb * nb;
        // Per block: OFFT + OIFFT butterflies, each an MZI (2 DC + 1 PS),
        // plus k spectral multipliers (one attenuating MZI + one PS each).
        let butterflies = 2 * self.butterflies_per_fft();
        let dcs_per_block = butterflies * 2 + k * 2;
        let pss_per_block = butterflies + k * 2;
        OfftCost {
            dcs: blocks * dcs_per_block,
            pss: blocks * pss_per_block,
            params: blocks * k + m, // circulant params + biases
        }
    }

    /// Cost of a whole OFFT MLP described by its layer widths
    /// (e.g. `[784, 400, 10]`).
    pub fn network_cost(&self, widths: &[u64]) -> OfftCost {
        widths
            .windows(2)
            .map(|w| self.layer_cost(w[1], w[0]))
            .fold(OfftCost::default(), |a, b| a.plus(&b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn butterfly_counts() {
        assert_eq!(OfftCostModel::new(2).butterflies_per_fft(), 1);
        assert_eq!(OfftCostModel::new(4).butterflies_per_fft(), 4);
        assert_eq!(OfftCostModel::new(8).butterflies_per_fft(), 12);
        assert_eq!(OfftCostModel::new(16).butterflies_per_fft(), 32);
    }

    #[test]
    fn layer_cost_scales_with_blocks() {
        let model = OfftCostModel::new(8);
        let small = model.layer_cost(8, 8);
        let big = model.layer_cost(16, 16);
        assert_eq!(big.dcs, 4 * small.dcs);
        // Params include biases: blocks*k + m.
        assert_eq!(small.params, 8 + 8);
        assert_eq!(big.params, 4 * 8 + 16);
    }

    #[test]
    fn offt_severely_compresses_parameters() {
        // Model1 layer 1: 400 x 784 dense has 313 600 weights; OFFT k=8
        // keeps 50*98*8 = 39 200.
        let model = OfftCostModel::new(8);
        let cost = model.layer_cost(400, 784);
        assert_eq!(cost.params, 50 * 98 * 8 + 400);
        assert!(cost.params < 313_600 / 7);
    }

    #[test]
    fn network_cost_sums_layers() {
        let model = OfftCostModel::new(8);
        let net = model.network_cost(&[784, 400, 10]);
        let l1 = model.layer_cost(400, 784);
        let l2 = model.layer_cost(10, 400);
        assert_eq!(net, l1.plus(&l2));
    }

    #[test]
    fn fig7_shape_offt_uses_more_devices_than_oplixnet() {
        // OplixNet Model1 (complex 392-200 + merge 20x200):
        // mzi(200,392) + mzi(20,200) MZIs -> x2 DCs, x1 PSs.
        let oplix_mzis = oplix_photonics_mzi(200, 392) + oplix_photonics_mzi(20, 200);
        let oplix_dcs = 2 * oplix_mzis;
        let oplix_pss = oplix_mzis;
        let offt = OfftCostModel::new(8).network_cost(&[784, 400, 16]);
        assert!(
            offt.dcs > oplix_dcs,
            "OFFT DCs {} must exceed OplixNet {}",
            offt.dcs,
            oplix_dcs
        );
        assert!(offt.pss > oplix_pss);
        // ...but OFFT holds far fewer parameters.
        let oplix_params = 2 * (392 * 200 + 200 + 200 * 20 + 20);
        assert!(offt.params < oplix_params as u64 / 2);
    }

    /// Local copy of the MZI formula to keep this crate free of a photonics
    /// dependency cycle in tests.
    fn oplix_photonics_mzi(m: u64, n: u64) -> u64 {
        n * (n - 1) / 2 + m.min(n) + m * (m - 1) / 2
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = OfftCostModel::new(6);
    }
}
