//! OFFT: the FFT-based area-efficient ONN baseline of Gu et al.
//! (ASP-DAC 2020) — the comparator of the paper's Fig. 7.
//!
//! OFFT replaces each dense optical weight matrix with a **block-circulant**
//! matrix: the `m×n` weight is tiled into `k×k` circulant blocks, each
//! parameterised by only `k` values, and each block's matrix–vector product
//! is a circular convolution realisable with optical FFT (butterfly)
//! modules instead of a full MZI mesh.
//!
//! * [`layer`] — the trainable block-circulant layer (forward + backward).
//! * [`cost`] — the DC/PS/parameter cost model used for Fig. 7
//!   (assumptions documented on [`cost::OfftCostModel`]).
//! * [`model`] — OFFT-FCNN builders for the four Fig. 7 configurations.

// The unsafe surface of the workspace is confined to the executor and the
// `#[target_feature]` kernel clones; this crate must stay free of it.
#![forbid(unsafe_code)]

pub mod cost;
pub mod layer;
pub mod model;

pub use cost::OfftCostModel;
pub use layer::OfftDense;
