//! OFFT-FCNN builders for the Fig. 7 comparison.

use crate::cost::{OfftCost, OfftCostModel};
use crate::layer::OfftDense;
use oplix_nn::head::ReHead;
use oplix_nn::layers::{CRelu, CSequential};
use oplix_nn::network::Network;
use rand::Rng;

/// An OFFT multilayer perceptron: block-circulant layers with ReLU between
/// them and a real logit head (OFFT networks are real-valued).
pub struct OfftMlp {
    /// The trainable network.
    pub net: Network,
    /// Layer widths including input and output.
    pub widths: Vec<usize>,
    /// Block size.
    pub block_size: usize,
}

impl OfftMlp {
    /// Builds an OFFT MLP with the given widths (e.g. `[784, 400, 10]`).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are supplied.
    pub fn new<R: Rng>(widths: &[usize], block_size: usize, rng: &mut R) -> Self {
        assert!(widths.len() >= 2, "need at least input and output widths");
        let mut body = CSequential::new();
        for (i, w) in widths.windows(2).enumerate() {
            body.add(Box::new(OfftDense::new(w[0], w[1], block_size, rng)));
            if i + 2 < widths.len() {
                body.add(Box::new(CRelu::new()));
            }
        }
        OfftMlp {
            net: Network::new(body, Box::new(ReHead::new())),
            widths: widths.to_vec(),
            block_size,
        }
    }

    /// Device and parameter cost under the documented model.
    pub fn cost(&self) -> OfftCost {
        let widths: Vec<u64> = self.widths.iter().map(|&w| w as u64).collect();
        OfftCostModel::new(self.block_size as u64).network_cost(&widths)
    }
}

impl std::fmt::Debug for OfftMlp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "OfftMlp(widths={:?}, k={})",
            self.widths, self.block_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oplix_nn::ctensor::CTensor;
    use oplix_nn::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builds_and_runs() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mlp = OfftMlp::new(&[16, 12, 4], 4, &mut rng);
        let x = CTensor::from_re(Tensor::random_uniform(&[2, 16], 1.0, &mut rng));
        let logits = mlp.net.forward(&x, false);
        assert_eq!(logits.shape(), &[2, 4]);
    }

    #[test]
    fn cost_matches_model() {
        let mut rng = StdRng::seed_from_u64(2);
        let mlp = OfftMlp::new(&[784, 400, 10], 8, &mut rng);
        let cost = mlp.cost();
        assert_eq!(cost, OfftCostModel::new(8).network_cost(&[784, 400, 10]));
        assert!(cost.params > 0);
    }
}
