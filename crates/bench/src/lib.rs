//! Shared helpers for the OplixNet benchmark harness.
//!
//! The experiment benches (`table2`, `table3`, `fig7`, `fig8`, `fig9`,
//! `ablation_*`) regenerate the paper's tables and figures; the
//! `*_micro` benches measure the substrates with Criterion.
//!
//! Set `OPLIX_BENCH_SCALE=quick` to run the experiment benches at
//! smoke-test scale.
//!
//! The [`baseline`] module carries the `BENCH_*.json` metadata schema
//! and the flat-JSON parsing behind the `bench_smoke` perf gate.

// The unsafe surface of the workspace is confined to the executor and the
// `#[target_feature]` kernel clones; this crate must stay free of it.
#![forbid(unsafe_code)]

pub mod baseline;

use oplixnet::experiments::Scale;
use std::time::Instant;

/// The scale the experiment benches run at: `Scale::standard()` unless the
/// `OPLIX_BENCH_SCALE=quick` environment variable is set.
pub fn bench_scale() -> Scale {
    match std::env::var("OPLIX_BENCH_SCALE").as_deref() {
        Ok("quick") => Scale::quick(),
        _ => Scale::standard(),
    }
}

/// Runs one experiment, printing a header, the artifact and the elapsed
/// wall time.
pub fn run_experiment<T: std::fmt::Display>(name: &str, f: impl FnOnce(&Scale) -> T) {
    let scale = bench_scale();
    println!("==============================================================");
    println!("{name}");
    println!("==============================================================");
    let start = Instant::now();
    let report = f(&scale);
    println!("{report}");
    println!(
        "[{name} completed in {:.1}s]",
        start.elapsed().as_secs_f64()
    );
}
