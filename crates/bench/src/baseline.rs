//! Benchmark baseline metadata and the flat-JSON helpers behind the
//! perf-smoke regression gate.
//!
//! Every `BENCH_*.json` baseline at the workspace root carries three
//! environment fields — `cores`, `rustc`, `commit` — written by the bench
//! that produced it ([`BenchMeta::current`] + [`BenchMeta::json_fields`]).
//! The `bench_smoke` gate re-measures the kernel suite and compares
//! against the checked-in numbers *only* when the environment matches
//! (same core count, same compiler): comparing a laptop baseline against
//! a CI runner, or numbers from two different rustc codegen generations,
//! produces false regressions rather than signal, so a mismatch skips
//! the gate ([`env_mismatch`]) instead of failing it. `commit` is
//! informational — it records where a baseline came from, not whether it
//! is comparable.

use std::collections::BTreeMap;

/// Regression threshold for the perf-smoke gate: a re-measured metric
/// may drift up to this factor above its checked-in baseline before the
/// gate fails. Deliberately generous — single-shot CI timings on a
/// shared runner are noisy — while still catching the 2×-and-worse
/// regressions that matter (an accidentally de-vectorised kernel, a
/// quadratic slip in a hot loop).
pub const PERF_SMOKE_THRESHOLD: f64 = 1.35;

/// The environment a benchmark baseline was measured in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchMeta {
    /// Cores visible to the process (`std::thread::available_parallelism`).
    pub cores: usize,
    /// Full `rustc --version` string of the compiler that built the bench.
    pub rustc: String,
    /// Short git commit hash at measurement time (`"unknown"` outside a
    /// work tree).
    pub commit: String,
}

impl BenchMeta {
    /// Metadata for the currently running bench process.
    pub fn current() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        let rustc = env!("OPLIX_RUSTC_VERSION").to_string();
        let commit = std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|| "unknown".to_string());
        BenchMeta {
            cores,
            rustc,
            commit,
        }
    }

    /// The three metadata lines every baseline writer splices ahead of
    /// its metric fields (two-space indent, trailing comma and newline).
    ///
    /// ```
    /// let meta = oplix_bench::baseline::BenchMeta {
    ///     cores: 1,
    ///     rustc: "rustc 1.0.0".into(),
    ///     commit: "abc1234".into(),
    /// };
    /// assert_eq!(
    ///     meta.json_fields(),
    ///     "  \"cores\": 1,\n  \"rustc\": \"rustc 1.0.0\",\n  \"commit\": \"abc1234\",\n"
    /// );
    /// ```
    pub fn json_fields(&self) -> String {
        format!(
            "  \"cores\": {},\n  \"rustc\": \"{}\",\n  \"commit\": \"{}\",\n",
            self.cores, self.rustc, self.commit
        )
    }
}

/// A scalar field of a flat baseline JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineValue {
    Number(f64),
    Text(String),
}

impl BaselineValue {
    pub fn as_number(&self) -> Option<f64> {
        match self {
            BaselineValue::Number(n) => Some(*n),
            BaselineValue::Text(_) => None,
        }
    }

    pub fn as_text(&self) -> Option<&str> {
        match self {
            BaselineValue::Number(_) => None,
            BaselineValue::Text(s) => Some(s),
        }
    }
}

/// Parses a flat (single-object, no nesting) JSON file of string and
/// number fields — the exact shape every `BENCH_*.json` writer emits.
///
/// Not a general JSON parser (the workspace has no serde): string values
/// must not contain commas, escapes, or braces, which holds for the
/// rustc-version and commit-hash strings the baselines store. Returns
/// `None` on anything it does not understand rather than guessing.
///
/// ```
/// use oplix_bench::baseline::{parse_flat_json, BaselineValue};
/// let map = parse_flat_json("{\n  \"a\": 1.5,\n  \"b\": \"x y\"\n}").unwrap();
/// assert_eq!(map["a"], BaselineValue::Number(1.5));
/// assert_eq!(map["b"].as_text(), Some("x y"));
/// ```
pub fn parse_flat_json(text: &str) -> Option<BTreeMap<String, BaselineValue>> {
    let body = text.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut map = BTreeMap::new();
    for entry in body.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry.split_once(':')?;
        let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
        let value = value.trim();
        let parsed = if let Some(inner) = value.strip_prefix('"') {
            BaselineValue::Text(inner.strip_suffix('"')?.to_string())
        } else {
            BaselineValue::Number(value.parse().ok()?)
        };
        map.insert(key.to_string(), parsed);
    }
    Some(map)
}

/// Returns the reason a parsed baseline must not be compared against the
/// current environment, or `None` when the gate may run.
///
/// Core count and compiler must match exactly; a baseline that predates
/// the metadata schema (missing fields) is also incomparable. The commit
/// field is never checked — baselines are *expected* to come from an
/// earlier commit.
pub fn env_mismatch(
    baseline: &BTreeMap<String, BaselineValue>,
    current: &BenchMeta,
) -> Option<String> {
    let cores = baseline.get("cores").and_then(BaselineValue::as_number);
    let rustc = baseline.get("rustc").and_then(BaselineValue::as_text);
    match (cores, rustc) {
        (None, _) | (_, None) => {
            Some("baseline predates the cores/rustc/commit metadata schema".to_string())
        }
        (Some(c), _) if c as usize != current.cores => Some(format!(
            "baseline measured on {c} core(s), this run sees {}",
            current.cores
        )),
        (_, Some(r)) if r != current.rustc => Some(format!(
            "baseline measured with `{r}`, this run built with `{}`",
            current.rustc
        )),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> BenchMeta {
        BenchMeta {
            cores: 1,
            rustc: "rustc 1.0.0 (abc 2000-01-01)".to_string(),
            commit: "deadbee".to_string(),
        }
    }

    #[test]
    fn json_fields_round_trip_through_parser() {
        let m = meta();
        let json = format!("{{\n{}  \"metric\": 42.5\n}}\n", m.json_fields());
        let map = parse_flat_json(&json).unwrap();
        assert_eq!(map["cores"].as_number(), Some(1.0));
        assert_eq!(map["rustc"].as_text(), Some(m.rustc.as_str()));
        assert_eq!(map["commit"].as_text(), Some("deadbee"));
        assert_eq!(map["metric"].as_number(), Some(42.5));
        assert!(env_mismatch(&map, &m).is_none());
    }

    #[test]
    fn parses_checked_in_baseline_shape() {
        let text = "{\n  \"clients\": 8,\n  \"cores\": 1,\n  \"batcher_speedup\": 1.40\n}\n";
        let map = parse_flat_json(text).unwrap();
        assert_eq!(map.len(), 3);
        assert_eq!(map["batcher_speedup"].as_number(), Some(1.4));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_flat_json("not json").is_none());
        assert!(parse_flat_json("{\"a\" 1}").is_none());
        assert!(parse_flat_json("{\"a\": }").is_none());
    }

    #[test]
    fn mismatched_cores_and_rustc_are_reported() {
        let m = meta();
        let two_cores = parse_flat_json(&format!(
            "{{\n  \"cores\": 2,\n  \"rustc\": \"{}\"\n}}",
            m.rustc
        ))
        .unwrap();
        assert!(env_mismatch(&two_cores, &m).unwrap().contains("core"));
        let other_rustc =
            parse_flat_json("{\n  \"cores\": 1,\n  \"rustc\": \"rustc 0.9.9\"\n}").unwrap();
        assert!(env_mismatch(&other_rustc, &m).unwrap().contains("rustc"));
        let legacy = parse_flat_json("{\n  \"metric\": 1.0\n}").unwrap();
        assert!(env_mismatch(&legacy, &m).unwrap().contains("schema"));
    }

    #[test]
    fn commit_difference_is_not_a_mismatch() {
        let m = meta();
        let map = parse_flat_json(&format!(
            "{{\n  \"cores\": 1,\n  \"rustc\": \"{}\",\n  \"commit\": \"0000000\"\n}}",
            m.rustc
        ))
        .unwrap();
        assert!(env_mismatch(&map, &m).is_none());
    }
}
