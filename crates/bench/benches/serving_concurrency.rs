//! Serving-concurrency benchmark: N concurrent clients through the
//! micro-batching [`Server`] front end vs the same N clients serialised
//! on one engine lock (the pre-serve posture: every caller owns the whole
//! engine for the duration of its blocking call).
//!
//! The headline numbers are hand-timed and written to
//! `BENCH_serving.json` at the workspace root as a baseline other
//! sessions can diff against:
//!
//! * `serialized_sps` — 8 client threads contending one
//!   `Mutex<InferenceEngine>`, one blocking single-sample query per
//!   request: per-request lock handoffs plus a full per-call engine
//!   dispatch every sample.
//! * `batcher_sps` — the same 8 clients submitting to one [`Server`]:
//!   requests coalesce in the bounded queue, the batcher flushes
//!   micro-batches of up to 64 through the engine's borrowed-batch
//!   windowed kernel, and tickets resolve out of band. Expected faster:
//!   one queue handoff per request instead of one lock handoff, and the
//!   per-call engine dispatch is amortised over the whole micro-batch.
//! * `mean_batch_fill` — the occupancy the batcher achieved (1.0 would
//!   mean no coalescing, i.e. no concurrency to harvest).
//!
//! Both paths serve bitwise-identical predictions (asserted outside the
//! timed region); the contrast is pure admission-layer architecture.

use criterion::{criterion_group, criterion_main, Criterion};
use oplix_linalg::Complex64;
use oplix_nn::ctensor::CTensor;
use oplix_nn::tensor::Tensor;
use oplix_photonics::decoder::DecoderKind;
use oplix_photonics::svd_map::MeshStyle;
use oplixnet::engine::{argmax, InferenceEngine};
use oplixnet::serve::{sample_row, Server, Ticket};
use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
use oplixnet::DeployedDetection;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const PER_CLIENT: usize = 250;
/// Paper-scale FCNN geometry (Table II's MNIST-class models assign 28×28
/// images into 64-wide complex inputs), where the mesh walk dominates
/// per-request bookkeeping.
const INPUT: usize = 64;

fn serving_engine() -> InferenceEngine {
    let mut rng = StdRng::seed_from_u64(7);
    let net = build_fcnn(
        &FcnnConfig {
            input: INPUT,
            hidden: 32,
            classes: 10,
        },
        ModelVariant::Split(DecoderKind::Merge),
        &mut rng,
    );
    InferenceEngine::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
        .expect("FCNN deploys")
}

/// One pre-staged request stream per client.
fn request_streams() -> Vec<Vec<Vec<Complex64>>> {
    let mut rng = StdRng::seed_from_u64(11);
    let view = CTensor::new(
        Tensor::random_uniform(&[CLIENTS * PER_CLIENT, INPUT], 1.0, &mut rng),
        Tensor::random_uniform(&[CLIENTS * PER_CLIENT, INPUT], 1.0, &mut rng),
    );
    (0..CLIENTS)
        .map(|c| {
            (0..PER_CLIENT)
                .map(|i| sample_row(&view, c * PER_CLIENT + i))
                .collect()
        })
        .collect()
}

/// 8 clients serialised on one engine lock: the pre-serve posture.
fn run_serialized(streams: &[Vec<Vec<Complex64>>]) -> (Duration, Vec<Vec<usize>>) {
    let engine = Arc::new(Mutex::new(serving_engine()));
    // Warm the buffers outside the timed region.
    let warm = streams[0][0].clone();
    let _ = engine.lock().expect("engine lock").predict(&warm);
    let start = Instant::now();
    let preds: Vec<Vec<usize>> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    stream
                        .iter()
                        .map(|row| {
                            argmax(
                                &engine
                                    .lock()
                                    .expect("engine lock")
                                    .predict(row)
                                    .expect("predict"),
                            )
                        })
                        .collect::<Vec<usize>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    (start.elapsed(), preds)
}

/// The same 8 clients through the micro-batching server.
fn run_batcher(streams: &[Vec<Vec<Complex64>>]) -> (Duration, Vec<Vec<usize>>, f64, u64) {
    let server = Server::builder()
        .max_batch(64)
        .max_wait(Duration::from_micros(500))
        .queue_cap(4096)
        .serve_engine(serving_engine());
    let start = Instant::now();
    let preds: Vec<Vec<usize>> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                let client = server.client();
                scope.spawn(move || {
                    // Pipelined submission: queue the whole stream, then
                    // drain the tickets in order.
                    let tickets: Vec<Ticket> = stream
                        .iter()
                        .map(|row| client.submit(row.clone()).expect("admits"))
                        .collect();
                    tickets
                        .into_iter()
                        .map(|t| t.wait().expect("serves").class().expect("no policy"))
                        .collect::<Vec<usize>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = start.elapsed();
    let stats = server.stats();
    (elapsed, preds, stats.mean_batch_fill(), stats.batches)
}

/// Criterion view of the two admission paths at a small request count.
fn bench_admission_paths(c: &mut Criterion) {
    let streams: Vec<Vec<Vec<Complex64>>> = request_streams()
        .into_iter()
        .map(|s| s.into_iter().take(32).collect())
        .collect();
    let mut group = c.benchmark_group("serving_concurrency");
    group.sample_size(10);
    group.bench_function("serialized_lock_8x32", |b| {
        b.iter(|| run_serialized(&streams).1)
    });
    group.bench_function("micro_batcher_8x32", |b| b.iter(|| run_batcher(&streams).1));
    group.finish();
}

/// Headline numbers, hand-timed, printed, and persisted as the
/// `BENCH_serving.json` baseline.
fn report_serving_baseline(_c: &mut Criterion) {
    let streams = request_streams();
    let total = (CLIENTS * PER_CLIENT) as f64;

    // Interleave a warm-up of each path, then measure.
    let _ = run_serialized(&streams);
    let _ = run_batcher(&streams);
    let (serialized, serial_preds) = run_serialized(&streams);
    let (batched, batch_preds, mean_fill, batches) = run_batcher(&streams);
    assert_eq!(
        serial_preds, batch_preds,
        "the two admission paths must serve identical predictions"
    );

    let serialized_sps = total / serialized.as_secs_f64();
    let batcher_sps = total / batched.as_secs_f64();
    let speedup = batcher_sps / serialized_sps;
    let meta = oplix_bench::baseline::BenchMeta::current();
    let cores = meta.cores;
    println!(
        "serving {CLIENTS} clients x {PER_CLIENT} requests on {cores} core(s): \
         serialized lock {serialized_sps:.0} samples/s, micro-batcher {batcher_sps:.0} samples/s \
         ({speedup:.2}x), mean batch fill {mean_fill:.1} over {batches} batches"
    );

    let json = format!(
        "{{\n  \"clients\": {CLIENTS},\n  \
         \"requests_total\": {},\n\
{meta_fields}  \
         \"serialized_lock_sps\": {serialized_sps:.0},\n  \
         \"micro_batcher_sps\": {batcher_sps:.0},\n  \
         \"batcher_speedup\": {speedup:.2},\n  \
         \"mean_batch_fill\": {mean_fill:.1},\n  \
         \"batches\": {batches}\n}}\n",
        CLIENTS * PER_CLIENT,
        meta_fields = meta.json_fields(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_admission_paths, report_serving_baseline);
criterion_main!(benches);
