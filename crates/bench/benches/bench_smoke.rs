//! Perf-smoke regression gate: quickly re-measures the kernel suite and
//! the staged-walk suite, and fails (exit 1) if any pinned metric
//! regressed more than [`PERF_SMOKE_THRESHOLD`]× against its checked-in
//! baseline (`BENCH_kernels.json` for the kernels,
//! `BENCH_pipeline.json` for the sequential/pipelined staged walks).
//!
//! This is the CI tripwire behind the repo's perf trajectory: the 6.4×
//! compiled-mesh speedup and the lane-kernel numbers can only move
//! forward. It is *not* a benchmark — measurements use few repetitions
//! (seconds, not minutes), and the threshold is generous enough to
//! absorb single-shot noise on a shared runner while still catching an
//! accidentally de-vectorised kernel or a quadratic slip in a hot loop.
//!
//! The gate only runs when the baseline's `cores`/`rustc` metadata
//! matches the current environment ([`env_mismatch`]); otherwise it
//! prints why and exits 0 — a laptop baseline compared on a CI runner is
//! noise, not signal. After a legitimate speedup, refresh the baseline
//! with `cargo bench --bench kernel_compute` and commit the new JSON.
//!
//! Set `OPLIX_PERF_SMOKE_HANDICAP=<factor>` to multiply every measured
//! time before comparison — used once per change to verify the gate
//! actually fails on a deliberate slowdown (e.g. `=2.0` must exit 1).

use oplix_bench::baseline::{env_mismatch, parse_flat_json, BenchMeta, PERF_SMOKE_THRESHOLD};
use oplix_linalg::CMatrix;
use oplix_linalg::Complex64;
use oplix_nn::ctensor::CTensor;
use oplix_nn::tensor::Tensor;
use oplix_photonics::clements::decompose_clements;
use oplix_photonics::compiled::CompiledMesh;
use oplix_photonics::decoder::DecoderKind;
use oplix_photonics::svd_map::MeshStyle;
use oplixnet::engine::InferenceEngine;
use oplixnet::zoo::{build_lenet, LenetConfig, ModelVariant};
use oplixnet::DeployedDetection;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Mean seconds per call of `f`, after one warm-up call.
fn timed<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// Re-measures the pinned kernel metrics (same shapes and seeds as
/// `kernel_compute`, fewer repetitions). Returns `(baseline_key,
/// measured_value)` pairs; smaller is better for every metric.
fn measure() -> Vec<(&'static str, f64)> {
    const MODES: usize = 16;
    let mut rng = StdRng::seed_from_u64(21);
    let mesh = decompose_clements(&CMatrix::random_unitary(MODES, &mut rng));
    let compiled = CompiledMesh::compile(&mesh);
    let window = 256usize;
    let mut rng = StdRng::seed_from_u64(7);
    let base: Vec<Complex64> = (0..MODES * window)
        .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    let mut buf = base.clone();
    let interp = timed(50, || {
        buf.copy_from_slice(&base);
        for row in buf.chunks_exact_mut(MODES) {
            mesh.propagate_in_place(row);
        }
    }) / window as f64;
    let comp = timed(100, || {
        buf.copy_from_slice(&base);
        for row in buf.chunks_exact_mut(MODES) {
            compiled.propagate_in_place(row);
        }
    }) / window as f64;
    let batch = timed(200, || {
        buf.copy_from_slice(&base);
        compiled.propagate_batch(&mut buf, window);
    }) / window as f64;

    let mut rng = StdRng::seed_from_u64(11);
    let x = Tensor::random_uniform(&[64, 256], 1.0, &mut rng);
    let w = Tensor::random_uniform(&[128, 256], 1.0, &mut rng);
    let dy = Tensor::random_uniform(&[64, 128], 1.0, &mut rng);
    let t_transpose = timed(30, || {
        criterion::black_box(x.matmul(&w.transpose2()));
    });
    let t_nt = timed(30, || {
        criterion::black_box(x.matmul_nt(&w));
    });
    let t_tn = timed(30, || {
        criterion::black_box(dy.matmul_tn(&x));
    });

    vec![
        ("mesh16_interpreted_ns_per_sample", interp * 1e9),
        ("mesh16_compiled_ns_per_sample", comp * 1e9),
        ("mesh16_compiled_batch_ns_per_sample", batch * 1e9),
        ("gemm_transpose_then_matmul_ms", t_transpose * 1e3),
        ("gemm_matmul_nt_ms", t_nt * 1e3),
        ("gemm_matmul_tn_ms", t_tn * 1e3),
    ]
}

/// Re-measures the pinned staged-walk metrics (same model, seeds and
/// shapes as the `stage_pipeline` bench, fewer samples/repetitions).
/// Returns `(baseline_key, measured_value)` pairs; smaller is better.
fn measure_pipeline() -> Vec<(&'static str, f64)> {
    const SAMPLES: usize = 128;
    let mut rng = StdRng::seed_from_u64(23);
    let view = CTensor::new(
        Tensor::random_uniform(&[SAMPLES, 1, 16, 16], 1.0, &mut rng),
        Tensor::random_uniform(&[SAMPLES, 1, 16, 16], 1.0, &mut rng),
    );
    let mut rng = StdRng::seed_from_u64(17);
    let cfg = LenetConfig::training_scale(2, 16, 10).halved();
    let net = build_lenet(&cfg, ModelVariant::Split(DecoderKind::Merge), &mut rng);
    let deploy = || {
        InferenceEngine::from_network_shaped(
            &net,
            Some((cfg.in_ch, cfg.input_h, cfg.input_w)),
            DeployedDetection::Differential,
            MeshStyle::Clements,
        )
        .expect("LeNet deploys")
    };
    let mut seq = deploy();
    let mut pip = deploy().with_stage_pipeline(true);
    let t_seq = timed(2, || {
        seq.predict_batch(&view).expect("sequential");
    });
    let t_pip = timed(2, || {
        pip.predict_batch(&view).expect("pipelined");
    });
    vec![
        (
            "staged_walk_sequential_us_per_sample",
            t_seq * 1e6 / SAMPLES as f64,
        ),
        (
            "staged_walk_pipelined_us_per_sample",
            t_pip * 1e6 / SAMPLES as f64,
        ),
    ]
}

/// Gates one `(baseline file, re-measured metrics)` pair. A missing
/// baseline or a mismatched environment skips (prints why); a malformed
/// baseline, a missing pinned key, or a metric beyond
/// [`PERF_SMOKE_THRESHOLD`]× fails. Returns whether the gate failed.
/// Measurement is lazy so a skipped gate costs nothing.
fn gate(path: &str, measure: impl FnOnce() -> Vec<(&'static str, f64)>, handicap: f64) -> bool {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            println!("perf-smoke SKIP: no baseline at {path}: {e}");
            return false;
        }
    };
    let baseline = match parse_flat_json(&text) {
        Some(map) => map,
        None => {
            println!("perf-smoke FAIL: {path} is not a flat JSON baseline");
            return true;
        }
    };
    let current = BenchMeta::current();
    if let Some(reason) = env_mismatch(&baseline, &current) {
        println!("perf-smoke SKIP ({path}): {reason}");
        return false;
    }

    let mut failed = false;
    for (key, measured) in measure() {
        let measured = measured * handicap;
        let Some(base) = baseline.get(key).and_then(|v| v.as_number()) else {
            println!("perf-smoke FAIL: baseline {path} is missing `{key}`");
            failed = true;
            continue;
        };
        let ratio = measured / base;
        let verdict = if ratio > PERF_SMOKE_THRESHOLD {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!("perf-smoke: {key:40} baseline {base:10.2}  measured {measured:10.2}  ({ratio:.2}x) {verdict}");
    }
    failed
}

fn main() {
    // `cargo bench` passes harness flags (e.g. `--bench`); ignore them.
    let handicap: f64 = std::env::var("OPLIX_PERF_SMOKE_HANDICAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    if handicap != 1.0 {
        println!("perf-smoke: applying handicap x{handicap} to all measurements (gate self-test)");
    }

    let kernels = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    let pipeline = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    let mut failed = gate(kernels, measure, handicap);
    failed |= gate(pipeline, measure_pipeline, handicap);
    if failed {
        println!(
            "perf-smoke FAIL: at least one metric regressed beyond \
             {PERF_SMOKE_THRESHOLD}x its checked-in baseline. If a slowdown is \
             intentional, or a speedup legitimately moved the numbers, refresh \
             the baseline with `cargo bench --bench kernel_compute` (kernels) \
             or `cargo bench --bench stage_pipeline` (staged walks) and commit \
             the refreshed JSON."
        );
        std::process::exit(1);
    }
    println!("perf-smoke PASS: all pinned metrics within {PERF_SMOKE_THRESHOLD}x of baseline");
}
