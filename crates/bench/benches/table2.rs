//! Regenerates Table II (accuracy + #MZI + reduction for the four models).

fn main() {
    oplix_bench::run_experiment("Table II: area & accuracy of the four models", |scale| {
        oplixnet::experiments::table2::run(scale)
    });
}
