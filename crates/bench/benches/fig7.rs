//! Regenerates Fig. 7 (OplixNet vs OFFT on Model1-Model4).

fn main() {
    oplix_bench::run_experiment("Fig. 7: comparison with OFFT", |scale| {
        oplixnet::experiments::fig7::run(scale)
    });
}
