//! Regenerates Fig. 8 (data-assignment comparison).

fn main() {
    oplix_bench::run_experiment("Fig. 8: data assignment comparison", |scale| {
        oplixnet::experiments::fig8::run(scale)
    });
}
