//! Regenerates Table III (SCVNN-CVNN mutual learning gains).

fn main() {
    oplix_bench::run_experiment("Table III: SCVNN-CVNN mutual learning", |scale| {
        oplixnet::experiments::table3::run(scale)
    });
}
