//! Ablation A2: phase-noise robustness of the deployed split FCNN.

fn main() {
    oplix_bench::run_experiment("Ablation A2: phase-noise robustness", |scale| {
        oplixnet::experiments::ablation::noise_sweep(
            &[0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2],
            scale,
        )
    });
}
