//! Router-serving benchmark: the multi-model admission tier
//! ([`Router`]) under a three-model fan-in, against the single-model
//! [`Server`] baseline from `serving_concurrency.rs`.
//!
//! The headline numbers are hand-timed and written to
//! `BENCH_router.json` at the workspace root as a baseline other
//! sessions can diff against:
//!
//! * `single_model_sps` — the `serving_concurrency` posture re-measured
//!   in this run (same machine, same load): 8 clients through one
//!   micro-batching `Server`.
//! * `router_fanin_sps` — the same total load spread over three named
//!   models behind one `Router`: per-model EDF lanes, fair-share worker
//!   splitting, per-request routing. The admission tier must stay within
//!   a few percent of the single-model batcher — the lanes add one map
//!   lookup and an EDF heap push per request, nothing per-sample.
//! * `edf_miss_rate` / `fifo_miss_rate` — a deadline-laden overload
//!   (every request carries either a tight or a loose deadline, queued
//!   faster than the meshes drain) served by the router's
//!   earliest-deadline-first lanes vs dedicated FIFO servers. EDF pulls
//!   tight-deadline requests ahead of loose ones and sheds
//!   already-expired work at flush time, so it must miss strictly fewer
//!   deadlines than arrival-order service under the identical trace.
//!
//! Both throughput paths serve bitwise-identical predictions (asserted
//! outside the timed region); the contrast is pure admission-layer
//! architecture.

use criterion::{criterion_group, criterion_main, Criterion};
use oplix_linalg::Complex64;
use oplix_nn::ctensor::CTensor;
use oplix_nn::tensor::Tensor;
use oplix_photonics::decoder::DecoderKind;
use oplix_photonics::svd_map::MeshStyle;
use oplixnet::engine::InferenceEngine;
use oplixnet::serve::{sample_row, Server, Ticket};
use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
use oplixnet::{DeployedDetection, Error, Priority, Router, RouterRequest, RouterTicket};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const PER_CLIENT: usize = 250;
const MODELS: usize = 3;
/// Paper-scale FCNN geometry, matching `serving_concurrency.rs`.
const INPUT: usize = 64;

fn serving_engine(seed: u64) -> InferenceEngine {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = build_fcnn(
        &FcnnConfig {
            input: INPUT,
            hidden: 32,
            classes: 10,
        },
        ModelVariant::Split(DecoderKind::Merge),
        &mut rng,
    );
    InferenceEngine::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
        .expect("FCNN deploys")
}

/// One pre-staged request stream per client.
fn request_streams() -> Vec<Vec<Vec<Complex64>>> {
    let mut rng = StdRng::seed_from_u64(11);
    let view = CTensor::new(
        Tensor::random_uniform(&[CLIENTS * PER_CLIENT, INPUT], 1.0, &mut rng),
        Tensor::random_uniform(&[CLIENTS * PER_CLIENT, INPUT], 1.0, &mut rng),
    );
    (0..CLIENTS)
        .map(|c| {
            (0..PER_CLIENT)
                .map(|i| sample_row(&view, c * PER_CLIENT + i))
                .collect()
        })
        .collect()
}

/// The model a request lands on: client streams round-robin the lanes so
/// every model sees the same per-request load.
fn model_name(request_index: usize) -> &'static str {
    ["m0", "m1", "m2"][request_index % MODELS]
}

/// The single-model baseline: 8 clients through one micro-batching
/// server (the `serving_concurrency.rs` fast path).
fn run_single_server(streams: &[Vec<Vec<Complex64>>]) -> (Duration, Vec<Vec<usize>>) {
    let server = Server::builder()
        .max_batch(64)
        .max_wait(Duration::from_micros(500))
        .queue_cap(4096)
        .serve_engine(serving_engine(7));
    let start = Instant::now();
    let preds: Vec<Vec<usize>> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                let client = server.client();
                scope.spawn(move || {
                    let tickets: Vec<Ticket> = stream
                        .iter()
                        .map(|row| client.submit(row.clone()).expect("admits"))
                        .collect();
                    tickets
                        .into_iter()
                        .map(|t| t.wait().expect("serves").class().expect("no policy"))
                        .collect::<Vec<usize>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    (start.elapsed(), preds)
}

/// The same total load fanned over three models behind one router. Every
/// model runs the *same* weights as the baseline engine, so the merged
/// prediction stream must match the single-server run bitwise.
fn run_router_fanin(streams: &[Vec<Vec<Complex64>>]) -> (Duration, Vec<Vec<usize>>, u64) {
    let router = Router::builder()
        .max_batch(64)
        .max_wait(Duration::from_micros(500))
        .queue_cap(4096)
        .build();
    for m in 0..MODELS {
        router
            .register_engine(model_name(m), serving_engine(7))
            .expect("registers");
    }
    let start = Instant::now();
    let preds: Vec<Vec<usize>> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                let client = router.client();
                scope.spawn(move || {
                    let tickets: Vec<RouterTicket> = stream
                        .iter()
                        .enumerate()
                        .map(|(i, row)| {
                            client
                                .submit(RouterRequest::new(model_name(i), row.clone()))
                                .expect("admits")
                        })
                        .collect();
                    tickets
                        .into_iter()
                        .map(|t| {
                            t.wait()
                                .expect("serves")
                                .prediction
                                .class()
                                .expect("no policy")
                        })
                        .collect::<Vec<usize>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = start.elapsed();
    let batches: u64 = router
        .stats()
        .models
        .values()
        .map(|m| m.serve.batches)
        .sum();
    (elapsed, preds, batches)
}

/// The deadline-laden overload trace: for each model, `n` requests where
/// every 4th carries a tight budget and the rest a loose one. Submitted
/// as one burst per model, the queues back up far beyond what the tight
/// budget covers — the scheduler decides who makes it.
const TIGHT_BUDGET: Duration = Duration::from_millis(8);
const LOOSE_BUDGET: Duration = Duration::from_millis(400);

fn deadline_trace(n: usize) -> Vec<(Duration, Priority)> {
    (0..n)
        .map(|i| {
            if i % 4 == 0 {
                (TIGHT_BUDGET, Priority::Interactive)
            } else {
                (LOOSE_BUDGET, Priority::Standard)
            }
        })
        .collect()
}

/// EDF: the router's lanes pull imminent deadlines forward and shed
/// expired work at flush time. A miss is a `DeadlineExceeded` rejection.
fn run_edf_overload(streams: &[Vec<Vec<Complex64>>], per_model: usize) -> (usize, usize) {
    let router = Router::builder()
        .max_batch(16)
        .max_wait(Duration::from_millis(2))
        .queue_cap(4096)
        .build();
    for m in 0..MODELS {
        router
            .register_engine(model_name(m), serving_engine(7))
            .expect("registers");
    }
    let trace = deadline_trace(per_model);
    let mut missed = 0usize;
    let mut served = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..MODELS)
            .map(|m| {
                let client = router.client();
                let trace = &trace;
                let stream = &streams[m];
                scope.spawn(move || {
                    let tickets: Vec<RouterTicket> = trace
                        .iter()
                        .enumerate()
                        .map(|(i, &(budget, priority))| {
                            client
                                .submit(
                                    RouterRequest::new(
                                        model_name(m),
                                        stream[i % stream.len()].clone(),
                                    )
                                    .deadline_in(budget)
                                    .priority(priority),
                                )
                                .expect("admits")
                        })
                        .collect();
                    let mut miss = 0usize;
                    let mut ok = 0usize;
                    for t in tickets {
                        match t.wait() {
                            Ok(_) => ok += 1,
                            Err(Error::DeadlineExceeded { .. }) => miss += 1,
                            Err(e) => panic!("unexpected serving error: {e}"),
                        }
                    }
                    (ok, miss)
                })
            })
            .collect();
        for h in handles {
            let (ok, miss) = h.join().expect("client thread");
            served += ok;
            missed += miss;
        }
    });
    (served, missed)
}

/// FIFO: dedicated per-model servers drain the identical trace in
/// arrival order, blind to deadlines. A miss is a response that lands
/// after the request's budget elapsed.
fn run_fifo_overload(streams: &[Vec<Vec<Complex64>>], per_model: usize) -> (usize, usize) {
    let servers: Vec<Server> = (0..MODELS)
        .map(|_| {
            Server::builder()
                .max_batch(16)
                .max_wait(Duration::from_millis(2))
                .queue_cap(4096)
                .serve_engine(serving_engine(7))
        })
        .collect();
    let trace = deadline_trace(per_model);
    let mut missed = 0usize;
    let mut served = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = servers
            .iter()
            .enumerate()
            .map(|(m, server)| {
                let client = server.client();
                let trace = &trace;
                let stream = &streams[m];
                scope.spawn(move || {
                    let tickets: Vec<(Instant, Ticket)> = trace
                        .iter()
                        .enumerate()
                        .map(|(i, &(budget, _))| {
                            let deadline = Instant::now() + budget;
                            let t = client
                                .submit(stream[i % stream.len()].clone())
                                .expect("admits");
                            (deadline, t)
                        })
                        .collect();
                    let mut miss = 0usize;
                    let mut ok = 0usize;
                    for (deadline, t) in tickets {
                        t.wait().expect("serves");
                        if Instant::now() <= deadline {
                            ok += 1;
                        } else {
                            miss += 1;
                        }
                    }
                    (ok, miss)
                })
            })
            .collect();
        for h in handles {
            let (ok, miss) = h.join().expect("client thread");
            served += ok;
            missed += miss;
        }
    });
    (served, missed)
}

/// Criterion view of the two admission tiers at a small request count.
fn bench_fanin_paths(c: &mut Criterion) {
    let streams: Vec<Vec<Vec<Complex64>>> = request_streams()
        .into_iter()
        .map(|s| s.into_iter().take(32).collect())
        .collect();
    let mut group = c.benchmark_group("router_serving");
    group.sample_size(10);
    group.bench_function("single_server_8x32", |b| {
        b.iter(|| run_single_server(&streams).1)
    });
    group.bench_function("router_fanin_8x32", |b| {
        b.iter(|| run_router_fanin(&streams).1)
    });
    group.finish();
}

/// Headline numbers, hand-timed, printed, and persisted as the
/// `BENCH_router.json` baseline.
fn report_router_baseline(_c: &mut Criterion) {
    let streams = request_streams();
    let total = (CLIENTS * PER_CLIENT) as f64;

    // Interleave a warm-up of each path, then measure.
    let _ = run_single_server(&streams);
    let _ = run_router_fanin(&streams);
    let (single, single_preds) = run_single_server(&streams);
    let (fanin, fanin_preds, batches) = run_router_fanin(&streams);
    assert_eq!(
        single_preds, fanin_preds,
        "identical weights behind every lane: the fan-in must serve \
         bitwise the single-server predictions"
    );

    let single_sps = total / single.as_secs_f64();
    let fanin_sps = total / fanin.as_secs_f64();
    let ratio = fanin_sps / single_sps;
    let meta = oplix_bench::baseline::BenchMeta::current();
    let cores = meta.cores;
    println!(
        "fan-in {CLIENTS} clients x {PER_CLIENT} requests over {MODELS} models on {cores} core(s): \
         single server {single_sps:.0} samples/s, router {fanin_sps:.0} samples/s \
         ({ratio:.2}x), {batches} lane batches"
    );

    const PER_MODEL: usize = 400;
    let (edf_served, edf_missed) = run_edf_overload(&streams, PER_MODEL);
    let (fifo_served, fifo_missed) = run_fifo_overload(&streams, PER_MODEL);
    let overload_total = (MODELS * PER_MODEL) as f64;
    let edf_miss_rate = edf_missed as f64 / overload_total;
    let fifo_miss_rate = fifo_missed as f64 / overload_total;
    println!(
        "deadline overload ({} requests, tight {TIGHT_BUDGET:?} / loose {LOOSE_BUDGET:?}): \
         EDF missed {edf_missed} ({:.1}%, {edf_served} served), \
         FIFO missed {fifo_missed} ({:.1}%, {fifo_served} served)",
        MODELS * PER_MODEL,
        100.0 * edf_miss_rate,
        100.0 * fifo_miss_rate,
    );

    let json = format!(
        "{{\n  \"clients\": {CLIENTS},\n  \
         \"requests_total\": {},\n  \
         \"models\": {MODELS},\n\
{meta_fields}  \
         \"single_model_sps\": {single_sps:.0},\n  \
         \"router_fanin_sps\": {fanin_sps:.0},\n  \
         \"fanin_vs_single\": {ratio:.2},\n  \
         \"lane_batches\": {batches},\n  \
         \"overload_requests\": {},\n  \
         \"edf_miss_rate\": {edf_miss_rate:.3},\n  \
         \"fifo_miss_rate\": {fifo_miss_rate:.3}\n}}\n",
        CLIENTS * PER_CLIENT,
        MODELS * PER_MODEL,
        meta_fields = meta.json_fields(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_router.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_fanin_paths, report_router_baseline);
criterion_main!(benches);
