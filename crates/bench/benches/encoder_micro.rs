//! Criterion micro-benchmark of the optical input encoders: the proposed
//! DC-based complex encoder vs the conventional amplitude encoder, and the
//! modelled symbol-rate gap vs the PS-based encoder (§III-B's throughput
//! claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oplix_photonics::encoder::{ComplexEncoder, DcComplexEncoder, PsComplexEncoder, RealEncoder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_encoders(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoder_throughput");
    for n in [784usize, 3072] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let pairs: Vec<(f64, f64)> = (0..n / 2)
            .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
            .collect();
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();

        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("dc_complex", n), &pairs, |b, pairs| {
            let enc = DcComplexEncoder::new();
            b.iter(|| enc.encode(pairs))
        });
        group.bench_with_input(BenchmarkId::new("ps_complex", n), &pairs, |b, pairs| {
            let enc = PsComplexEncoder::new();
            b.iter(|| enc.encode(pairs))
        });
        group.bench_with_input(
            BenchmarkId::new("real_amplitude", n),
            &values,
            |b, values| {
                let enc = RealEncoder::new();
                b.iter(|| enc.encode(values))
            },
        );
    }
    group.finish();

    // The physical (not CPU) throughput story, printed once for the record.
    let dc = DcComplexEncoder::new();
    let ps = PsComplexEncoder::new();
    println!(
        "modelled optical symbol times: DC encoder {:.0} ps vs PS encoder {:.0} ns (x{:.0} slower)",
        dc.symbol_time_s() * 1e12,
        ps.symbol_time_s() * 1e9,
        ps.symbol_time_s() / dc.symbol_time_s()
    );
}

criterion_group!(benches, bench_encoders);
criterion_main!(benches);
