//! Hot-swap serving benchmark: what a zero-downtime version change
//! costs under live load.
//!
//! The headline numbers are hand-timed and written to
//! `BENCH_hotswap.json` at the workspace root as a baseline other
//! sessions can diff against:
//!
//! * `steady_sps` — 8 clients through one micro-batching [`Server`]
//!   with no version changes, the `serving_concurrency.rs` posture.
//! * `swap_latency_us` — mid-run, a [`Server::swap`] to a freshly
//!   deployed engine: the time from issuing the swap to its
//!   [`SwapOutcome::Applied`] reply. The swap queues through the same
//!   FIFO as requests and applies at the next micro-batch boundary, so
//!   this bounds how long two versions can be in flight.
//! * `boundary_sps` / `boundary_dip_factor` — throughput inside a
//!   ±25 ms window centred on the swap's apply instant vs the steady
//!   rate of the same run. Zero downtime means the batcher never stalls
//!   at the boundary: the dip factor must stay within 2×.
//! * `canary_sps` / `canary_overhead_pct` — the same load with a canary
//!   deployment live: a seeded fraction of admissions routes to the
//!   candidate and every response lands in the per-version tallies. The
//!   overhead is one `splitmix64` draw per admission and a few atomic
//!   increments per response — it must stay in the low percent range.
//!
//! Swapping to an identically seeded deployment keeps the prediction
//! stream bitwise comparable across postures; version stamps (asserted
//! outside the timed region) prove the swap really happened mid-run.

use criterion::{criterion_group, criterion_main, Criterion};
use oplix_linalg::Complex64;
use oplix_nn::ctensor::CTensor;
use oplix_nn::tensor::Tensor;
use oplix_photonics::decoder::DecoderKind;
use oplix_photonics::svd_map::MeshStyle;
use oplixnet::engine::InferenceEngine;
use oplixnet::serve::{sample_row, CanaryPolicy, Server, SwapOutcome, Ticket};
use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
use oplixnet::DeployedDetection;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const CLIENTS: usize = 8;
const PER_CLIENT: usize = 400;
/// Paper-scale FCNN geometry, matching `serving_concurrency.rs`.
const INPUT: usize = 64;
/// Half-width of the boundary throughput window around the swap apply.
const BOUNDARY_HALF: Duration = Duration::from_millis(25);

fn serving_engine(seed: u64) -> InferenceEngine {
    let mut rng = StdRng::seed_from_u64(seed);
    let net = build_fcnn(
        &FcnnConfig {
            input: INPUT,
            hidden: 32,
            classes: 10,
        },
        ModelVariant::Split(DecoderKind::Merge),
        &mut rng,
    );
    InferenceEngine::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
        .expect("FCNN deploys")
}

fn serving_server() -> Server {
    Server::builder()
        .max_batch(64)
        .max_wait(Duration::from_micros(500))
        .queue_cap(4096)
        .serve_engine(serving_engine(7))
}

/// One pre-staged request stream per client.
fn request_streams() -> Vec<Vec<Vec<Complex64>>> {
    let mut rng = StdRng::seed_from_u64(11);
    let view = CTensor::new(
        Tensor::random_uniform(&[CLIENTS * PER_CLIENT, INPUT], 1.0, &mut rng),
        Tensor::random_uniform(&[CLIENTS * PER_CLIENT, INPUT], 1.0, &mut rng),
    );
    (0..CLIENTS)
        .map(|c| {
            (0..PER_CLIENT)
                .map(|i| sample_row(&view, c * PER_CLIENT + i))
                .collect()
        })
        .collect()
}

/// Drives the full load through `server`, returning the run's wall time
/// and every ticket's resolution instant. `at_half` runs on the calling
/// thread once roughly half the responses have landed — the swap hook.
fn run_load(
    server: &Server,
    streams: &[Vec<Vec<Complex64>>],
    mut at_half: impl FnMut(),
) -> (Duration, Vec<Instant>) {
    let resolved = AtomicU64::new(0);
    let half = (CLIENTS * PER_CLIENT / 2) as u64;
    let start = Instant::now();
    let mut instants = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                let client = server.client();
                let resolved = &resolved;
                scope.spawn(move || {
                    let tickets: Vec<Ticket> = stream
                        .iter()
                        .map(|row| client.submit(row.clone()).expect("admits"))
                        .collect();
                    tickets
                        .into_iter()
                        .map(|t| {
                            t.wait().expect("serves");
                            resolved.fetch_add(1, Ordering::Relaxed);
                            Instant::now()
                        })
                        .collect::<Vec<Instant>>()
                })
            })
            .collect();
        while resolved.load(Ordering::Relaxed) < half {
            std::hint::spin_loop();
        }
        at_half();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect::<Vec<Instant>>()
    });
    let elapsed = start.elapsed();
    instants.sort();
    (elapsed, instants)
}

fn sps(count: usize, elapsed: Duration) -> f64 {
    count as f64 / elapsed.as_secs_f64().max(1e-9)
}

/// Steady state: the full load, no version changes.
fn run_steady(streams: &[Vec<Vec<Complex64>>]) -> f64 {
    let server = serving_server();
    let (elapsed, _) = run_load(&server, streams, || {});
    assert_eq!(server.stats().version, 1);
    let _ = server.shutdown();
    sps(CLIENTS * PER_CLIENT, elapsed)
}

/// Mid-run hot swap: returns (steady sps of this run, swap latency,
/// boundary sps in the ±25 ms window around the apply instant).
fn run_with_swap(streams: &[Vec<Vec<Complex64>>]) -> (f64, Duration, f64) {
    let server = serving_server();
    let replacement = serving_engine(8); // deployed before the timed region
    let mut replacement = Some(replacement);
    let mut swap_latency = Duration::ZERO;
    let mut applied_at = None;
    let (elapsed, instants) = run_load(&server, streams, || {
        let issued = Instant::now();
        let ticket = server
            .swap(replacement.take().expect("one swap"))
            .expect("swap admits");
        match ticket.wait().expect("swap resolves") {
            SwapOutcome::Applied { version, .. } => assert_eq!(version, 2),
            SwapOutcome::Aborted { .. } => panic!("server is live; swap must apply"),
        }
        let now = Instant::now();
        swap_latency = now - issued;
        applied_at = Some(now);
    });
    let stats = server.stats();
    assert_eq!(stats.version, 2, "the swap must have applied mid-run");
    assert_eq!(stats.served, (CLIENTS * PER_CLIENT) as u64);
    let _ = server.shutdown();

    let center = applied_at.expect("swap ran");
    let in_window = instants
        .iter()
        .filter(|&&t| t >= center - BOUNDARY_HALF && t <= center + BOUNDARY_HALF)
        .count();
    let window = BOUNDARY_HALF * 2;
    (
        sps(CLIENTS * PER_CLIENT, elapsed),
        swap_latency,
        sps(in_window, window),
    )
}

/// The full load with a canary live from the start: a 35 % seeded slice
/// of admissions routes to the candidate, every response is tallied.
fn run_with_canary(streams: &[Vec<Vec<Complex64>>]) -> f64 {
    let server = serving_server();
    server
        .canary(
            serving_engine(8),
            CanaryPolicy {
                fraction: 0.35,
                confidence: None,
                seed: 42,
            },
        )
        .expect("canary installs");
    let (elapsed, _) = run_load(&server, streams, || {});
    let stats = server.canary_stats().expect("canary is live");
    let total = CLIENTS * PER_CLIENT;
    assert_eq!(
        (stats.baseline.served + stats.candidate.served) as usize,
        total
    );
    assert!(
        stats.candidate.served > 0,
        "the seeded split must route some traffic to the candidate"
    );
    let _ = server.rollback().expect("rollback admits").wait();
    let _ = server.shutdown();
    sps(total, elapsed)
}

/// Criterion view: the swap round-trip on a live but idle server — the
/// floor of `swap_latency_us` (queue hop + barrier + apply, no batch in
/// front of it).
fn bench_swap_roundtrip(c: &mut Criterion) {
    let server = serving_server();
    let mut group = c.benchmark_group("hot_swap_serving");
    group.sample_size(10);
    group.bench_function("idle_swap_roundtrip", |b| {
        b.iter(|| {
            let outcome = server
                .swap(serving_engine(8))
                .expect("swap admits")
                .wait()
                .expect("swap resolves");
            assert!(outcome.is_applied());
        })
    });
    group.finish();
    let _ = server.shutdown();
}

/// Headline numbers, hand-timed, printed, and persisted as the
/// `BENCH_hotswap.json` baseline.
fn report_hotswap_baseline(_c: &mut Criterion) {
    let streams = request_streams();

    // Warm the deploy cache and the allocator, then measure.
    let _ = run_steady(&streams);
    let steady_sps = run_steady(&streams);
    let (swap_run_sps, swap_latency, boundary_sps) = run_with_swap(&streams);
    let canary_sps = run_with_canary(&streams);

    let swap_latency_us = swap_latency.as_secs_f64() * 1e6;
    let boundary_dip_factor = swap_run_sps / boundary_sps.max(1e-9);
    let canary_overhead_pct = 100.0 * (1.0 - canary_sps / steady_sps);
    let meta = oplix_bench::baseline::BenchMeta::current();
    let cores = meta.cores;
    println!(
        "hot swap under load, {CLIENTS} clients x {PER_CLIENT} requests on {cores} core(s): \
         steady {steady_sps:.0} samples/s, swap applied in {swap_latency_us:.0} us, \
         boundary window {boundary_sps:.0} samples/s ({boundary_dip_factor:.2}x dip), \
         canary {canary_sps:.0} samples/s ({canary_overhead_pct:.1}% overhead)"
    );
    assert!(
        boundary_dip_factor <= 2.0,
        "zero-downtime swap: boundary throughput ({boundary_sps:.0} sps) must stay \
         within 2x of the run's steady rate ({swap_run_sps:.0} sps)"
    );

    let json = format!(
        "{{\n  \"clients\": {CLIENTS},\n  \
         \"requests_total\": {},\n\
{meta_fields}  \
         \"steady_sps\": {steady_sps:.0},\n  \
         \"swap_latency_us\": {swap_latency_us:.0},\n  \
         \"boundary_window_ms\": {},\n  \
         \"boundary_sps\": {boundary_sps:.0},\n  \
         \"boundary_dip_factor\": {boundary_dip_factor:.2},\n  \
         \"canary_sps\": {canary_sps:.0},\n  \
         \"canary_overhead_pct\": {canary_overhead_pct:.1}\n}}\n",
        CLIENTS * PER_CLIENT,
        2 * BOUNDARY_HALF.as_millis(),
        meta_fields = meta.json_fields(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotswap.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_swap_roundtrip, report_hotswap_baseline);
criterion_main!(benches);
