//! Criterion micro-benchmarks of the linear-algebra substrate: Jacobi SVD,
//! Householder QR and the FFT used by the OFFT baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oplix_linalg::fft::fft;
use oplix_linalg::qr::qr;
use oplix_linalg::svd::svd;
use oplix_linalg::{CMatrix, Complex64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_cmatrix(m: usize, n: usize, seed: u64) -> CMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    CMatrix::from_fn(m, n, |_, _| {
        Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
    })
}

fn bench_svd(c: &mut Criterion) {
    let mut group = c.benchmark_group("jacobi_svd");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        let a = random_cmatrix(n, n, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| b.iter(|| svd(a)));
    }
    group.finish();
}

fn bench_qr(c: &mut Criterion) {
    let mut group = c.benchmark_group("householder_qr");
    group.sample_size(20);
    for n in [8usize, 16, 32] {
        let a = random_cmatrix(n, n, 100 + n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| b.iter(|| qr(a)));
    }
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for n in [64usize, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let x: Vec<Complex64> = (0..n)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &x, |b, x| {
            b.iter(|| {
                let mut buf = x.clone();
                fft(&mut buf);
                buf
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_svd, bench_qr, bench_fft);
criterion_main!(benches);
