//! Regenerates Fig. 9 (output decoder comparison).

fn main() {
    oplix_bench::run_experiment("Fig. 9: decoder comparison", |scale| {
        oplixnet::experiments::fig9::run(scale)
    });
}
