//! Criterion micro-benchmarks of the photonic mesh substrate: unitary
//! decomposition (Reck vs Clements) and field propagation vs mesh size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oplix_linalg::{CMatrix, Complex64};
use oplix_photonics::clements::decompose_clements;
use oplix_photonics::reck::decompose_reck;
use oplix_photonics::svd_map::{MeshStyle, PhotonicLayer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_decompositions(c: &mut Criterion) {
    let mut group = c.benchmark_group("unitary_decomposition");
    group.sample_size(20);
    for n in [8usize, 16, 32] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let u = CMatrix::random_unitary(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("reck", n), &u, |b, u| {
            b.iter(|| decompose_reck(u))
        });
        group.bench_with_input(BenchmarkId::new("clements", n), &u, |b, u| {
            b.iter(|| decompose_clements(u))
        });
    }
    group.finish();
}

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("mesh_propagation");
    group.sample_size(30);
    for n in [8usize, 32, 64] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let u = CMatrix::random_unitary(n, &mut rng);
        let mesh = decompose_clements(&u);
        let x: Vec<Complex64> = (0..n)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(mesh, x),
            |b, (mesh, x)| b.iter(|| mesh.propagate(x)),
        );
    }
    group.finish();
}

fn bench_svd_deployment(c: &mut Criterion) {
    let mut group = c.benchmark_group("svd_weight_deployment");
    group.sample_size(10);
    for n in [8usize, 16, 24] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let w = CMatrix::from_fn(n, n, |_, _| {
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| PhotonicLayer::from_matrix(w, MeshStyle::Clements))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decompositions,
    bench_propagation,
    bench_svd_deployment
);
criterion_main!(benches);
