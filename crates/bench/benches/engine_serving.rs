//! Serving-path benchmarks of the sharded [`InferenceEngine`]: batched
//! classification wall-clock vs worker count (the `num_workers` knob),
//! plus the deployment-cache speedup for repeated deployments of the same
//! architecture.
//!
//! The headline comparison — sequential vs sharded at batch ≥ 64 — is also
//! printed as an explicit speedup line, since that is the scaling claim
//! the parallel serving core makes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use oplix_nn::ctensor::CTensor;
use oplix_nn::tensor::Tensor;
use oplix_photonics::decoder::DecoderKind;
use oplix_photonics::svd_map::MeshStyle;
use oplixnet::engine::InferenceEngine;
use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
use oplixnet::{clear_deploy_cache, DeployedDetection, DeployedFcnn};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn serving_engine(input: usize, hidden: usize, workers: usize) -> InferenceEngine {
    let mut rng = StdRng::seed_from_u64(7);
    let net = build_fcnn(
        &FcnnConfig {
            input,
            hidden,
            classes: 10,
        },
        ModelVariant::Split(DecoderKind::Merge),
        &mut rng,
    );
    InferenceEngine::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
        .expect("FCNN deploys")
        .with_num_workers(workers)
}

fn batch(n: usize, d: usize) -> CTensor {
    let mut rng = StdRng::seed_from_u64(11);
    CTensor::new(
        Tensor::random_uniform(&[n, d], 1.0, &mut rng),
        Tensor::random_uniform(&[n, d], 1.0, &mut rng),
    )
}

fn bench_sharded_classify(c: &mut Criterion) {
    let (input, hidden) = (32usize, 32usize);
    let mut group = c.benchmark_group("engine_classify");
    group.sample_size(10);
    for n in [64usize, 256] {
        let x = batch(n, input);
        group.throughput(Throughput::Elements(n as u64));
        for workers in [1usize, 2, 4] {
            let mut engine = serving_engine(input, hidden, workers);
            group.bench_with_input(
                BenchmarkId::new("classify", format!("batch{n}/workers{workers}")),
                &x,
                |b, x| b.iter(|| engine.classify(x).expect("classify")),
            );
        }
    }
    group.finish();
}

/// The headline claim, measured directly: sharded batched inference beats
/// the sequential path at batch ≥ 64.
fn report_sharding_speedup(_c: &mut Criterion) {
    let (input, hidden, n, reps) = (32usize, 32usize, 256usize, 20usize);
    let x = batch(n, input);
    let timed = |workers: usize| {
        let mut engine = serving_engine(input, hidden, workers);
        engine.classify(&x).expect("warm-up"); // warm the buffers
        let start = Instant::now();
        for _ in 0..reps {
            criterion::black_box(engine.classify(&x).expect("classify"));
        }
        start.elapsed().as_secs_f64() / reps as f64
    };
    let sequential = timed(1);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let workers = cores.clamp(2, 4);
    let sharded = timed(workers);
    println!(
        "engine_classify speedup at batch {n}: {workers} workers {:.2}x on {cores} core(s) \
         (sequential {:.3} ms, sharded {:.3} ms per batch; the win needs cores > 1)",
        sequential / sharded,
        sequential * 1e3,
        sharded * 1e3,
    );
}

fn bench_deploy_cache(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    let net = build_fcnn(
        &FcnnConfig {
            input: 32,
            hidden: 32,
            classes: 10,
        },
        ModelVariant::Split(DecoderKind::Merge),
        &mut rng,
    );
    let mut group = c.benchmark_group("deploy_cache");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| {
            clear_deploy_cache();
            DeployedFcnn::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
                .expect("deploys")
        })
    });
    // Prime twice (admission is second-sight), then every decomposition
    // is a hit.
    for _ in 0..2 {
        let _ =
            DeployedFcnn::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements);
    }
    group.bench_function("warm", |b| {
        b.iter(|| {
            DeployedFcnn::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
                .expect("deploys")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sharded_classify,
    report_sharding_speedup,
    bench_deploy_cache
);
criterion_main!(benches);
