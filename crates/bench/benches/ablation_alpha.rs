//! Ablation A1: sensitivity of mutual learning to the mixing factor alpha.

fn main() {
    oplix_bench::run_experiment("Ablation A1: KD mixing factor sweep", |scale| {
        oplixnet::experiments::ablation::alpha_sweep(&[0.0, 0.25, 0.5, 1.0, 2.0], scale)
    });
}
