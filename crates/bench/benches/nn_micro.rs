//! Criterion micro-benchmarks of the split-complex NN substrate: dense and
//! convolution forward/backward, and one full training step of the split
//! FCNN.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oplix_nn::ctensor::CTensor;
use oplix_nn::layers::{CConv2d, CDense, CLayer};
use oplix_nn::loss::cross_entropy;
use oplix_nn::optim::Sgd;
use oplix_nn::tensor::Tensor;
use oplix_photonics::decoder::DecoderKind;
use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_cdense(c: &mut Criterion) {
    let mut group = c.benchmark_group("cdense_forward_backward");
    group.sample_size(30);
    for (n_in, n_out) in [(128usize, 64usize), (392, 200)] {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = CDense::new(n_in, n_out, &mut rng);
        let x = CTensor::new(
            Tensor::random_uniform(&[32, n_in], 1.0, &mut rng),
            Tensor::random_uniform(&[32, n_in], 1.0, &mut rng),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n_in}x{n_out}")),
            &x,
            |b, x| {
                b.iter(|| {
                    let y = layer.forward(x, true);
                    let dy =
                        CTensor::new(Tensor::full(y.shape(), 1.0), Tensor::full(y.shape(), -1.0));
                    layer.backward(&dy)
                })
            },
        );
    }
    group.finish();
}

fn bench_cconv(c: &mut Criterion) {
    let mut group = c.benchmark_group("cconv_forward_backward");
    group.sample_size(10);
    for ch in [4usize, 8] {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = CConv2d::new(ch, ch, 3, 1, 1, &mut rng);
        let x = CTensor::new(
            Tensor::random_uniform(&[8, ch, 8, 8], 1.0, &mut rng),
            Tensor::random_uniform(&[8, ch, 8, 8], 1.0, &mut rng),
        );
        group.bench_with_input(BenchmarkId::from_parameter(ch), &x, |b, x| {
            b.iter(|| {
                let y = conv.forward(x, true);
                let dy = CTensor::new(Tensor::full(y.shape(), 1.0), Tensor::full(y.shape(), 1.0));
                conv.backward(&dy)
            })
        });
    }
    group.finish();
}

fn bench_training_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut net = build_fcnn(
        &FcnnConfig {
            input: 128,
            hidden: 32,
            classes: 10,
        },
        ModelVariant::Split(DecoderKind::Merge),
        &mut rng,
    );
    let x = CTensor::new(
        Tensor::random_uniform(&[32, 128], 1.0, &mut rng),
        Tensor::random_uniform(&[32, 128], 1.0, &mut rng),
    );
    let labels: Vec<usize> = (0..32).map(|i| i % 10).collect();
    let mut opt = Sgd::with_momentum(0.05, 0.9, 1e-4);

    c.bench_function("split_fcnn_training_step", |b| {
        b.iter(|| {
            let logits = net.forward(&x, true);
            let (_, grad) = cross_entropy(&logits, &labels);
            net.backward(&grad);
            opt.step(&mut |f| net.visit_params(f));
        })
    });
}

criterion_group!(benches, bench_cdense, bench_cconv, bench_training_step);
criterion_main!(benches);
