//! Conv-lowering benchmarks: deploying a CNN body onto meshes (cold vs
//! deployment-cache-warm) and serving batched inference through the
//! im2col gather + compiled-mesh pipeline.
//!
//! The interesting shape here is the *patch-row fan-out*: one 64-sample
//! window of an 8×8 single-channel conv (3×3, same padding) expands into
//! 64 × 64 = 4096 patch rows through one compiled mesh batch, so the
//! mode-major batched kernel carries the conv path exactly like it
//! carries FCNN windows.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oplix_nn::ctensor::CTensor;
use oplix_nn::head::MergeHead;
use oplix_nn::layers::{CConv2d, CDense, CFlatten, CRelu, CSequential};
use oplix_nn::network::Network;
use oplix_nn::tensor::Tensor;
use oplix_photonics::svd_map::MeshStyle;
use oplixnet::engine::InferenceEngine;
use oplixnet::{clear_deploy_cache, DeployedDetection};
use rand::rngs::StdRng;
use rand::SeedableRng;

const C: usize = 1;
const HW: usize = 8;
const OUT_CH: usize = 4;

fn cnn() -> Network {
    let mut rng = StdRng::seed_from_u64(17);
    let conv = CConv2d::new(C, OUT_CH, 3, 1, 1, &mut rng);
    let body = CSequential::new()
        .push(conv)
        .push(CRelu::new())
        .push(CFlatten::new())
        .push(CDense::new(OUT_CH * HW * HW, 20, &mut rng));
    Network::new(body, Box::new(MergeHead::new()))
}

fn deploy(net: &Network) -> InferenceEngine {
    InferenceEngine::from_network_shaped(
        net,
        Some((C, HW, HW)),
        DeployedDetection::Differential,
        MeshStyle::Clements,
    )
    .expect("CNN bodies deploy")
}

fn image_batch(n: usize) -> CTensor {
    let mut rng = StdRng::seed_from_u64(19);
    CTensor::new(
        Tensor::random_uniform(&[n, C, HW, HW], 1.0, &mut rng),
        Tensor::random_uniform(&[n, C, HW, HW], 1.0, &mut rng),
    )
}

fn bench_conv_deploy(c: &mut Criterion) {
    let net = cnn();
    let mut group = c.benchmark_group("conv_deploy");
    group.sample_size(10);
    group.bench_function("cold", |b| {
        b.iter(|| {
            clear_deploy_cache();
            criterion::black_box(deploy(&net));
        })
    });
    // Prime: second sight admits the full entry, then every iteration hits.
    let _ = deploy(&net);
    let _ = deploy(&net);
    group.bench_function("cache_warm", |b| {
        b.iter(|| criterion::black_box(deploy(&net)))
    });
    group.finish();
}

fn bench_conv_serving(c: &mut Criterion) {
    let net = cnn();
    let mut engine = deploy(&net);
    let mut group = c.benchmark_group("conv_serving");
    group.sample_size(10);
    for n in [8usize, 64] {
        let x = image_batch(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(&format!("classify_batch{n}") as &str, |b| {
            b.iter(|| engine.classify(&x).expect("classify"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conv_deploy, bench_conv_serving);
criterion_main!(benches);
