//! Stage-pipeline benchmark: the staged-window walk of a deep conv body
//! run sequentially vs stage-pipelined across per-chip worker slots.
//!
//! The model is a training-scale (halved) LeNet-5 — seven deployed
//! stages, each physically one chip/mesh — so the pipelined walk can
//! stream serving windows through the stages concurrently via the
//! bounded inter-stage rings. Both paths serve **bitwise identical**
//! logits (asserted outside the timed region); the contrast is pure
//! execution schedule.
//!
//! The headline numbers are hand-timed and written to
//! `BENCH_pipeline.json` at the workspace root with the standard
//! [`BenchMeta`] environment fields:
//!
//! * `staged_walk_sequential_us_per_sample` — one window at a time
//!   through every stage (the default walk);
//! * `staged_walk_pipelined_us_per_sample` — the same windows streamed
//!   through stage segments on pipeline helpers;
//! * `pipeline_speedup` — sequential/pipelined wall-clock ratio. On a
//!   single-core budget the pipeline degrades to the sequential walk
//!   (`pipeline_engaged` records which schedule actually ran), so the
//!   speedup only exceeds 1 on a multi-core runner;
//! * `chip_insertion_loss_db_total` — the summed per-chip optical
//!   insertion-loss budget of the deployment, from the engine's
//!   per-stage chip reports.
//!
//! `bench_smoke` re-measures the two time metrics against this baseline
//! (same env-mismatch skip rules as the kernel gate).

use criterion::{criterion_group, criterion_main, Criterion};
use oplix_bench::baseline::BenchMeta;
use oplix_nn::ctensor::CTensor;
use oplix_nn::tensor::Tensor;
use oplix_photonics::decoder::DecoderKind;
use oplix_photonics::svd_map::MeshStyle;
use oplixnet::engine::InferenceEngine;
use oplixnet::zoo::{build_lenet, LenetConfig, ModelVariant};
use oplixnet::DeployedDetection;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Serving windows are 64 samples; 4 windows keep the 2-window
/// inter-stage rings saturated without inflating the timed region.
const SAMPLES: usize = 256;

/// The deep conv body: channel-halved LeNet-5 on 16×16 single-channel
/// views (conv-pool-conv-pool-fc-fc-fc — seven chips).
fn pipeline_engine() -> InferenceEngine {
    let mut rng = StdRng::seed_from_u64(17);
    let cfg = LenetConfig::training_scale(2, 16, 10).halved();
    let net = build_lenet(&cfg, ModelVariant::Split(DecoderKind::Merge), &mut rng);
    InferenceEngine::from_network_shaped(
        &net,
        Some((cfg.in_ch, cfg.input_h, cfg.input_w)),
        DeployedDetection::Differential,
        MeshStyle::Clements,
    )
    .expect("LeNet deploys")
}

fn image_view(n: usize) -> CTensor {
    let mut rng = StdRng::seed_from_u64(23);
    CTensor::new(
        Tensor::random_uniform(&[n, 1, 16, 16], 1.0, &mut rng),
        Tensor::random_uniform(&[n, 1, 16, 16], 1.0, &mut rng),
    )
}

/// Mean seconds per call of `f`, after one warm-up call.
fn timed<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

/// Criterion view of the two walks at a small window count.
fn bench_staged_walks(c: &mut Criterion) {
    let view = image_view(64);
    let mut seq = pipeline_engine();
    let mut pip = pipeline_engine().with_stage_pipeline(true);
    let mut group = c.benchmark_group("stage_pipeline");
    group.sample_size(10);
    // Dashed labels: identifier-shaped strings in tuple position would
    // read as baseline metric keys to the lint's bench-baseline rule.
    group.bench_function("sequential-walk-64", |b| {
        b.iter(|| seq.predict_batch(&view).expect("sequential"))
    });
    group.bench_function("pipelined-walk-64", |b| {
        b.iter(|| pip.predict_batch(&view).expect("pipelined"))
    });
    group.finish();
}

/// Headline numbers, hand-timed, printed, and persisted as the
/// `BENCH_pipeline.json` baseline.
fn report_pipeline_baseline(_c: &mut Criterion) {
    let view = image_view(SAMPLES);
    let mut seq = pipeline_engine();
    let mut pip = pipeline_engine().with_stage_pipeline(true);

    // Both schedules must serve bitwise-identical logits.
    let want = seq.predict_batch(&view).expect("sequential");
    let got = pip.predict_batch(&view).expect("pipelined");
    assert_eq!(want, got, "pipelined walk must be bitwise sequential");

    let t_seq = timed(3, || {
        seq.predict_batch(&view).expect("sequential");
    });
    let t_pip = timed(3, || {
        pip.predict_batch(&view).expect("pipelined");
    });
    let stages = pip.stage_stats();
    let engaged = stages.iter().any(|s| s.occupancy.windows > 0);
    let loss_total: f64 = stages.iter().map(|s| s.chip.insertion_loss_db).sum();

    let seq_us = t_seq * 1e6 / SAMPLES as f64;
    let pip_us = t_pip * 1e6 / SAMPLES as f64;
    let speedup = t_seq / t_pip;
    let meta = BenchMeta::current();
    println!(
        "staged walk over {} chips, {SAMPLES} samples on {} core(s): \
         sequential {seq_us:.1} us/sample, pipelined {pip_us:.1} us/sample \
         ({speedup:.2}x, helpers {}), chip loss budget {loss_total:.2} dB",
        stages.len(),
        meta.cores,
        if engaged {
            "engaged"
        } else {
            "idle — sequential fallback"
        },
    );

    let metrics: Vec<(&str, f64)> = vec![
        ("staged_walk_sequential_us_per_sample", seq_us),
        ("staged_walk_pipelined_us_per_sample", pip_us),
        ("pipeline_speedup", speedup),
        ("pipeline_engaged", if engaged { 1.0 } else { 0.0 }),
        ("pipeline_stages", stages.len() as f64),
        ("pipeline_samples", SAMPLES as f64),
        ("chip_insertion_loss_db_total", loss_total),
    ];
    let mut json = String::from("{\n");
    json.push_str(&meta.json_fields());
    for (i, (key, value)) in metrics.iter().enumerate() {
        let sep = if i + 1 < metrics.len() { "," } else { "" };
        json.push_str(&format!("  \"{key}\": {value:.3}{sep}\n"));
    }
    json.push_str("}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pipeline.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_staged_walks, report_pipeline_baseline);
criterion_main!(benches);
