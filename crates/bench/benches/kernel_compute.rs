//! Compute-kernel benchmarks: compiled vs interpreted mesh propagation,
//! the GEMM variants, and persistent-executor launch overhead.
//!
//! Beyond the Criterion groups, the headline numbers are hand-timed and
//! written to `BENCH_kernels.json` at the workspace root as a baseline
//! other sessions can diff against:
//!
//! * `mesh16_*` — per-sample propagation through a 16-mode Clements mesh,
//!   interpreted ([`MziMesh::propagate_in_place`]) vs compiled
//!   ([`CompiledMesh`], per-sample and batched). The compiled path is
//!   expected to be ≥ 3× faster (it replays precomputed coefficients
//!   instead of re-deriving six transcendentals per MZI per sample).
//! * `gemm_*` — the dense-layer product in its transpose-free layouts
//!   (`matmul_nt` / `matmul_tn`) vs materialising the transpose.
//! * `executor_*` — mean [`pool::run_scoped`] launch cost for a
//!   fine-grained task list on the persistent executor (first call pays
//!   the lazy worker spawn; steady-state calls reuse the parked workers).
//! * `train_step_transpose2_materialisations` — transposed weight copies
//!   per train epoch (expected **0** since the trainer runs on the
//!   transpose-free kernels).

use criterion::{criterion_group, criterion_main, Criterion};
use oplix_linalg::CMatrix;
use oplix_linalg::Complex64;
use oplix_nn::ctensor::CTensor;
use oplix_nn::head::MergeHead;
use oplix_nn::layers::{CDense, CRelu, CSequential};
use oplix_nn::network::Network;
use oplix_nn::optim::Sgd;
use oplix_nn::tensor::{transpose2_materialisations, Tensor};
use oplix_nn::trainer::{train_epoch, CDataset};
use oplix_photonics::clements::decompose_clements;
use oplix_photonics::compiled::CompiledMesh;
use oplix_photonics::mesh::MziMesh;
use oplixnet::pool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const MESH_MODES: usize = 16;

fn mesh16() -> MziMesh {
    let mut rng = StdRng::seed_from_u64(21);
    decompose_clements(&CMatrix::random_unitary(MESH_MODES, &mut rng))
}

fn fields(n: usize, seed: u64) -> Vec<Complex64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect()
}

/// Mean seconds per call of `f`, after one warm-up call.
fn timed<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn bench_mesh_propagation(c: &mut Criterion) {
    let mesh = mesh16();
    let compiled = CompiledMesh::compile(&mesh);
    let base = fields(MESH_MODES, 3);
    let mut group = c.benchmark_group("mesh_propagation_16");
    group.sample_size(10);
    group.bench_function("interpreted", |b| {
        let mut io = base.clone();
        b.iter(|| {
            io.copy_from_slice(&base);
            mesh.propagate_in_place(&mut io);
        })
    });
    group.bench_function("compiled", |b| {
        let mut io = base.clone();
        b.iter(|| {
            io.copy_from_slice(&base);
            compiled.propagate_in_place(&mut io);
        })
    });
    group.finish();
}

fn bench_gemm_variants(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let x = Tensor::random_uniform(&[64, 256], 1.0, &mut rng);
    let w = Tensor::random_uniform(&[128, 256], 1.0, &mut rng);
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    group.bench_function("transpose_then_matmul", |b| {
        b.iter(|| x.matmul(&w.transpose2()))
    });
    group.bench_function("matmul_nt", |b| b.iter(|| x.matmul_nt(&w)));
    group.bench_function("matmul_tn", |b| {
        // dW-shaped product: [64,128]ᵀ·[64,256].
        let dy = Tensor::random_uniform(&[64, 128], 1.0, &mut StdRng::seed_from_u64(6));
        b.iter(|| dy.matmul_tn(&x))
    });
    group.finish();
}

/// Headline numbers, hand-timed, printed, and persisted as the
/// `BENCH_kernels.json` baseline.
fn report_kernel_baseline(_c: &mut Criterion) {
    // --- Mesh propagation: interpreted vs compiled, 16 modes. ---
    let mesh = mesh16();
    let compiled = CompiledMesh::compile(&mesh);
    let window = 256usize;
    let base = fields(MESH_MODES * window, 7);
    let mut buf = base.clone();
    let reps = 200;
    let interp = timed(reps, || {
        buf.copy_from_slice(&base);
        for row in buf.chunks_exact_mut(MESH_MODES) {
            mesh.propagate_in_place(row);
        }
    }) / window as f64;
    let comp = timed(reps, || {
        buf.copy_from_slice(&base);
        for row in buf.chunks_exact_mut(MESH_MODES) {
            compiled.propagate_in_place(row);
        }
    }) / window as f64;
    let batch = timed(reps, || {
        buf.copy_from_slice(&base);
        compiled.propagate_batch(&mut buf, window);
    }) / window as f64;
    let mesh_speedup = interp / comp;
    println!(
        "mesh16 propagation: interpreted {:.0} ns/sample, compiled {:.0} ns/sample \
         ({mesh_speedup:.2}x), compiled batch {:.0} ns/sample",
        interp * 1e9,
        comp * 1e9,
        batch * 1e9,
    );

    // --- GEMM: transpose-free vs transpose-then-multiply. ---
    let mut rng = StdRng::seed_from_u64(11);
    let x = Tensor::random_uniform(&[64, 256], 1.0, &mut rng);
    let w = Tensor::random_uniform(&[128, 256], 1.0, &mut rng);
    let dy = Tensor::random_uniform(&[64, 128], 1.0, &mut rng);
    let gemm_reps = 50;
    let t_transpose = timed(gemm_reps, || {
        criterion::black_box(x.matmul(&w.transpose2()));
    });
    let t_nt = timed(gemm_reps, || {
        criterion::black_box(x.matmul_nt(&w));
    });
    let t_tn = timed(gemm_reps, || {
        criterion::black_box(dy.matmul_tn(&x));
    });
    println!(
        "gemm 64x256·(128x256)ᵀ: transpose+matmul {:.3} ms, matmul_nt {:.3} ms \
         ({:.2}x), matmul_tn {:.3} ms",
        t_transpose * 1e3,
        t_nt * 1e3,
        t_transpose / t_nt,
        t_tn * 1e3,
    );

    // --- Executor launch overhead: fine-grained task lists. ---
    pool::set_jobs(4);
    let tasks = 64usize;
    let launch = |_: ()| {
        let _ = pool::parallel_map((0..tasks as u64).collect(), |x| x.wrapping_mul(2654435761));
    };
    launch(()); // first call spawns the persistent workers
    let exec = timed(200, || launch(()));
    println!(
        "executor: {tasks}-task run_scoped in {:.1} µs steady-state \
         ({} persistent workers alive)",
        exec * 1e6,
        pool::workers_alive(),
    );

    // --- Train-step transpose materialisations (expected 0). ---
    let mut rng = StdRng::seed_from_u64(13);
    // MergeHead halves the body output (differential pairing): 8 optical
    // outputs detect 4 classes.
    let body = CSequential::new()
        .push(CDense::new(16, 32, &mut rng))
        .push(CRelu::new())
        .push(CDense::new(32, 8, &mut rng));
    let mut net = Network::new(body, Box::new(MergeHead::new()));
    let data = CDataset::new(
        CTensor::new(
            Tensor::random_uniform(&[64, 16], 1.0, &mut rng),
            Tensor::random_uniform(&[64, 16], 1.0, &mut rng),
        ),
        (0..64).map(|i| i % 4).collect(),
    );
    let mut opt = Sgd::with_momentum(0.05, 0.9, 1e-4);
    let _ = train_epoch(&mut net, &data, 16, &mut opt, &mut rng); // warm-up
    let before = transpose2_materialisations();
    let _ = train_epoch(&mut net, &data, 16, &mut opt, &mut rng);
    let train_transposes = transpose2_materialisations() - before;
    println!("train step: {train_transposes} transpose2 materialisations (want 0)");

    // --- Persist the baseline. ---
    let meta = oplix_bench::baseline::BenchMeta::current();
    let json = format!(
        "{{\n{meta_fields}  \"mesh16_interpreted_ns_per_sample\": {:.1},\n  \
         \"mesh16_compiled_ns_per_sample\": {:.1},\n  \
         \"mesh16_compiled_batch_ns_per_sample\": {:.1},\n  \
         \"mesh16_compiled_speedup\": {:.2},\n  \
         \"gemm_transpose_then_matmul_ms\": {:.4},\n  \
         \"gemm_matmul_nt_ms\": {:.4},\n  \
         \"gemm_matmul_tn_ms\": {:.4},\n  \
         \"executor_launch_us_64_tasks\": {:.2},\n  \
         \"executor_workers_alive\": {},\n  \
         \"train_step_transpose2_materialisations\": {}\n}}\n",
        interp * 1e9,
        comp * 1e9,
        batch * 1e9,
        mesh_speedup,
        t_transpose * 1e3,
        t_nt * 1e3,
        t_tn * 1e3,
        exec * 1e6,
        pool::workers_alive(),
        train_transposes,
        meta_fields = meta.json_fields(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
}

criterion_group!(
    benches,
    bench_mesh_propagation,
    bench_gemm_variants,
    report_kernel_baseline
);
criterion_main!(benches);
