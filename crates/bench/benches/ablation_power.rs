//! Ablation A3: static power of the deployed original vs proposed FCNN.

fn main() {
    oplix_bench::run_experiment("Ablation A3: static power comparison", |scale| {
        oplixnet::experiments::ablation::power_comparison(scale)
    });
}
