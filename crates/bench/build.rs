//! Captures the compiler version at build time so every `BENCH_*.json`
//! baseline records the rustc that produced its numbers. Codegen changes
//! between compiler releases can legitimately move kernel timings, so the
//! perf-smoke gate refuses to compare baselines across rustc versions
//! (see `oplix_bench::baseline`).

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let version = std::process::Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=OPLIX_RUSTC_VERSION={version}");
    println!("cargo:rerun-if-changed=build.rs");
}
