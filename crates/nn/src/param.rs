//! Trainable parameters.

use crate::tensor::Tensor;

/// One trainable parameter: its value and accumulated gradient.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
    /// Whether weight decay applies (biases and batch-norm affine
    /// parameters conventionally opt out).
    pub decay: bool,
}

impl Param {
    /// Wraps a tensor as a trainable parameter with a zero gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param {
            value,
            grad,
            decay: true,
        }
    }

    /// Wraps a tensor as a parameter exempt from weight decay.
    pub fn new_no_decay(value: Tensor) -> Self {
        let mut p = Param::new(value);
        p.decay = false;
        p
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.zero_();
    }
}

/// Object-safe visitor used by layers to expose their parameters to the
/// optimiser in a stable order.
pub type ParamVisitor<'a> = dyn FnMut(&mut Param) + 'a;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Tensor::full(&[2, 2], 1.0));
        assert_eq!(p.grad.sum(), 0.0);
        assert!(p.decay);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::full(&[2], 1.0));
        p.grad.as_mut_slice()[0] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn no_decay_flag() {
        let p = Param::new_no_decay(Tensor::zeros(&[1]));
        assert!(!p.decay);
    }
}
