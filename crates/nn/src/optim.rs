//! Optimisers: SGD with momentum/weight decay, and Adam.
//!
//! Optimisers address parameters positionally: the network must visit its
//! parameters in a stable order across steps (all containers in this crate
//! do).

use crate::param::Param;
use crate::tensor::Tensor;

/// Stochastic gradient descent with classical momentum and decoupled
/// weight decay.
#[derive(Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    /// L2 weight-decay coefficient applied to `decay == true` params.
    pub weight_decay: f32,
    /// Optional element-wise gradient clip: gradients are clamped to
    /// `[-clip, clip]` before the update. Intensity-detection heads square
    /// the activations, which can occasionally produce gradient spikes;
    /// clipping keeps long runs stable.
    pub clip: Option<f32>,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            clip: None,
            velocity: Vec::new(),
        }
    }

    /// Creates SGD with momentum and weight decay.
    pub fn with_momentum(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            clip: None,
            velocity: Vec::new(),
        }
    }

    /// Applies one update over every parameter the `visit` callback yields,
    /// then zeroes the gradients.
    pub fn step(&mut self, visit: &mut dyn FnMut(&mut dyn FnMut(&mut Param))) {
        let lr = self.lr;
        let momentum = self.momentum;
        let weight_decay = self.weight_decay;
        let clip = self.clip;
        let velocity = &mut self.velocity;
        let mut idx = 0usize;
        visit(&mut |p: &mut Param| {
            if velocity.len() <= idx {
                velocity.push(Tensor::zeros(p.value.shape()));
            }
            let v = &mut velocity[idx];
            assert_eq!(
                v.shape(),
                p.value.shape(),
                "parameter order changed between optimiser steps"
            );
            let wd = if p.decay { weight_decay } else { 0.0 };
            if let Some(c) = clip {
                for g in p.grad.as_mut_slice() {
                    if !g.is_finite() {
                        *g = 0.0;
                    } else {
                        *g = g.clamp(-c, c);
                    }
                }
            }
            for ((vv, &g), w) in v
                .as_mut_slice()
                .iter_mut()
                .zip(p.grad.as_slice())
                .zip(p.value.as_slice())
            {
                *vv = momentum * *vv + g + wd * *w;
            }
            for (w, &vv) in p.value.as_mut_slice().iter_mut().zip(v.as_slice()) {
                *w -= lr * vv;
            }
            p.zero_grad();
            idx += 1;
        });
    }
}

/// Adam optimiser (Kingma & Ba 2015).
#[derive(Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub eps: f32,
    /// L2 weight decay for `decay == true` params.
    pub weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the usual defaults.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one update over every parameter the `visit` callback yields,
    /// then zeroes the gradients.
    pub fn step(&mut self, visit: &mut dyn FnMut(&mut dyn FnMut(&mut Param))) {
        self.t += 1;
        let t = self.t as f32;
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let bias1 = 1.0 - b1.powf(t);
        let bias2 = 1.0 - b2.powf(t);
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        visit(&mut |p: &mut Param| {
            if ms.len() <= idx {
                ms.push(Tensor::zeros(p.value.shape()));
                vs.push(Tensor::zeros(p.value.shape()));
            }
            let decay = if p.decay { wd } else { 0.0 };
            // Detach each tensor once, not per element (the optimiser
            // state and parameters are never storage-shared).
            let m = ms[idx].as_mut_slice();
            let v = vs[idx].as_mut_slice();
            let grad = p.grad.as_slice();
            let value = p.value.as_mut_slice();
            for i in 0..value.len() {
                let g = grad[i] + decay * value[i];
                let mi = b1 * m[i] + (1.0 - b1) * g;
                let vi = b2 * v[i] + (1.0 - b2) * g * g;
                m[i] = mi;
                v[i] = vi;
                let mhat = mi / bias1;
                let vhat = vi / bias2;
                value[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
            p.zero_grad();
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(x0: f32) -> Param {
        Param::new(Tensor::from_vec(&[1], vec![x0]))
    }

    /// Minimise f(x) = x² with an optimiser; gradient is 2x.
    fn run_quadratic(step: &mut dyn FnMut(&mut Param), p: &mut Param, iters: usize) {
        for _ in 0..iters {
            let x = p.value.as_slice()[0];
            p.grad.as_mut_slice()[0] = 2.0 * x;
            step(p);
        }
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let mut p = quadratic_param(5.0);
        run_quadratic(&mut |p| opt.step(&mut |f| f(p)), &mut p, 100);
        assert!(p.value.as_slice()[0].abs() < 1e-3);
    }

    #[test]
    fn momentum_accelerates() {
        let mut plain = Sgd::new(0.02);
        let mut fast = Sgd::with_momentum(0.02, 0.9, 0.0);
        let mut p1 = quadratic_param(5.0);
        let mut p2 = quadratic_param(5.0);
        run_quadratic(&mut |p| plain.step(&mut |f| f(p)), &mut p1, 30);
        run_quadratic(&mut |p| fast.step(&mut |f| f(p)), &mut p2, 30);
        assert!(p2.value.as_slice()[0].abs() < p1.value.as_slice()[0].abs());
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient() {
        let mut opt = Sgd::with_momentum(0.1, 0.0, 0.5);
        let mut p = quadratic_param(1.0);
        // No task gradient: decay alone should shrink the weight.
        for _ in 0..10 {
            opt.step(&mut |f| f(&mut p));
        }
        assert!(p.value.as_slice()[0] < 1.0);
        assert!(p.value.as_slice()[0] > 0.0);
    }

    #[test]
    fn no_decay_params_are_exempt() {
        let mut opt = Sgd::with_momentum(0.1, 0.0, 0.5);
        let mut p = Param::new_no_decay(Tensor::from_vec(&[1], vec![1.0]));
        for _ in 0..10 {
            opt.step(&mut |f| f(&mut p));
        }
        assert_eq!(p.value.as_slice()[0], 1.0);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.2);
        let mut p = quadratic_param(5.0);
        run_quadratic(&mut |p| opt.step(&mut |f| f(p)), &mut p, 200);
        assert!(p.value.as_slice()[0].abs() < 1e-2);
    }

    #[test]
    fn clipping_bounds_the_update() {
        let mut opt = Sgd::new(1.0);
        opt.clip = Some(0.5);
        let mut p = quadratic_param(0.0);
        p.grad.as_mut_slice()[0] = 100.0;
        opt.step(&mut |f| f(&mut p));
        assert!((p.value.as_slice()[0] + 0.5).abs() < 1e-6);
        // Non-finite gradients are dropped entirely.
        p.grad.as_mut_slice()[0] = f32::NAN;
        opt.step(&mut |f| f(&mut p));
        assert!(p.value.as_slice()[0].is_finite());
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut opt = Sgd::new(0.1);
        let mut p = quadratic_param(1.0);
        p.grad.as_mut_slice()[0] = 3.0;
        opt.step(&mut |f| f(&mut p));
        assert_eq!(p.grad.as_slice()[0], 0.0);
    }
}
