//! Split-complex network layers with hand-derived backward passes.
//!
//! Every layer operates on [`CTensor`]s — pairs of real tensors `(re, im)`.
//! This single stack serves all four network families of the paper
//! (Table I):
//!
//! * **SCVNN** — complex weights, complex (assigned) inputs.
//! * **CVNN** — complex weights, inputs with `im = 0`.
//! * **RVNN** — layers constructed in *real-only* mode: the imaginary
//!   weight half is frozen at zero and never registered with the
//!   optimiser, which makes the layer mathematically identical to a plain
//!   real layer.
//! * **Split/conventional ONN** — the deployed versions of the above.
//!
//! Gradients are with respect to the real and imaginary parts
//! independently (split-complex calculus), exactly matching the paper's
//! Eq. (2) real-expansion view of complex arithmetic.

mod act;
mod conv;
mod dense;
mod maxpool;
mod modrelu;
mod norm;
mod pool;
mod residual;
mod sequential;
mod shape;

pub use act::CRelu;
pub use conv::CConv2d;
pub use dense::CDense;
pub use maxpool::CMaxPool2d;
pub use modrelu::CModRelu;
pub use norm::CBatchNorm2d;
pub use pool::CAvgPool2d;
pub use residual::CResidualBlock;
pub use sequential::CSequential;
pub use shape::CFlatten;

use crate::ctensor::CTensor;
use crate::param::ParamVisitor;

/// A complex-valued network layer.
///
/// `forward` must cache whatever `backward` needs; `backward` accumulates
/// parameter gradients and returns the gradient with respect to the input.
pub trait CLayer {
    /// Forward pass. `train` distinguishes batch statistics from running
    /// statistics in normalisation layers.
    fn forward(&mut self, x: &CTensor, train: bool) -> CTensor;

    /// Backward pass for the most recent `forward` call.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, dy: &CTensor) -> CTensor;

    /// Visits every trainable parameter in a stable order.
    fn visit_params(&mut self, visitor: &mut ParamVisitor) {
        let _ = visitor;
    }

    /// Downcast hook used by hardware deployment to recognise concrete
    /// layer types inside a [`CSequential`]. Layers that can be mapped onto
    /// photonic meshes (or lowered electronically between optical stages)
    /// return `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Stable short type name of the concrete layer (`"CDense"`,
    /// `"CMaxPool2d"`, …), used by hardware deployment to report *which*
    /// layer kind could not be lowered instead of a bare body index.
    fn layer_type(&self) -> &'static str {
        "unrecognised layer"
    }
}
