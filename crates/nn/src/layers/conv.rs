//! 2-D complex convolution layer.

use super::CLayer;
use crate::ctensor::CTensor;
use crate::functional::{
    conv2d_backward_input, conv2d_backward_weight, conv2d_forward, conv_out_size,
};
use crate::param::{Param, ParamVisitor};
use crate::tensor::Tensor;
use rand::Rng;

/// A complex 2-D convolution on `[N, C, H, W]` inputs.
///
/// Split form: `y_re = x_re∗w_re − x_im∗w_im + b_re`,
/// `y_im = x_re∗w_im + x_im∗w_re + b_im` (per-output-channel biases).
///
/// With `real_only = true` the imaginary half is frozen at zero (RVNN
/// mode).
#[derive(Debug)]
pub struct CConv2d {
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    w_re: Param,
    w_im: Param,
    b_re: Param,
    b_im: Param,
    real_only: bool,
    cache: Option<CTensor>,
}

impl CConv2d {
    /// Creates a complex convolution with Kaiming-uniform initialisation.
    pub fn new<R: Rng>(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        Self::build(in_ch, out_ch, kernel, stride, pad, false, rng)
    }

    /// Creates a *real-only* convolution (RVNN mode).
    pub fn new_real<R: Rng>(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        Self::build(in_ch, out_ch, kernel, stride, pad, true, rng)
    }

    fn build<R: Rng>(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        real_only: bool,
        rng: &mut R,
    ) -> Self {
        assert!(
            in_ch > 0 && out_ch > 0 && kernel > 0,
            "conv dimensions must be positive"
        );
        let fan_in = in_ch * kernel * kernel;
        let shape = [out_ch, in_ch, kernel, kernel];
        let w_re = Param::new(Tensor::kaiming_uniform(&shape, fan_in, rng));
        let w_im = if real_only {
            Param::new(Tensor::zeros(&shape))
        } else {
            Param::new(Tensor::kaiming_uniform(&shape, fan_in, rng))
        };
        CConv2d {
            in_ch,
            out_ch,
            kernel,
            stride,
            pad,
            w_re,
            w_im,
            b_re: Param::new_no_decay(Tensor::zeros(&[out_ch])),
            b_im: Param::new_no_decay(Tensor::zeros(&[out_ch])),
            real_only,
            cache: None,
        }
    }

    /// `(in_channels, out_channels, kernel, stride, pad)`.
    pub fn geometry(&self) -> (usize, usize, usize, usize, usize) {
        (self.in_ch, self.out_ch, self.kernel, self.stride, self.pad)
    }

    /// Number of independent real weight parameters.
    pub fn param_count(&self) -> usize {
        let per_half = self.out_ch * self.in_ch * self.kernel * self.kernel + self.out_ch;
        if self.real_only {
            per_half
        } else {
            2 * per_half
        }
    }

    /// Read access to the complex weight as `(re, im)` tensors.
    pub fn weight(&self) -> (&Tensor, &Tensor) {
        (&self.w_re.value, &self.w_im.value)
    }

    /// Read access to the complex per-output-channel bias as `(re, im)`
    /// tensors.
    pub fn bias(&self) -> (&Tensor, &Tensor) {
        (&self.b_re.value, &self.b_im.value)
    }

    /// Length of one im2col patch row: `in_ch · kernel · kernel`. Under
    /// the im2col view this convolution is a dense `[out_ch, patch_len]`
    /// product applied to every output position's gathered patch — the
    /// shape hardware deployment lowers onto an MZI mesh.
    pub fn patch_len(&self) -> usize {
        self.in_ch * self.kernel * self.kernel
    }

    /// Output spatial shape for an `h × w` input under this layer's
    /// kernel/stride/padding geometry.
    ///
    /// # Panics
    ///
    /// Panics if the kernel is larger than the padded input (see
    /// [`conv_out_size`]).
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            conv_out_size(h, self.kernel, self.stride, self.pad),
            conv_out_size(w, self.kernel, self.stride, self.pad),
        )
    }

    fn add_bias(&self, y: &mut Tensor, b: &Tensor) {
        let (n, o, h, w) = (y.shape()[0], y.shape()[1], y.shape()[2], y.shape()[3]);
        for bi in 0..n {
            for oc in 0..o {
                let bv = b.as_slice()[oc];
                let base = ((bi * o + oc) * h) * w;
                for v in &mut y.as_mut_slice()[base..base + h * w] {
                    *v += bv;
                }
            }
        }
    }
}

impl CLayer for CConv2d {
    fn forward(&mut self, x: &CTensor, train: bool) -> CTensor {
        assert_eq!(x.shape().len(), 4, "CConv2d expects [N, C, H, W]");
        assert_eq!(x.shape()[1], self.in_ch, "CConv2d channel mismatch");
        if train {
            self.cache = Some(x.clone());
        }
        let mut y_re = conv2d_forward(&x.re, &self.w_re.value, self.stride, self.pad);
        let mut y_im = conv2d_forward(&x.re, &self.w_im.value, self.stride, self.pad);
        if !self.real_only || x.im.max_abs() != 0.0 {
            y_re.add_assign(
                &conv2d_forward(&x.im, &self.w_im.value, self.stride, self.pad).scale(-1.0),
            );
            y_im.add_assign(&conv2d_forward(
                &x.im,
                &self.w_re.value,
                self.stride,
                self.pad,
            ));
        }
        self.add_bias(&mut y_re, &self.b_re.value);
        self.add_bias(&mut y_im, &self.b_im.value);
        CTensor::new(y_re, y_im)
    }

    fn backward(&mut self, dy: &CTensor) -> CTensor {
        let x = self
            .cache
            .take()
            .expect("backward called before forward(train=true)");
        let w_shape = self.w_re.value.shape().to_vec();

        self.w_re.grad.add_assign(&conv2d_backward_weight(
            &dy.re,
            &x.re,
            &w_shape,
            self.stride,
            self.pad,
        ));
        self.w_re.grad.add_assign(&conv2d_backward_weight(
            &dy.im,
            &x.im,
            &w_shape,
            self.stride,
            self.pad,
        ));
        if !self.real_only {
            self.w_im.grad.add_assign(
                &conv2d_backward_weight(&dy.re, &x.im, &w_shape, self.stride, self.pad).scale(-1.0),
            );
            self.w_im.grad.add_assign(&conv2d_backward_weight(
                &dy.im,
                &x.re,
                &w_shape,
                self.stride,
                self.pad,
            ));
        }

        // Bias gradients: sum over batch and spatial positions.
        let (n, o, h, w) = (
            dy.re.shape()[0],
            dy.re.shape()[1],
            dy.re.shape()[2],
            dy.re.shape()[3],
        );
        for bi in 0..n {
            for oc in 0..o {
                let base = ((bi * o + oc) * h) * w;
                let re_sum: f32 = dy.re.as_slice()[base..base + h * w].iter().sum();
                let im_sum: f32 = dy.im.as_slice()[base..base + h * w].iter().sum();
                self.b_re.grad.as_mut_slice()[oc] += re_sum;
                self.b_im.grad.as_mut_slice()[oc] += im_sum;
            }
        }

        let x_shape = x.shape().to_vec();
        let mut dx_re =
            conv2d_backward_input(&dy.re, &self.w_re.value, &x_shape, self.stride, self.pad);
        dx_re.add_assign(&conv2d_backward_input(
            &dy.im,
            &self.w_im.value,
            &x_shape,
            self.stride,
            self.pad,
        ));
        let mut dx_im =
            conv2d_backward_input(&dy.im, &self.w_re.value, &x_shape, self.stride, self.pad);
        dx_im.add_assign(
            &conv2d_backward_input(&dy.re, &self.w_im.value, &x_shape, self.stride, self.pad)
                .scale(-1.0),
        );
        CTensor::new(dx_re, dx_im)
    }

    fn visit_params(&mut self, visitor: &mut ParamVisitor) {
        visitor(&mut self.w_re);
        visitor(&mut self.b_re);
        if !self.real_only {
            visitor(&mut self.w_im);
            visitor(&mut self.b_im);
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn layer_type(&self) -> &'static str {
        "CConv2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = CConv2d::new(2, 4, 3, 1, 1, &mut rng);
        let x = CTensor::zeros(&[2, 2, 8, 8]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[2, 4, 8, 8]);
    }

    #[test]
    fn strided_forward_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = CConv2d::new(1, 2, 3, 2, 1, &mut rng);
        let x = CTensor::zeros(&[1, 1, 8, 8]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 2, 4, 4]);
    }

    #[test]
    fn complex_conv_matches_split_arithmetic() {
        // 1x1 kernel reduces conv to per-pixel complex multiplication,
        // which we can check by hand: (a+bi)(c+di).
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = CConv2d::new(1, 1, 1, 1, 0, &mut rng);
        conv.w_re.value = Tensor::from_vec(&[1, 1, 1, 1], vec![2.0]);
        conv.w_im.value = Tensor::from_vec(&[1, 1, 1, 1], vec![0.5]);
        let x = CTensor::new(
            Tensor::from_vec(&[1, 1, 1, 1], vec![3.0]),
            Tensor::from_vec(&[1, 1, 1, 1], vec![-1.0]),
        );
        let y = conv.forward(&x, false);
        // (3 - i)(2 + 0.5i) = 6 + 1.5i - 2i - 0.5i² = 6.5 - 0.5i
        assert!((y.re.as_slice()[0] - 6.5).abs() < 1e-6);
        assert!((y.im.as_slice()[0] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = CConv2d::new(1, 2, 3, 1, 1, &mut rng);
        let x = CTensor::new(
            Tensor::random_uniform(&[1, 1, 4, 4], 1.0, &mut rng),
            Tensor::random_uniform(&[1, 1, 4, 4], 1.0, &mut rng),
        );
        let y = conv.forward(&x, true);
        let dy = CTensor::new(Tensor::full(y.shape(), 1.0), Tensor::full(y.shape(), -1.0));
        let dx = conv.backward(&dy);

        let loss = |conv: &mut CConv2d, x: &CTensor| {
            let y = conv.forward(x, false);
            y.re.sum() - y.im.sum()
        };
        let eps = 1e-3f32;
        // Check a few weight entries (both halves).
        for idx in [0usize, 4, 8] {
            let analytic = conv.w_re.grad.as_slice()[idx];
            conv.w_re.value.as_mut_slice()[idx] += eps;
            let lp = loss(&mut conv, &x);
            conv.w_re.value.as_mut_slice()[idx] -= 2.0 * eps;
            let lm = loss(&mut conv, &x);
            conv.w_re.value.as_mut_slice()[idx] += eps;
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (analytic - fd).abs() < 2e-2,
                "w_re {idx}: {analytic} vs {fd}"
            );

            let analytic = conv.w_im.grad.as_slice()[idx];
            conv.w_im.value.as_mut_slice()[idx] += eps;
            let lp = loss(&mut conv, &x);
            conv.w_im.value.as_mut_slice()[idx] -= 2.0 * eps;
            let lm = loss(&mut conv, &x);
            conv.w_im.value.as_mut_slice()[idx] += eps;
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (analytic - fd).abs() < 2e-2,
                "w_im {idx}: {analytic} vs {fd}"
            );
        }
        // Check an input entry.
        for idx in [0usize, 7, 15] {
            let mut xp = x.clone();
            xp.re.as_mut_slice()[idx] += eps;
            let lp = loss(&mut conv, &xp);
            let mut xm = x.clone();
            xm.re.as_mut_slice()[idx] -= eps;
            let lm = loss(&mut conv, &xm);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!((dx.re.as_slice()[idx] - fd).abs() < 2e-2);
        }
    }

    #[test]
    fn real_only_registers_half_the_params() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut c = CConv2d::new(1, 1, 3, 1, 1, &mut rng);
        let mut r = CConv2d::new_real(1, 1, 3, 1, 1, &mut rng);
        let mut nc = 0;
        c.visit_params(&mut |_| nc += 1);
        let mut nr = 0;
        r.visit_params(&mut |_| nr += 1);
        assert_eq!(nc, 4);
        assert_eq!(nr, 2);
        assert_eq!(c.param_count(), 2 * r.param_count());
    }
}
