//! A sequential container of complex layers.

use super::CLayer;
use crate::ctensor::CTensor;
use crate::param::ParamVisitor;

/// Runs layers in order on the forward pass and in reverse on the backward
/// pass.
#[derive(Default)]
pub struct CSequential {
    layers: Vec<Box<dyn CLayer>>,
}

impl CSequential {
    /// An empty container.
    pub fn new() -> Self {
        CSequential { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl CLayer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer in place.
    pub fn add(&mut self, layer: Box<dyn CLayer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to the layers, used by hardware deployment.
    pub fn layers(&self) -> &[Box<dyn CLayer>] {
        &self.layers
    }
}

impl std::fmt::Debug for CSequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CSequential({} layers)", self.layers.len())
    }
}

impl CLayer for CSequential {
    fn forward(&mut self, x: &CTensor, train: bool) -> CTensor {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, dy: &CTensor) -> CTensor {
        let mut cur = dy.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur);
        }
        cur
    }

    fn visit_params(&mut self, visitor: &mut ParamVisitor) {
        for layer in &mut self.layers {
            layer.visit_params(visitor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{CDense, CRelu};
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_backward_chain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = CSequential::new()
            .push(CDense::new(4, 3, &mut rng))
            .push(CRelu::new())
            .push(CDense::new(3, 2, &mut rng));
        assert_eq!(net.len(), 3);

        let x = CTensor::new(
            Tensor::random_uniform(&[2, 4], 1.0, &mut rng),
            Tensor::random_uniform(&[2, 4], 1.0, &mut rng),
        );
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[2, 2]);
        let dx = net.backward(&CTensor::new(
            Tensor::full(&[2, 2], 1.0),
            Tensor::zeros(&[2, 2]),
        ));
        assert_eq!(dx.shape(), &[2, 4]);
    }

    #[test]
    fn visits_all_params() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = CSequential::new()
            .push(CDense::new(4, 3, &mut rng))
            .push(CDense::new(3, 2, &mut rng));
        let mut count = 0;
        net.visit_params(&mut |_| count += 1);
        assert_eq!(count, 8); // two layers x (w_re, b_re, w_im, b_im)
    }
}
