//! Split activation functions.

use super::CLayer;
use crate::ctensor::CTensor;
use crate::tensor::Tensor;

/// Split (CReLU) activation: ReLU applied independently to the real and
/// imaginary parts — the standard SCVNN nonlinearity (Bassey et al. 2021,
/// the paper's ref. \[22\]).
///
/// In real-only networks the imaginary part is identically zero and the
/// layer degenerates to an ordinary ReLU.
#[derive(Debug, Default)]
pub struct CRelu {
    mask_re: Option<Tensor>,
    mask_im: Option<Tensor>,
}

impl CRelu {
    /// Creates the activation.
    pub fn new() -> Self {
        CRelu::default()
    }
}

impl CLayer for CRelu {
    fn forward(&mut self, x: &CTensor, train: bool) -> CTensor {
        let y_re = x.re.map(|v| v.max(0.0));
        let y_im = x.im.map(|v| v.max(0.0));
        if train {
            self.mask_re = Some(x.re.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
            self.mask_im = Some(x.im.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
        }
        CTensor::new(y_re, y_im)
    }

    fn backward(&mut self, dy: &CTensor) -> CTensor {
        let mask_re = self
            .mask_re
            .take()
            .expect("backward called before forward(train=true)");
        let mask_im = self
            .mask_im
            .take()
            .expect("backward called before forward(train=true)");
        CTensor::new(dy.re.mul(&mask_re), dy.im.mul(&mask_im))
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn layer_type(&self) -> &'static str {
        "CRelu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_both_parts_independently() {
        let mut act = CRelu::new();
        let x = CTensor::new(
            Tensor::from_vec(&[3], vec![-1.0, 0.5, 2.0]),
            Tensor::from_vec(&[3], vec![1.0, -0.5, -2.0]),
        );
        let y = act.forward(&x, false);
        assert_eq!(y.re.as_slice(), &[0.0, 0.5, 2.0]);
        assert_eq!(y.im.as_slice(), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut act = CRelu::new();
        let x = CTensor::new(
            Tensor::from_vec(&[2], vec![-1.0, 1.0]),
            Tensor::from_vec(&[2], vec![1.0, -1.0]),
        );
        let _ = act.forward(&x, true);
        let dy = CTensor::new(
            Tensor::from_vec(&[2], vec![5.0, 5.0]),
            Tensor::from_vec(&[2], vec![7.0, 7.0]),
        );
        let dx = act.backward(&dy);
        assert_eq!(dx.re.as_slice(), &[0.0, 5.0]);
        assert_eq!(dx.im.as_slice(), &[7.0, 0.0]);
    }

    #[test]
    fn zero_input_blocks_gradient() {
        let mut act = CRelu::new();
        let x = CTensor::zeros(&[2]);
        let _ = act.forward(&x, true);
        let dy = CTensor::new(Tensor::full(&[2], 1.0), Tensor::full(&[2], 1.0));
        let dx = act.backward(&dy);
        assert_eq!(dx.re.max_abs(), 0.0);
        assert_eq!(dx.im.max_abs(), 0.0);
    }
}
