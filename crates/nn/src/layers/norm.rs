//! Split batch normalisation.

use super::CLayer;
use crate::ctensor::CTensor;
use crate::param::{Param, ParamVisitor};
use crate::tensor::Tensor;

const EPS: f32 = 1e-5;
const MOMENTUM: f32 = 0.1;

/// Plain real batch normalisation over `[N, C, H, W]`, per channel.
/// Used twice (once per complex part) by [`CBatchNorm2d`].
#[derive(Debug)]
struct RealBatchNorm {
    channels: usize,
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    // Cached for backward.
    xhat: Option<Tensor>,
    inv_std: Vec<f32>,
}

impl RealBatchNorm {
    fn new(channels: usize) -> Self {
        RealBatchNorm {
            channels,
            gamma: Param::new_no_decay(Tensor::full(&[channels], 1.0)),
            beta: Param::new_no_decay(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            xhat: None,
            inv_std: vec![0.0; channels],
        }
    }

    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.channels, "batch-norm channel mismatch");
        let m = (n * h * w) as f32;
        let mut y = Tensor::zeros(x.shape());
        let mut xhat = Tensor::zeros(x.shape());

        for ch in 0..c {
            let (mean, var) = if train {
                let mut s = 0.0f64;
                for b in 0..n {
                    for yy in 0..h {
                        for xx in 0..w {
                            s += x.at4(b, ch, yy, xx) as f64;
                        }
                    }
                }
                let mean = (s / m as f64) as f32;
                let mut v = 0.0f64;
                for b in 0..n {
                    for yy in 0..h {
                        for xx in 0..w {
                            let d = x.at4(b, ch, yy, xx) - mean;
                            v += (d * d) as f64;
                        }
                    }
                }
                let var = (v / m as f64) as f32;
                self.running_mean[ch] = (1.0 - MOMENTUM) * self.running_mean[ch] + MOMENTUM * mean;
                self.running_var[ch] = (1.0 - MOMENTUM) * self.running_var[ch] + MOMENTUM * var;
                (mean, var)
            } else {
                (self.running_mean[ch], self.running_var[ch])
            };
            let inv_std = 1.0 / (var + EPS).sqrt();
            self.inv_std[ch] = inv_std;
            let g = self.gamma.value.as_slice()[ch];
            let bta = self.beta.value.as_slice()[ch];
            // Detach once per channel, not once per element write.
            let (mut xhat_w, mut y_w) = (xhat.writer4(), y.writer4());
            for b in 0..n {
                for yy in 0..h {
                    for xx in 0..w {
                        let xh = (x.at4(b, ch, yy, xx) - mean) * inv_std;
                        *xhat_w.at4_mut(b, ch, yy, xx) = xh;
                        *y_w.at4_mut(b, ch, yy, xx) = g * xh + bta;
                    }
                }
            }
        }
        if train {
            self.xhat = Some(xhat);
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let xhat = self
            .xhat
            .take()
            .expect("backward called before forward(train=true)");
        let (n, c, h, w) = (dy.shape()[0], dy.shape()[1], dy.shape()[2], dy.shape()[3]);
        let m = (n * h * w) as f32;
        let mut dx = Tensor::zeros(dy.shape());

        for ch in 0..c {
            let g = self.gamma.value.as_slice()[ch];
            let inv_std = self.inv_std[ch];
            let mut sum_dy = 0.0f64;
            let mut sum_dy_xhat = 0.0f64;
            for b in 0..n {
                for yy in 0..h {
                    for xx in 0..w {
                        let d = dy.at4(b, ch, yy, xx);
                        sum_dy += d as f64;
                        sum_dy_xhat += (d * xhat.at4(b, ch, yy, xx)) as f64;
                    }
                }
            }
            self.beta.grad.as_mut_slice()[ch] += sum_dy as f32;
            self.gamma.grad.as_mut_slice()[ch] += sum_dy_xhat as f32;

            let k1 = sum_dy as f32 / m;
            let k2 = sum_dy_xhat as f32 / m;
            let mut dx_w = dx.writer4();
            for b in 0..n {
                for yy in 0..h {
                    for xx in 0..w {
                        let d = dy.at4(b, ch, yy, xx);
                        let xh = xhat.at4(b, ch, yy, xx);
                        *dx_w.at4_mut(b, ch, yy, xx) = g * inv_std * (d - k1 - xh * k2);
                    }
                }
            }
        }
        dx
    }
}

/// Split batch normalisation for complex feature maps: independent batch
/// norms on the real and imaginary parts (the usual choice for
/// split-complex networks; a full covariance whitening would not map onto
/// the paper's hardware any better).
#[derive(Debug)]
pub struct CBatchNorm2d {
    re: RealBatchNorm,
    im: RealBatchNorm,
}

impl CBatchNorm2d {
    /// Creates a split batch norm over `channels` complex channels.
    pub fn new(channels: usize) -> Self {
        CBatchNorm2d {
            re: RealBatchNorm::new(channels),
            im: RealBatchNorm::new(channels),
        }
    }
}

impl CLayer for CBatchNorm2d {
    fn forward(&mut self, x: &CTensor, train: bool) -> CTensor {
        CTensor::new(self.re.forward(&x.re, train), self.im.forward(&x.im, train))
    }

    fn backward(&mut self, dy: &CTensor) -> CTensor {
        CTensor::new(self.re.backward(&dy.re), self.im.backward(&dy.im))
    }

    fn visit_params(&mut self, visitor: &mut ParamVisitor) {
        visitor(&mut self.re.gamma);
        visitor(&mut self.re.beta);
        visitor(&mut self.im.gamma);
        visitor(&mut self.im.beta);
    }

    fn layer_type(&self) -> &'static str {
        "CBatchNorm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn train_forward_normalizes_batch() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut bn = CBatchNorm2d::new(2);
        let x = CTensor::new(
            Tensor::random_uniform(&[4, 2, 3, 3], 5.0, &mut rng),
            Tensor::random_uniform(&[4, 2, 3, 3], 5.0, &mut rng),
        );
        let y = bn.forward(&x, true);
        // Per-channel mean ~0, var ~1 on the real part.
        let (n, c, h, w) = (4, 2, 3, 3);
        for ch in 0..c {
            let mut s = 0.0;
            let mut v = 0.0;
            for b in 0..n {
                for yy in 0..h {
                    for xx in 0..w {
                        s += y.re.at4(b, ch, yy, xx) as f64;
                    }
                }
            }
            let mean = s / (n * h * w) as f64;
            for b in 0..n {
                for yy in 0..h {
                    for xx in 0..w {
                        v += (y.re.at4(b, ch, yy, xx) as f64 - mean).powi(2);
                    }
                }
            }
            let var = v / (n * h * w) as f64;
            assert!(mean.abs() < 1e-4, "mean = {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var = {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut bn = CBatchNorm2d::new(1);
        // Feed several training batches to populate running stats.
        for _ in 0..50 {
            let x = CTensor::new(
                Tensor::from_vec(
                    &[8, 1, 1, 1],
                    (0..8).map(|_| 3.0 + rng.gen_range(-0.1..0.1)).collect(),
                ),
                Tensor::zeros(&[8, 1, 1, 1]),
            );
            let _ = bn.forward(&x, true);
        }
        // In eval mode an input equal to the running mean maps near beta=0.
        let x = CTensor::new(
            Tensor::full(&[1, 1, 1, 1], 3.0),
            Tensor::zeros(&[1, 1, 1, 1]),
        );
        let y = bn.forward(&x, false);
        assert!(y.re.as_slice()[0].abs() < 0.2, "got {}", y.re.as_slice()[0]);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = CTensor::new(
            Tensor::random_uniform(&[2, 1, 2, 2], 1.0, &mut rng),
            Tensor::random_uniform(&[2, 1, 2, 2], 1.0, &mut rng),
        );
        // Loss = sum(gamma-scaled outputs * fixed random weights) to make
        // the gradient non-trivial.
        let wts: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let loss = |bn: &mut CBatchNorm2d, x: &CTensor| {
            // Fresh stats copy: use train mode for both value and grad paths.
            let y = bn.forward(x, true);
            y.re.as_slice()
                .iter()
                .zip(&wts)
                .map(|(&a, &b)| (a * b) as f64)
                .sum::<f64>()
        };
        let mut bn = CBatchNorm2d::new(1);
        let base_y = bn.forward(&x, true);
        let mut dy = CTensor::zeros(base_y.shape());
        dy.re = Tensor::from_vec(&[2, 1, 2, 2], wts.clone());
        let dx = bn.backward(&dy);

        let eps = 1e-2f32;
        for idx in 0..8 {
            let mut xp = x.clone();
            xp.re.as_mut_slice()[idx] += eps;
            let lp = loss(&mut bn, &xp);
            let mut xm = x.clone();
            xm.re.as_mut_slice()[idx] -= eps;
            let lm = loss(&mut bn, &xm);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (dx.re.as_slice()[idx] - fd).abs() < 3e-2,
                "idx {idx}: {} vs {fd}",
                dx.re.as_slice()[idx]
            );
        }
    }

    #[test]
    fn exposes_four_params() {
        let mut bn = CBatchNorm2d::new(3);
        let mut count = 0;
        bn.visit_params(&mut |p| {
            count += 1;
            assert!(!p.decay);
        });
        assert_eq!(count, 4);
    }
}
