//! Pooling layers.

use super::CLayer;
use crate::ctensor::CTensor;
use crate::functional::{avg_pool2d_backward, avg_pool2d_forward};

/// Average pooling with a square window `k` and stride `k`, applied to the
/// real and imaginary parts independently. Average pooling is linear, so
/// the split application is exactly complex average pooling.
#[derive(Debug)]
pub struct CAvgPool2d {
    k: usize,
    in_shape: Option<Vec<usize>>,
}

impl CAvgPool2d {
    /// Creates an average-pooling layer with window size `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "pooling window must be positive");
        CAvgPool2d { k, in_shape: None }
    }

    /// The window size.
    pub fn window(&self) -> usize {
        self.k
    }
}

impl CLayer for CAvgPool2d {
    fn forward(&mut self, x: &CTensor, train: bool) -> CTensor {
        if train {
            self.in_shape = Some(x.shape().to_vec());
        }
        CTensor::new(
            avg_pool2d_forward(&x.re, self.k),
            avg_pool2d_forward(&x.im, self.k),
        )
    }

    fn backward(&mut self, dy: &CTensor) -> CTensor {
        let shape = self
            .in_shape
            .take()
            .expect("backward called before forward(train=true)");
        CTensor::new(
            avg_pool2d_backward(&dy.re, &shape, self.k),
            avg_pool2d_backward(&dy.im, &shape, self.k),
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn layer_type(&self) -> &'static str {
        "CAvgPool2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn pools_both_parts() {
        let mut pool = CAvgPool2d::new(2);
        let x = CTensor::new(
            Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]),
            Tensor::from_vec(&[1, 1, 2, 2], vec![4.0, 4.0, 4.0, 4.0]),
        );
        let y = pool.forward(&x, false);
        assert_eq!(y.re.as_slice(), &[2.5]);
        assert_eq!(y.im.as_slice(), &[4.0]);
    }

    #[test]
    fn backward_spreads_gradient() {
        let mut pool = CAvgPool2d::new(2);
        let x = CTensor::zeros(&[1, 1, 4, 4]);
        let _ = pool.forward(&x, true);
        let dy = CTensor::new(
            Tensor::full(&[1, 1, 2, 2], 4.0),
            Tensor::zeros(&[1, 1, 2, 2]),
        );
        let dx = pool.backward(&dy);
        assert_eq!(dx.shape(), &[1, 1, 4, 4]);
        for &v in dx.re.as_slice() {
            assert_eq!(v, 1.0);
        }
    }

    #[test]
    fn global_pooling_reduces_to_one_pixel() {
        let mut pool = CAvgPool2d::new(4);
        let x = CTensor::zeros(&[2, 3, 4, 4]);
        let y = pool.forward(&x, false);
        assert_eq!(y.shape(), &[2, 3, 1, 1]);
    }
}
