//! Shape-manipulation layers.

use super::CLayer;
use crate::ctensor::CTensor;

/// Flattens `[N, C, H, W]` feature maps to `[N, C·H·W]` vectors (the
/// CNN-to-dense transition in LeNet-5 and the ResNets).
#[derive(Debug, Default)]
pub struct CFlatten {
    in_shape: Option<Vec<usize>>,
}

impl CFlatten {
    /// Creates the layer.
    pub fn new() -> Self {
        CFlatten::default()
    }
}

impl CLayer for CFlatten {
    fn forward(&mut self, x: &CTensor, train: bool) -> CTensor {
        if train {
            self.in_shape = Some(x.shape().to_vec());
        }
        let batch = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        x.reshape(&[batch, rest])
    }

    fn backward(&mut self, dy: &CTensor) -> CTensor {
        let shape = self
            .in_shape
            .take()
            .expect("backward called before forward(train=true)");
        dy.reshape(&shape)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn layer_type(&self) -> &'static str {
        "CFlatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_round_trip() {
        let mut f = CFlatten::new();
        let x = CTensor::zeros(&[2, 3, 4, 4]);
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 48]);
        let dx = f.backward(&y);
        assert_eq!(dx.shape(), &[2, 3, 4, 4]);
    }
}
