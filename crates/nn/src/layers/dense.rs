//! Fully connected complex layer.

use super::CLayer;
use crate::ctensor::CTensor;
use crate::functional::{dense_backward_input, dense_backward_weight, dense_forward};
use crate::param::{Param, ParamVisitor};
use crate::tensor::Tensor;
use rand::Rng;

/// A complex dense layer `y = W x + b` on `[batch, n_in]` inputs.
///
/// In split form (paper Eq. 2):
///
/// ```text
/// y_re = x_re·W_reᵀ − x_im·W_imᵀ + b_re
/// y_im = x_re·W_imᵀ + x_im·W_reᵀ + b_im
/// ```
///
/// With `real_only = true` the imaginary halves are frozen at zero and the
/// layer degenerates to an ordinary real dense layer (used for RVNN).
#[derive(Debug)]
pub struct CDense {
    n_in: usize,
    n_out: usize,
    w_re: Param,
    w_im: Param,
    b_re: Param,
    b_im: Param,
    real_only: bool,
    cache: Option<CTensor>,
}

impl CDense {
    /// Creates a complex dense layer with Kaiming-uniform initialisation.
    pub fn new<R: Rng>(n_in: usize, n_out: usize, rng: &mut R) -> Self {
        Self::build(n_in, n_out, false, rng)
    }

    /// Creates a *real-only* dense layer (zero, frozen imaginary half).
    pub fn new_real<R: Rng>(n_in: usize, n_out: usize, rng: &mut R) -> Self {
        Self::build(n_in, n_out, true, rng)
    }

    fn build<R: Rng>(n_in: usize, n_out: usize, real_only: bool, rng: &mut R) -> Self {
        assert!(n_in > 0 && n_out > 0, "layer dimensions must be positive");
        let w_re = Param::new(Tensor::kaiming_uniform(&[n_out, n_in], n_in, rng));
        let w_im = if real_only {
            Param::new(Tensor::zeros(&[n_out, n_in]))
        } else {
            Param::new(Tensor::kaiming_uniform(&[n_out, n_in], n_in, rng))
        };
        CDense {
            n_in,
            n_out,
            w_re,
            w_im,
            b_re: Param::new_no_decay(Tensor::zeros(&[n_out])),
            b_im: Param::new_no_decay(Tensor::zeros(&[n_out])),
            real_only,
            cache: None,
        }
    }

    /// Input width.
    pub fn n_in(&self) -> usize {
        self.n_in
    }

    /// Output width.
    pub fn n_out(&self) -> usize {
        self.n_out
    }

    /// Number of independent real weight parameters (for the paper's
    /// `#Para` axis in Fig. 7).
    pub fn param_count(&self) -> usize {
        if self.real_only {
            self.n_in * self.n_out + self.n_out
        } else {
            2 * (self.n_in * self.n_out + self.n_out)
        }
    }

    /// Read access to the complex weight as `(re, im)` tensors, used when
    /// deploying onto photonic hardware.
    pub fn weight(&self) -> (&Tensor, &Tensor) {
        (&self.w_re.value, &self.w_im.value)
    }

    /// Read access to the complex bias as `(re, im)` tensors.
    pub fn bias(&self) -> (&Tensor, &Tensor) {
        (&self.b_re.value, &self.b_im.value)
    }

    /// Mutable access to the complex weight, used by the unitary decoder's
    /// projection step.
    pub fn weight_mut(&mut self) -> (&mut Tensor, &mut Tensor) {
        (&mut self.w_re.value, &mut self.w_im.value)
    }

    fn add_bias(&self, y: &mut Tensor, b: &Tensor) {
        let (batch, k) = (y.shape()[0], y.shape()[1]);
        for i in 0..batch {
            let row = &mut y.as_mut_slice()[i * k..(i + 1) * k];
            for (v, &bv) in row.iter_mut().zip(b.as_slice()) {
                *v += bv;
            }
        }
    }
}

impl CLayer for CDense {
    fn forward(&mut self, x: &CTensor, train: bool) -> CTensor {
        assert_eq!(x.shape().len(), 2, "CDense expects [batch, features]");
        assert_eq!(x.shape()[1], self.n_in, "CDense fan-in mismatch");
        if train {
            self.cache = Some(x.clone());
        }
        let mut y_re = dense_forward(&x.re, &self.w_re.value);
        let mut y_im = dense_forward(&x.re, &self.w_im.value);
        y_re.add_assign(&dense_forward(&x.im, &self.w_im.value).scale(-1.0));
        y_im.add_assign(&dense_forward(&x.im, &self.w_re.value));
        self.add_bias(&mut y_re, &self.b_re.value);
        self.add_bias(&mut y_im, &self.b_im.value);
        CTensor::new(y_re, y_im)
    }

    fn backward(&mut self, dy: &CTensor) -> CTensor {
        let x = self
            .cache
            .take()
            .expect("backward called before forward(train=true)");

        // Weight gradients.
        self.w_re
            .grad
            .add_assign(&dense_backward_weight(&dy.re, &x.re));
        self.w_re
            .grad
            .add_assign(&dense_backward_weight(&dy.im, &x.im));
        if !self.real_only {
            self.w_im
                .grad
                .add_assign(&dense_backward_weight(&dy.re, &x.im).scale(-1.0));
            self.w_im
                .grad
                .add_assign(&dense_backward_weight(&dy.im, &x.re));
        }

        // Bias gradients: column sums over the batch.
        let (batch, k) = (dy.re.shape()[0], dy.re.shape()[1]);
        for i in 0..batch {
            for j in 0..k {
                self.b_re.grad.as_mut_slice()[j] += dy.re.at2(i, j);
                self.b_im.grad.as_mut_slice()[j] += dy.im.at2(i, j);
            }
        }

        // Input gradients.
        let mut dx_re = dense_backward_input(&dy.re, &self.w_re.value);
        dx_re.add_assign(&dense_backward_input(&dy.im, &self.w_im.value));
        let mut dx_im = dense_backward_input(&dy.im, &self.w_re.value);
        dx_im.add_assign(&dense_backward_input(&dy.re, &self.w_im.value).scale(-1.0));
        CTensor::new(dx_re, dx_im)
    }

    fn visit_params(&mut self, visitor: &mut ParamVisitor) {
        visitor(&mut self.w_re);
        visitor(&mut self.b_re);
        if !self.real_only {
            visitor(&mut self.w_im);
            visitor(&mut self.b_im);
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn layer_type(&self) -> &'static str {
        "CDense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn finite_diff_loss(layer: &mut CDense, x: &CTensor) -> f64 {
        // Loss = sum(y_re) + 2*sum(y_im); deterministic and sensitive to
        // both output halves.
        let y = layer.forward(x, false);
        y.re.sum() + 2.0 * y.im.sum()
    }

    #[test]
    fn forward_matches_complex_arithmetic() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = CDense::new(2, 1, &mut rng);
        // Overwrite with known weights: w = [1+2i, 3-1i], b = 0.
        layer.w_re.value = Tensor::from_vec(&[1, 2], vec![1.0, 3.0]);
        layer.w_im.value = Tensor::from_vec(&[1, 2], vec![2.0, -1.0]);
        // x = [1+1i, 2+0i]
        let x = CTensor::new(
            Tensor::from_vec(&[1, 2], vec![1.0, 2.0]),
            Tensor::from_vec(&[1, 2], vec![1.0, 0.0]),
        );
        let y = layer.forward(&x, false);
        // (1+2i)(1+i) + (3-i)(2) = (1+3i+2i²)+(6-2i) = (-1+3i)+(6-2i) = 5+i
        assert!((y.re.as_slice()[0] - 5.0).abs() < 1e-5);
        assert!((y.im.as_slice()[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn backward_weight_grads_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = CDense::new(3, 2, &mut rng);
        let x = CTensor::new(
            Tensor::random_uniform(&[2, 3], 1.0, &mut rng),
            Tensor::random_uniform(&[2, 3], 1.0, &mut rng),
        );
        let y = layer.forward(&x, true);
        let dy = CTensor::new(Tensor::full(y.shape(), 1.0), Tensor::full(y.shape(), 2.0));
        layer.backward(&dy);

        let eps = 1e-3f32;
        for idx in [0usize, 2, 5] {
            // w_re
            let analytic = layer.w_re.grad.as_slice()[idx];
            layer.w_re.value.as_mut_slice()[idx] += eps;
            let lp = finite_diff_loss(&mut layer, &x);
            layer.w_re.value.as_mut_slice()[idx] -= 2.0 * eps;
            let lm = finite_diff_loss(&mut layer, &x);
            layer.w_re.value.as_mut_slice()[idx] += eps;
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (analytic - fd).abs() < 1e-2,
                "w_re idx {idx}: {analytic} vs {fd}"
            );

            // w_im
            let analytic = layer.w_im.grad.as_slice()[idx];
            layer.w_im.value.as_mut_slice()[idx] += eps;
            let lp = finite_diff_loss(&mut layer, &x);
            layer.w_im.value.as_mut_slice()[idx] -= 2.0 * eps;
            let lm = finite_diff_loss(&mut layer, &x);
            layer.w_im.value.as_mut_slice()[idx] += eps;
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (analytic - fd).abs() < 1e-2,
                "w_im idx {idx}: {analytic} vs {fd}"
            );
        }
    }

    #[test]
    fn backward_input_grads_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = CDense::new(3, 2, &mut rng);
        let x = CTensor::new(
            Tensor::random_uniform(&[1, 3], 1.0, &mut rng),
            Tensor::random_uniform(&[1, 3], 1.0, &mut rng),
        );
        let y = layer.forward(&x, true);
        let dy = CTensor::new(Tensor::full(y.shape(), 1.0), Tensor::full(y.shape(), 2.0));
        let dx = layer.backward(&dy);

        let eps = 1e-3f32;
        for idx in 0..3 {
            let mut xp = x.clone();
            xp.re.as_mut_slice()[idx] += eps;
            let lp = finite_diff_loss(&mut layer, &xp);
            let mut xm = x.clone();
            xm.re.as_mut_slice()[idx] -= eps;
            let lm = finite_diff_loss(&mut layer, &xm);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!((dx.re.as_slice()[idx] - fd).abs() < 1e-2);

            let mut xp = x.clone();
            xp.im.as_mut_slice()[idx] += eps;
            let lp = finite_diff_loss(&mut layer, &xp);
            let mut xm = x.clone();
            xm.im.as_mut_slice()[idx] -= eps;
            let lm = finite_diff_loss(&mut layer, &xm);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!((dx.im.as_slice()[idx] - fd).abs() < 1e-2);
        }
    }

    #[test]
    fn real_only_mode_keeps_imaginary_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = CDense::new_real(3, 2, &mut rng);
        let x = CTensor::from_re(Tensor::random_uniform(&[2, 3], 1.0, &mut rng));
        let y = layer.forward(&x, false);
        assert_eq!(y.im.max_abs(), 0.0);
        // Only the real params are registered.
        let mut count = 0;
        layer.visit_params(&mut |_| count += 1);
        assert_eq!(count, 2);
    }

    #[test]
    fn param_count_doubles_for_complex() {
        let mut rng = StdRng::seed_from_u64(5);
        let c = CDense::new(4, 3, &mut rng);
        let r = CDense::new_real(4, 3, &mut rng);
        assert_eq!(c.param_count(), 2 * r.param_count());
    }

    #[test]
    fn bias_gradient_accumulates_batch() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut layer = CDense::new(2, 2, &mut rng);
        let x = CTensor::zeros(&[3, 2]);
        let _ = layer.forward(&x, true);
        let dy = CTensor::new(Tensor::full(&[3, 2], 1.0), Tensor::zeros(&[3, 2]));
        layer.backward(&dy);
        assert_eq!(layer.b_re.grad.as_slice(), &[3.0, 3.0]);
    }
}
