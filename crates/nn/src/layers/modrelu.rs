//! ModReLU: the modulus-based complex activation (Arjovsky et al. 2016,
//! surveyed for CVNNs in the paper's ref. \[22\]).
//!
//! `modReLU(z) = ReLU(|z| + b) · z / |z|` — the phase is preserved and the
//! modulus is thresholded by a learnable per-feature bias. This is the main
//! alternative to the split (CReLU) activation used in the paper; it is
//! provided so the activation choice can be ablated.

use super::CLayer;
use crate::ctensor::CTensor;
use crate::param::{Param, ParamVisitor};
use crate::tensor::Tensor;

const EPS: f32 = 1e-6;

/// Modulus ReLU with a learnable threshold per feature.
///
/// The feature axis is the last dimension for rank-2 inputs and the channel
/// axis for rank-4 inputs; with `features == 1` the single bias is shared.
#[derive(Debug)]
pub struct CModRelu {
    bias: Param,
    cache: Option<CTensor>,
}

impl CModRelu {
    /// Creates the activation with `features` thresholds, initialised to a
    /// small negative value (so small-magnitude noise is suppressed).
    ///
    /// # Panics
    ///
    /// Panics if `features == 0`.
    pub fn new(features: usize) -> Self {
        assert!(features > 0, "need at least one feature");
        CModRelu {
            bias: Param::new_no_decay(Tensor::full(&[features], -0.05)),
            cache: None,
        }
    }

    fn feature_of(&self, shape: &[usize], flat_idx: usize) -> usize {
        Self::feature_index(self.bias.value.numel(), shape, flat_idx)
    }

    /// Borrow-free form of [`CModRelu::feature_of`], usable while the
    /// bias tensors are split-borrowed in the backward loop.
    fn feature_index(nf: usize, shape: &[usize], flat_idx: usize) -> usize {
        if nf == 1 {
            return 0;
        }
        match shape.len() {
            2 => flat_idx % shape[1].min(nf.max(1)),
            4 => {
                let per_img: usize = shape[1] * shape[2] * shape[3];
                let within = flat_idx % per_img;
                within / (shape[2] * shape[3])
            }
            _ => 0,
        }
    }
}

impl CLayer for CModRelu {
    fn forward(&mut self, x: &CTensor, train: bool) -> CTensor {
        if train {
            self.cache = Some(x.clone());
        }
        let shape = x.shape().to_vec();
        let mut re = Tensor::zeros(&shape);
        let mut im = Tensor::zeros(&shape);
        let (re_s, im_s) = (re.as_mut_slice(), im.as_mut_slice());
        for i in 0..x.numel() {
            let (xr, xi) = (x.re.as_slice()[i], x.im.as_slice()[i]);
            let r = (xr * xr + xi * xi).sqrt();
            let b = self.bias.value.as_slice()[self.feature_of(&shape, i)];
            let scale = if r + b > 0.0 {
                (r + b) / (r + EPS)
            } else {
                0.0
            };
            re_s[i] = xr * scale;
            im_s[i] = xi * scale;
        }
        CTensor::new(re, im)
    }

    fn backward(&mut self, dy: &CTensor) -> CTensor {
        let x = self
            .cache
            .take()
            .expect("backward called before forward(train=true)");
        let shape = x.shape().to_vec();
        let mut dre = Tensor::zeros(&shape);
        let mut dim = Tensor::zeros(&shape);
        let (dre_s, dim_s) = (dre.as_mut_slice(), dim.as_mut_slice());
        let bias_v = self.bias.value.as_slice();
        let bias_g = self.bias.grad.as_mut_slice();
        for i in 0..x.numel() {
            let (xr, xi) = (x.re.as_slice()[i], x.im.as_slice()[i]);
            let (gr, gi) = (dy.re.as_slice()[i], dy.im.as_slice()[i]);
            let r2 = xr * xr + xi * xi;
            let r = r2.sqrt();
            let f = Self::feature_index(bias_v.len(), &shape, i);
            let b = bias_v[f];
            if r + b <= 0.0 || r < EPS {
                continue; // clipped region: zero gradient everywhere
            }
            // y = x * s with s = (r + b) / r.
            // ds/dxr = (dr/dxr)(1/r) - (r+b)(dr/dxr)/r² = (dr/dxr)·(-b/r²)
            // with dr/dxr = xr/r.
            let s = (r + b) / r;
            let ds_dr = -b / r2; // d s / d r
            let dr_dxr = xr / r;
            let dr_dxi = xi / r;
            // dyr/dxr = s + xr·ds_dr·dr_dxr ; dyr/dxi = xr·ds_dr·dr_dxi
            // dyi/dxr = xi·ds_dr·dr_dxr     ; dyi/dxi = s + xi·ds_dr·dr_dxi
            dre_s[i] = gr * (s + xr * ds_dr * dr_dxr) + gi * (xi * ds_dr * dr_dxr);
            dim_s[i] = gr * (xr * ds_dr * dr_dxi) + gi * (s + xi * ds_dr * dr_dxi);
            // d y / d b = x / r (both parts), so db accumulates
            // (gr·xr + gi·xi)/r.
            bias_g[f] += (gr * xr + gi * xi) / r;
        }
        CTensor::new(dre, dim)
    }

    fn visit_params(&mut self, visitor: &mut ParamVisitor) {
        visitor(&mut self.bias);
    }

    fn layer_type(&self) -> &'static str {
        "CModRelu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_phase() {
        let mut act = CModRelu::new(1);
        act.bias.value.as_mut_slice()[0] = 0.0;
        let x = CTensor::new(
            Tensor::from_vec(&[1, 2], vec![3.0, -1.0]),
            Tensor::from_vec(&[1, 2], vec![4.0, 1.0]),
        );
        let y = act.forward(&x, false);
        // With b = 0: y == x (scale = r/r = 1 up to EPS).
        for i in 0..2 {
            assert!((y.re.as_slice()[i] - x.re.as_slice()[i]).abs() < 1e-4);
            assert!((y.im.as_slice()[i] - x.im.as_slice()[i]).abs() < 1e-4);
        }
    }

    #[test]
    fn clips_small_magnitudes() {
        let mut act = CModRelu::new(1);
        act.bias.value.as_mut_slice()[0] = -1.0;
        let x = CTensor::new(
            Tensor::from_vec(&[1, 2], vec![0.3, 3.0]),
            Tensor::from_vec(&[1, 2], vec![0.4, 4.0]),
        );
        let y = act.forward(&x, false);
        // |z0| = 0.5 < 1 -> clipped to 0; |z1| = 5 -> scaled to 4/5.
        assert_eq!(y.re.as_slice()[0], 0.0);
        assert_eq!(y.im.as_slice()[0], 0.0);
        assert!((y.re.as_slice()[1] - 3.0 * 0.8).abs() < 1e-4);
        assert!((y.im.as_slice()[1] - 4.0 * 0.8).abs() < 1e-4);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut act = CModRelu::new(2);
        act.bias.value.as_mut_slice().copy_from_slice(&[-0.2, 0.1]);
        let x = CTensor::new(
            Tensor::from_vec(&[2, 2], vec![0.8, -0.6, 1.2, 0.4]),
            Tensor::from_vec(&[2, 2], vec![0.5, 0.9, -0.7, 1.1]),
        );
        let y = act.forward(&x, true);
        let dy = CTensor::new(Tensor::full(y.shape(), 1.0), Tensor::full(y.shape(), 0.5));
        let dx = act.backward(&dy);

        let loss = |act: &mut CModRelu, x: &CTensor| {
            let y = act.forward(x, false);
            y.re.sum() + 0.5 * y.im.sum()
        };
        let eps = 1e-3f32;
        for idx in 0..4 {
            let mut xp = x.clone();
            xp.re.as_mut_slice()[idx] += eps;
            let lp = loss(&mut act, &xp);
            let mut xm = x.clone();
            xm.re.as_mut_slice()[idx] -= eps;
            let lm = loss(&mut act, &xm);
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (dx.re.as_slice()[idx] - fd).abs() < 2e-2,
                "re idx {idx}: {} vs {fd}",
                dx.re.as_slice()[idx]
            );
        }
        // Bias gradient check.
        let analytic = act.bias.grad.as_slice()[0];
        let mut ap = CModRelu::new(2);
        ap.bias
            .value
            .as_mut_slice()
            .copy_from_slice(&[-0.2 + eps, 0.1]);
        let lp = loss(&mut ap, &x);
        let mut am = CModRelu::new(2);
        am.bias
            .value
            .as_mut_slice()
            .copy_from_slice(&[-0.2 - eps, 0.1]);
        let lm = loss(&mut am, &x);
        let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
        assert!((analytic - fd).abs() < 2e-2, "bias: {analytic} vs {fd}");
    }

    #[test]
    fn zero_input_produces_zero_gradient() {
        let mut act = CModRelu::new(1);
        let x = CTensor::zeros(&[1, 3]);
        let _ = act.forward(&x, true);
        let dy = CTensor::new(Tensor::full(&[1, 3], 1.0), Tensor::full(&[1, 3], 1.0));
        let dx = act.backward(&dy);
        assert_eq!(dx.re.max_abs(), 0.0);
        assert_eq!(dx.im.max_abs(), 0.0);
    }

    #[test]
    fn registers_bias_param() {
        let mut act = CModRelu::new(4);
        let mut count = 0;
        act.visit_params(&mut |p| {
            count += 1;
            assert_eq!(p.value.numel(), 4);
        });
        assert_eq!(count, 1);
    }
}
