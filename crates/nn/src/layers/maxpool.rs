//! Modulus-based max pooling for complex feature maps.
//!
//! Complex max pooling selects, within each window, the element with the
//! largest **modulus** and passes it through with phase intact — the
//! natural complex analogue of real max pooling (used by several CVNN
//! works surveyed in the paper's ref. \[22\]). Provided alongside
//! [`CAvgPool2d`](super::CAvgPool2d) so the pooling choice can be ablated.

use super::CLayer;
use crate::ctensor::CTensor;
use crate::tensor::Tensor;

/// Max-by-modulus pooling with a square window `k` and stride `k`.
#[derive(Debug)]
pub struct CMaxPool2d {
    k: usize,
    /// Flat index (into the input) of the selected element per output
    /// position, cached for backward.
    argmax: Option<Vec<usize>>,
    in_shape: Option<Vec<usize>>,
}

impl CMaxPool2d {
    /// Creates a max-pooling layer with window size `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "pooling window must be positive");
        CMaxPool2d {
            k,
            argmax: None,
            in_shape: None,
        }
    }

    /// The window size.
    pub fn window(&self) -> usize {
        self.k
    }
}

impl CLayer for CMaxPool2d {
    fn forward(&mut self, x: &CTensor, train: bool) -> CTensor {
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let k = self.k;
        assert!(
            h % k == 0 && w % k == 0,
            "pooling window must divide the input"
        );
        let (ho, wo) = (h / k, w / k);
        let mut re = Tensor::zeros(&[n, c, ho, wo]);
        let mut im = Tensor::zeros(&[n, c, ho, wo]);
        let mut argmax = vec![0usize; n * c * ho * wo];

        // Detach the output storage once, not per element write.
        let (re_s, im_s) = (re.as_mut_slice(), im.as_mut_slice());
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..k {
                            for dx in 0..k {
                                let (iy, ix) = (oy * k + dy, ox * k + dx);
                                let idx = ((b * c + ch) * h + iy) * w + ix;
                                let m = x.re.as_slice()[idx].powi(2) + x.im.as_slice()[idx].powi(2);
                                if m > best {
                                    best = m;
                                    best_idx = idx;
                                }
                            }
                        }
                        let out_idx = ((b * c + ch) * ho + oy) * wo + ox;
                        re_s[out_idx] = x.re.as_slice()[best_idx];
                        im_s[out_idx] = x.im.as_slice()[best_idx];
                        argmax[out_idx] = best_idx;
                    }
                }
            }
        }
        if train {
            self.argmax = Some(argmax);
            self.in_shape = Some(x.shape().to_vec());
        }
        CTensor::new(re, im)
    }

    fn backward(&mut self, dy: &CTensor) -> CTensor {
        let argmax = self
            .argmax
            .take()
            .expect("backward called before forward(train=true)");
        let shape = self
            .in_shape
            .take()
            .expect("backward called before forward(train=true)");
        let mut dre = Tensor::zeros(&shape);
        let mut dim = Tensor::zeros(&shape);
        let (dre_s, dim_s) = (dre.as_mut_slice(), dim.as_mut_slice());
        for (out_idx, &in_idx) in argmax.iter().enumerate() {
            dre_s[in_idx] += dy.re.as_slice()[out_idx];
            dim_s[in_idx] += dy.im.as_slice()[out_idx];
        }
        CTensor::new(dre, dim)
    }

    fn layer_type(&self) -> &'static str {
        "CMaxPool2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_largest_modulus_with_phase() {
        let mut pool = CMaxPool2d::new(2);
        // Window holds 1+0i, 0+2i, -1-1i, 0.5+0.5i: |0+2i| wins.
        let x = CTensor::new(
            Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 0.0, -1.0, 0.5]),
            Tensor::from_vec(&[1, 1, 2, 2], vec![0.0, 2.0, -1.0, 0.5]),
        );
        let y = pool.forward(&x, false);
        assert_eq!(y.re.as_slice(), &[0.0]);
        assert_eq!(y.im.as_slice(), &[2.0]);
    }

    #[test]
    fn backward_routes_gradient_to_winner() {
        let mut pool = CMaxPool2d::new(2);
        let x = CTensor::new(
            Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 0.0, 3.0, 0.5]),
            Tensor::from_vec(&[1, 1, 2, 2], vec![0.0, 2.0, 0.0, 0.5]),
        );
        let _ = pool.forward(&x, true);
        let dy = CTensor::new(
            Tensor::from_vec(&[1, 1, 1, 1], vec![7.0]),
            Tensor::from_vec(&[1, 1, 1, 1], vec![-7.0]),
        );
        let dx = pool.backward(&dy);
        // Winner is index 2 (3+0i).
        assert_eq!(dx.re.as_slice(), &[0.0, 0.0, 7.0, 0.0]);
        assert_eq!(dx.im.as_slice(), &[0.0, 0.0, -7.0, 0.0]);
    }

    #[test]
    fn differs_from_avg_pool_on_peaky_input() {
        use super::super::CAvgPool2d;
        let x = CTensor::new(
            Tensor::from_vec(&[1, 1, 2, 2], vec![4.0, 0.0, 0.0, 0.0]),
            Tensor::zeros(&[1, 1, 2, 2]),
        );
        let max = CMaxPool2d::new(2).forward(&x, false);
        let avg = CAvgPool2d::new(2).forward(&x, false);
        assert_eq!(max.re.as_slice(), &[4.0]);
        assert_eq!(avg.re.as_slice(), &[1.0]);
    }

    #[test]
    fn shape_contract() {
        let mut pool = CMaxPool2d::new(2);
        let x = CTensor::zeros(&[2, 3, 8, 8]);
        assert_eq!(pool.forward(&x, false).shape(), &[2, 3, 4, 4]);
        assert_eq!(pool.window(), 2);
    }
}
