//! The basic residual block of the CIFAR-style ResNets (He et al. 2016),
//! in split-complex form.

use super::{CBatchNorm2d, CConv2d, CLayer, CRelu};
use crate::ctensor::CTensor;
use crate::param::ParamVisitor;
use rand::Rng;

/// `out = ReLU( BN2(Conv2(ReLU(BN1(Conv1(x))))) + shortcut(x) )`.
///
/// The shortcut is the identity when geometry is preserved, or a strided
/// 1×1 convolution plus batch norm when the block downsamples / widens
/// (projection shortcut, ResNet "option B").
#[derive(Debug)]
pub struct CResidualBlock {
    conv1: CConv2d,
    bn1: CBatchNorm2d,
    relu1: CRelu,
    conv2: CConv2d,
    bn2: CBatchNorm2d,
    shortcut: Option<(CConv2d, CBatchNorm2d)>,
    relu_out: CRelu,
    cache_x: Option<CTensor>,
}

impl CResidualBlock {
    /// Creates a block mapping `in_ch → out_ch` with the given stride on
    /// the first convolution. Uses complex weights; pass `real_only` for
    /// the RVNN variant.
    pub fn new<R: Rng>(
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        real_only: bool,
        rng: &mut R,
    ) -> Self {
        let conv = |ic, oc, k, s, p, rng: &mut R| {
            if real_only {
                CConv2d::new_real(ic, oc, k, s, p, rng)
            } else {
                CConv2d::new(ic, oc, k, s, p, rng)
            }
        };
        let shortcut = if stride != 1 || in_ch != out_ch {
            Some((
                conv(in_ch, out_ch, 1, stride, 0, rng),
                CBatchNorm2d::new(out_ch),
            ))
        } else {
            None
        };
        CResidualBlock {
            conv1: conv(in_ch, out_ch, 3, stride, 1, rng),
            bn1: CBatchNorm2d::new(out_ch),
            relu1: CRelu::new(),
            conv2: conv(out_ch, out_ch, 3, 1, 1, rng),
            bn2: CBatchNorm2d::new(out_ch),
            shortcut,
            relu_out: CRelu::new(),
            cache_x: None,
        }
    }

    /// Total independent real parameter count of this block.
    pub fn param_count(&self) -> usize {
        let mut n = self.conv1.param_count() + self.conv2.param_count();
        if let Some((sc, _)) = &self.shortcut {
            n += sc.param_count();
        }
        n
    }
}

impl CLayer for CResidualBlock {
    fn forward(&mut self, x: &CTensor, train: bool) -> CTensor {
        if train {
            self.cache_x = Some(x.clone());
        }
        let h = self.conv1.forward(x, train);
        let h = self.bn1.forward(&h, train);
        let h = self.relu1.forward(&h, train);
        let h = self.conv2.forward(&h, train);
        let h = self.bn2.forward(&h, train);
        let skip = match &mut self.shortcut {
            Some((conv, bn)) => {
                let s = conv.forward(x, train);
                bn.forward(&s, train)
            }
            None => x.clone(),
        };
        self.relu_out.forward(&h.add(&skip), train)
    }

    fn backward(&mut self, dy: &CTensor) -> CTensor {
        let _ = self.cache_x.take();
        let d_sum = self.relu_out.backward(dy);
        // Main branch.
        let d = self.bn2.backward(&d_sum);
        let d = self.conv2.backward(&d);
        let d = self.relu1.backward(&d);
        let d = self.bn1.backward(&d);
        let mut dx = self.conv1.backward(&d);
        // Shortcut branch.
        match &mut self.shortcut {
            Some((conv, bn)) => {
                let d = bn.backward(&d_sum);
                dx.add_assign(&conv.backward(&d));
            }
            None => dx.add_assign(&d_sum),
        }
        dx
    }

    fn visit_params(&mut self, visitor: &mut ParamVisitor) {
        self.conv1.visit_params(visitor);
        self.bn1.visit_params(visitor);
        self.conv2.visit_params(visitor);
        self.bn2.visit_params(visitor);
        if let Some((conv, bn)) = &mut self.shortcut {
            conv.visit_params(visitor);
            bn.visit_params(visitor);
        }
    }

    fn layer_type(&self) -> &'static str {
        "CResidualBlock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_shortcut_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut block = CResidualBlock::new(4, 4, 1, false, &mut rng);
        let x = CTensor::zeros(&[2, 4, 8, 8]);
        let y = block.forward(&x, false);
        assert_eq!(y.shape(), &[2, 4, 8, 8]);
    }

    #[test]
    fn projection_shortcut_downsamples() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut block = CResidualBlock::new(4, 8, 2, false, &mut rng);
        let x = CTensor::zeros(&[1, 4, 8, 8]);
        let y = block.forward(&x, false);
        assert_eq!(y.shape(), &[1, 8, 4, 4]);
    }

    #[test]
    fn backward_produces_input_shaped_grad() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut block = CResidualBlock::new(2, 4, 2, false, &mut rng);
        let x = CTensor::new(
            Tensor::random_uniform(&[2, 2, 4, 4], 1.0, &mut rng),
            Tensor::random_uniform(&[2, 2, 4, 4], 1.0, &mut rng),
        );
        let y = block.forward(&x, true);
        let dy = CTensor::new(Tensor::full(y.shape(), 1.0), Tensor::full(y.shape(), 1.0));
        let dx = block.backward(&dy);
        assert_eq!(dx.shape(), x.shape());
        // Gradient must reach the input through both branches.
        assert!(dx.re.max_abs() > 0.0);
    }

    #[test]
    fn param_counts() {
        let mut rng = StdRng::seed_from_u64(4);
        let plain = CResidualBlock::new(4, 4, 1, false, &mut rng);
        let proj = CResidualBlock::new(4, 8, 2, false, &mut rng);
        assert!(proj.param_count() > plain.param_count());
        let real = CResidualBlock::new(4, 4, 1, true, &mut rng);
        assert_eq!(plain.param_count(), 2 * real.param_count());
    }

    #[test]
    fn visit_params_covers_shortcut() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut plain = CResidualBlock::new(4, 4, 1, false, &mut rng);
        let mut proj = CResidualBlock::new(4, 8, 2, false, &mut rng);
        let count = |b: &mut CResidualBlock| {
            let mut c = 0;
            b.visit_params(&mut |_| c += 1);
            c
        };
        assert!(count(&mut proj) > count(&mut plain));
    }
}
