//! A minimal dense `f32` tensor.
//!
//! The training side of the reproduction works in single precision (as GPU
//! training would) and only ever needs contiguous row-major storage with
//! rank ≤ 4 (`[batch, channel, height, width]` for images, `[batch,
//! features]` for dense layers).
//!
//! Storage is an [`Arc`]-shared buffer with copy-on-write semantics:
//! cloning a tensor — and hence a dataset view built from tensors — is a
//! reference bump, not a data copy, which is what makes per-grid-arm
//! clones of assigned datasets and pipeline-stage handoffs cheap. The
//! first mutable access after a clone ([`Tensor::as_mut_slice`] and
//! friends) detaches the storage, so writes never alias across clones.

use oplix_linalg::gemm;
use rand::Rng;
use std::cell::Cell;
use std::sync::Arc;

thread_local! {
    /// Per-thread count of [`Tensor::transpose2`] materialisations — a
    /// cheap allocation diagnostic. The dense forward/backward passes are
    /// meant to be transpose-free ([`Tensor::matmul_nt`] /
    /// [`Tensor::matmul_tn`]), and tests pin that by asserting this counter
    /// does not move across a train step. Thread-local so concurrent tests
    /// cannot perturb each other's window.
    static TRANSPOSE2_MATERIALISATIONS: Cell<u64> = const { Cell::new(0) };
}

/// How many transposed tensor copies ([`Tensor::transpose2`]) the *current
/// thread* has materialised so far. Training and serving hot paths are
/// expected to leave this counter untouched.
pub fn transpose2_materialisations() -> u64 {
    TRANSPOSE2_MATERIALISATIONS.with(Cell::get)
}

/// A dense row-major tensor of `f32` values.
///
/// Clones share storage until one side mutates (copy-on-write):
///
/// ```
/// use oplix_nn::tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.numel(), 6);
/// assert_eq!(t.shape(), &[2, 3]);
///
/// let mut u = t.clone();
/// assert!(t.shares_storage(&u)); // clone is a reference bump
/// u.as_mut_slice()[0] = 1.0;     // first write detaches the buffer
/// assert!(!t.shares_storage(&u));
/// assert_eq!(t.as_slice()[0], 0.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Arc<Vec<f32>>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: Arc::new(vec![0.0; shape.iter().product()]),
        }
    }

    /// A tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: Arc::new(vec![value; shape.iter().product()]),
        }
    }

    /// Builds a tensor from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length does not match shape {shape:?}"
        );
        Tensor {
            shape: shape.to_vec(),
            data: Arc::new(data),
        }
    }

    /// I.i.d. uniform samples in `[-scale, scale)`.
    pub fn random_uniform<R: Rng>(shape: &[usize], scale: f32, rng: &mut R) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: Arc::new((0..n).map(|_| rng.gen_range(-scale..scale)).collect()),
        }
    }

    /// Kaiming-style uniform initialisation for a parameter with the given
    /// fan-in: `U(-1/√fan_in, 1/√fan_in)`.
    ///
    /// # Panics
    ///
    /// Panics if `fan_in == 0`.
    pub fn kaiming_uniform<R: Rng>(shape: &[usize], fan_in: usize, rng: &mut R) -> Self {
        assert!(fan_in > 0, "fan_in must be positive");
        let scale = 1.0 / (fan_in as f32).sqrt();
        Self::random_uniform(shape, scale, rng)
    }

    /// The shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the flat data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat data. If the storage is shared with a
    /// clone, it is detached (copied) first, so the write never aliases.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.data_mut()
    }

    /// Whether two tensors share the same underlying storage (i.e. one is
    /// an un-mutated clone of the other). Used by tests to assert that
    /// view clones are reference bumps, not copies.
    #[inline]
    pub fn shares_storage(&self, other: &Tensor) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Copy-on-write access to the storage: detaches a shared buffer,
    /// then hands out the unique one.
    #[inline]
    fn data_mut(&mut self) -> &mut Vec<f32> {
        Arc::make_mut(&mut self.data)
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.numel(),
            shape.iter().product::<usize>(),
            "reshape cannot change the element count"
        );
        Tensor {
            shape: shape.to_vec(),
            data: Arc::clone(&self.data),
        }
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, rhs: &Tensor) {
        assert_eq!(self.shape, rhs.shape, "add_assign shape mismatch");
        // Clone rhs's handle first: if the two tensors share storage,
        // `data_mut` detaches self and the read side stays valid.
        let rhs_data = Arc::clone(&rhs.data);
        for (a, &b) in self.data_mut().iter_mut().zip(rhs_data.iter()) {
            *a += b;
        }
    }

    /// Element-wise sum, returning a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.add_assign(rhs);
        out
    }

    /// Element-wise difference, returning a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "sub shape mismatch");
        let mut out = self.clone();
        for (a, &b) in out.data_mut().iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
        out
    }

    /// Element-wise product, returning a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "mul shape mismatch");
        let mut out = self.clone();
        for (a, &b) in out.data_mut().iter_mut().zip(rhs.data.iter()) {
            *a *= b;
        }
        out
    }

    /// Multiplies every element by a scalar, in place.
    pub fn scale_in_place(&mut self, k: f32) {
        for a in self.data_mut().iter_mut() {
            *a *= k;
        }
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, k: f32) -> Tensor {
        let mut out = self.clone();
        out.scale_in_place(k);
        out
    }

    /// Applies a function element-wise, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: Arc::new(self.data.iter().map(|&v| f(v)).collect()),
        }
    }

    /// Fills the tensor with zeros.
    pub fn zero_(&mut self) {
        self.data_mut().fill(0.0);
    }

    /// Sum of all elements (in `f64` for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Maximum absolute element, or 0 for an empty tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// 2-D matrix product: `self` is `[m, k]`, `rhs` is `[k, n]`, through
    /// the workspace's shared cache-blocked kernel
    /// ([`oplix_linalg::gemm::gemm`]).
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are rank 2 with matching inner dimension.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be rank 2");
        assert_eq!(rhs.shape.len(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul inner dimension mismatch");
        let mut out = Tensor::zeros(&[m, n]);
        gemm::gemm(m, k, n, &self.data, &rhs.data, out.data_mut());
        out
    }

    /// Transpose-free product `self · rhsᵀ` with `self: [m, k]` and `rhs`
    /// stored **untransposed** as `[n, k]` — the layout a
    /// `[out_features, in_features]` weight matrix already has. Bitwise
    /// identical to `self.matmul(&rhs.transpose2())` without materialising
    /// the transposed copy.
    ///
    /// ```
    /// use oplix_nn::tensor::Tensor;
    ///
    /// let x = Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]);
    /// let w = Tensor::from_vec(&[2, 3], vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0]);
    /// assert_eq!(x.matmul_nt(&w), x.matmul(&w.transpose2()));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are rank 2 with matching trailing
    /// dimension.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul_nt lhs must be rank 2");
        assert_eq!(rhs.shape.len(), 2, "matmul_nt rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul_nt inner dimension mismatch");
        let mut out = Tensor::zeros(&[m, n]);
        gemm::gemm_nt(m, k, n, &self.data, &rhs.data, out.data_mut());
        out
    }

    /// Transpose-free product `selfᵀ · rhs` with `self` stored
    /// **untransposed** as `[k, m]` and `rhs: [k, n]` — the weight-gradient
    /// product `dW = dYᵀ · X` without a transposed copy of `dY`. Bitwise
    /// identical to `self.transpose2().matmul(rhs)`.
    ///
    /// ```
    /// use oplix_nn::tensor::Tensor;
    ///
    /// let dy = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
    /// let x = Tensor::from_vec(&[2, 3], vec![0.5, 0.0, 1.0, 1.0, 2.0, 0.0]);
    /// assert_eq!(dy.matmul_tn(&x), dy.transpose2().matmul(&x));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are rank 2 with matching leading
    /// dimension.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul_tn lhs must be rank 2");
        assert_eq!(rhs.shape.len(), 2, "matmul_tn rhs must be rank 2");
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (rhs.shape[0], rhs.shape[1]);
        assert_eq!(k, k2, "matmul_tn inner dimension mismatch");
        let mut out = Tensor::zeros(&[m, n]);
        gemm::gemm_tn(m, k, n, &self.data, &rhs.data, out.data_mut());
        out
    }

    /// 2-D transpose, materialising a new tensor (and bumping the
    /// [`transpose2_materialisations`] diagnostic). Hot paths should prefer
    /// the transpose-free [`Tensor::matmul_nt`] / [`Tensor::matmul_tn`].
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is rank 2.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose2 requires rank 2");
        TRANSPOSE2_MATERIALISATIONS.with(|c| c.set(c.get() + 1));
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[n, m]);
        let out_data = out.data_mut();
        for i in 0..m {
            for j in 0..n {
                out_data[j * m + i] = self.data[i * n + j];
            }
        }
        out
    }

    /// Flat element access for rank-2 tensors.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Flat element access for rank-4 tensors `[n, c, h, w]`.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let (cc, hh, ww) = (self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cc + c) * hh + h) * ww + w]
    }

    /// Mutable flat element access for rank-4 tensors.
    ///
    /// Each call pays the copy-on-write uniqueness check; element-wise
    /// inner loops should detach once via [`Tensor::writer4`] instead.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let (cc, hh, ww) = (self.shape[1], self.shape[2], self.shape[3]);
        let idx = ((n * cc + c) * hh + h) * ww + w;
        &mut self.data_mut()[idx]
    }

    /// Detaches the storage once and returns a rank-4 writer whose
    /// element writes are plain slice indexing — the loop-friendly form
    /// of [`Tensor::at4_mut`], with no per-write copy-on-write check.
    ///
    /// # Panics
    ///
    /// Panics unless the tensor is rank 4.
    pub fn writer4(&mut self) -> Writer4<'_> {
        assert_eq!(self.shape.len(), 4, "writer4 requires rank 4");
        let (c, h, w) = (self.shape[1], self.shape[2], self.shape[3]);
        Writer4 {
            data: self.data_mut(),
            c,
            h,
            w,
        }
    }
}

/// A mutable rank-4 element writer over already-detached tensor storage;
/// see [`Tensor::writer4`].
pub struct Writer4<'a> {
    data: &'a mut [f32],
    c: usize,
    h: usize,
    w: usize,
}

impl Writer4<'_> {
    /// Mutable flat element access `[n, c, h, w]`.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        &mut self.data[((n * self.c + c) * self.h + h) * self.w + w]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.numel(), 24);
        let u = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(u.at2(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_checks_length() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn matmul_known_result() {
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_with_identity() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut id = Tensor::zeros(&[3, 3]);
        for i in 0..3 {
            id.as_mut_slice()[i * 3 + i] = 1.0;
        }
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn transpose_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::random_uniform(&[3, 5], 1.0, &mut rng);
        assert_eq!(a.transpose2().transpose2(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        let b = Tensor::from_vec(&[2], vec![3.0, 5.0]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).as_slice(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!(a.map(|v| v * v).as_slice(), &[1.0, 4.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(&[3], vec![-4.0, 1.0, 2.0]);
        assert_eq!(a.sum(), -1.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn kaiming_scale_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = Tensor::kaiming_uniform(&[100], 25, &mut rng);
        assert!(t.max_abs() <= 0.2);
        assert!(t.max_abs() > 0.0);
    }

    #[test]
    fn at4_layout() {
        let t = Tensor::from_vec(&[1, 2, 2, 2], (0..8).map(|v| v as f32).collect());
        assert_eq!(t.at4(0, 1, 1, 0), 6.0);
        assert_eq!(t.at4(0, 0, 1, 1), 3.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let r = t.reshape(&[4]);
        assert_eq!(r.as_slice(), t.as_slice());
    }

    #[test]
    fn clones_share_storage_until_mutation() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let r = t.reshape(&[4]);
        let mut u = t.clone();
        assert!(t.shares_storage(&u), "clone must be a reference bump");
        assert!(t.shares_storage(&r), "reshape must share storage");
        u.as_mut_slice()[0] = 9.0;
        assert!(!t.shares_storage(&u), "mutation must detach");
        assert_eq!(t.as_slice()[0], 1.0, "original must be unchanged");
        assert_eq!(u.as_slice()[0], 9.0);
        assert_eq!(r.as_slice()[0], 1.0, "reshaped view must be unchanged");
    }

    #[test]
    fn cow_handles_self_aliased_add_assign() {
        let t = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        let mut u = t.clone(); // shares storage with t
        u.add_assign(&t); // read side aliases the write side pre-detach
        assert_eq!(u.as_slice(), &[2.0, 4.0]);
        assert_eq!(t.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn at4_mut_detaches_shared_storage() {
        let t = Tensor::zeros(&[1, 1, 2, 2]);
        let mut u = t.clone();
        *u.at4_mut(0, 0, 1, 1) = 5.0;
        assert_eq!(t.at4(0, 0, 1, 1), 0.0);
        assert_eq!(u.at4(0, 0, 1, 1), 5.0);
    }

    #[test]
    fn transpose2_bumps_the_materialisation_counter() {
        let before = transpose2_materialisations();
        let _ = Tensor::zeros(&[2, 3]).transpose2();
        assert!(transpose2_materialisations() > before);
    }

    mod properties {
        use super::super::*;
        use proptest::prelude::*;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        /// A random rank-2 tensor, including empty (0-row / 0-col) and
        /// 1×N degenerate shapes, with a seed so every case differs.
        fn tensor2(rows: usize, cols: usize, seed: u64) -> Tensor {
            let mut rng = StdRng::seed_from_u64(seed);
            Tensor::random_uniform(&[rows, cols], 1.0, &mut rng)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// `matmul_nt` is pinned *bitwise* against materialising the
            /// transpose: same products, same accumulation order, same
            /// roundings.
            #[test]
            fn matmul_nt_matches_transpose_then_matmul(
                m in 0usize..9,
                k in 0usize..70,
                n in 0usize..9,
                seed in 0u64..u64::MAX,
            ) {
                let a = tensor2(m, k, seed);
                let b = tensor2(n, k, seed.wrapping_add(1));
                prop_assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose2()));
            }

            /// Same bitwise pin for the `TN` (weight-gradient) layout.
            #[test]
            fn matmul_tn_matches_transpose_then_matmul(
                k in 0usize..70,
                m in 0usize..9,
                n in 0usize..9,
                seed in 0u64..u64::MAX,
            ) {
                let a = tensor2(k, m, seed);
                let b = tensor2(k, n, seed.wrapping_add(1));
                prop_assert_eq!(a.matmul_tn(&b), a.transpose2().matmul(&b));
            }

            /// The blocked kernel agrees bitwise with a plain `ikj`
            /// reference loop at every shape, including empty and 1×N.
            #[test]
            fn blocked_matmul_matches_naive_ikj(
                m in 0usize..6,
                k in 0usize..140,
                n in 0usize..6,
                seed in 0u64..u64::MAX,
            ) {
                let a = tensor2(m, k, seed);
                let b = tensor2(k, n, seed.wrapping_add(1));
                let mut naive = Tensor::zeros(&[m, n]);
                {
                    let out = naive.as_mut_slice();
                    for i in 0..m {
                        for t in 0..k {
                            let av = a.as_slice()[i * k + t];
                            for j in 0..n {
                                out[i * n + j] += av * b.as_slice()[t * n + j];
                            }
                        }
                    }
                }
                prop_assert_eq!(a.matmul(&b), naive);
            }
        }
    }
}
