//! SCVNN–CVNN mutual learning (paper §III-C, Eqs. 3–4).
//!
//! Two networks train *simultaneously* on the same samples, each seeing its
//! own view of the data (the SCVNN student sees the complex-assigned,
//! halved features; the CVNN teacher sees the full-size real-part
//! encoding), and each distilling from the other's current predictions:
//!
//! ```text
//! L_SCVNN = L_CE + α · KL(p_CVNN ‖ p_SCVNN)
//! L_CVNN  = L_CE + α · KL(p_SCVNN ‖ p_CVNN)
//! ```
//!
//! This is Deep Mutual Learning (Zhang et al., CVPR 2018, the paper's
//! ref. \[25\]) with α = 1.0 in the paper's experiments.

use crate::loss::{cross_entropy, distillation_kl};
use crate::network::Network;
use crate::optim::Sgd;
use crate::trainer::{evaluate, CDataset};
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration of a mutual-learning run.
#[derive(Clone, Copy, Debug)]
pub struct MutualConfig {
    /// Distillation mixing factor α (the paper uses 1.0).
    pub alpha: f32,
    /// Softmax temperature for the KL term (the paper follows DML: T = 1).
    pub temperature: f32,
    /// Mini-batch size.
    pub batch_size: usize,
}

impl Default for MutualConfig {
    fn default() -> Self {
        MutualConfig {
            alpha: 1.0,
            temperature: 1.0,
            batch_size: 32,
        }
    }
}

/// Per-epoch losses of the two mutually-learning networks.
#[derive(Clone, Copy, Debug, Default)]
pub struct MutualEpochStats {
    /// Mean total loss of the student (CE + α·KD).
    pub student_loss: f64,
    /// Mean total loss of the teacher (CE + α·KD).
    pub teacher_loss: f64,
}

/// One epoch of mutual learning.
///
/// `student_data` and `teacher_data` must contain the *same samples in the
/// same order* under their two input views (assignment for the student,
/// real-part encoding for the teacher); labels must agree.
///
/// # Panics
///
/// Panics if the two datasets disagree in length or labels.
#[allow(clippy::too_many_arguments)]
pub fn mutual_train_epoch<R: Rng>(
    student: &mut Network,
    teacher: &mut Network,
    student_data: &CDataset,
    teacher_data: &CDataset,
    cfg: &MutualConfig,
    opt_student: &mut Sgd,
    opt_teacher: &mut Sgd,
    rng: &mut R,
) -> MutualEpochStats {
    assert_eq!(
        student_data.len(),
        teacher_data.len(),
        "student/teacher datasets must pair the same samples"
    );
    assert_eq!(
        student_data.labels, teacher_data.labels,
        "student/teacher labels must agree"
    );

    let mut order: Vec<usize> = (0..student_data.len()).collect();
    order.shuffle(rng);
    let mut stats = MutualEpochStats::default();
    let mut batches = 0usize;

    for chunk in order.chunks(cfg.batch_size) {
        let (xs, ys) = student_data.gather(chunk);
        let (xt, _) = teacher_data.gather(chunk);

        // Both networks predict the batch.
        let zs = student.forward(&xs, true);
        let zt = teacher.forward(&xt, true);

        // Student loss: CE + alpha * KL(teacher || student).
        let (ce_s, mut grad_s) = cross_entropy(&zs, &ys);
        let (kd_s, grad_kd_s) = distillation_kl(&zs, &zt, cfg.temperature);
        grad_s.add_assign(&grad_kd_s.scale(cfg.alpha));

        // Teacher loss: CE + alpha * KL(student || teacher).
        let (ce_t, mut grad_t) = cross_entropy(&zt, &ys);
        let (kd_t, grad_kd_t) = distillation_kl(&zt, &zs, cfg.temperature);
        grad_t.add_assign(&grad_kd_t.scale(cfg.alpha));

        student.backward(&grad_s);
        teacher.backward(&grad_t);
        opt_student.step(&mut |f| student.visit_params(f));
        opt_teacher.step(&mut |f| teacher.visit_params(f));
        student.post_step();
        teacher.post_step();

        stats.student_loss += ce_s + cfg.alpha as f64 * kd_s;
        stats.teacher_loss += ce_t + cfg.alpha as f64 * kd_t;
        batches += 1;
    }
    stats.student_loss /= batches.max(1) as f64;
    stats.teacher_loss /= batches.max(1) as f64;
    stats
}

/// Full mutual-learning schedule; returns the student's final test
/// accuracy (the quantity Table III reports).
#[allow(clippy::too_many_arguments)]
pub fn mutual_fit<R: Rng>(
    student: &mut Network,
    teacher: &mut Network,
    student_train: &CDataset,
    teacher_train: &CDataset,
    student_test: &CDataset,
    epochs: usize,
    cfg: &MutualConfig,
    opt_student: &mut Sgd,
    opt_teacher: &mut Sgd,
    rng: &mut R,
) -> f64 {
    let (lr_s, lr_t) = (opt_student.lr, opt_teacher.lr);
    for e in 0..epochs {
        let decay = if e >= epochs * 3 / 4 {
            0.25
        } else if e >= epochs / 2 {
            0.5
        } else {
            1.0
        };
        opt_student.lr = lr_s * decay;
        opt_teacher.lr = lr_t * decay;
        let _ = mutual_train_epoch(
            student,
            teacher,
            student_train,
            teacher_train,
            cfg,
            opt_student,
            opt_teacher,
            rng,
        );
    }
    opt_student.lr = lr_s;
    opt_teacher.lr = lr_t;
    evaluate(student, student_test, cfg.batch_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctensor::CTensor;
    use crate::head::MergeHead;
    use crate::layers::{CDense, CRelu, CSequential};
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 2-class problem with two views: the student sees 2 complex
    /// features (assigned), the teacher sees 4 real-part features.
    fn paired_datasets(n: usize, seed: u64) -> (CDataset, CDataset) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s_re = Tensor::zeros(&[n, 2]);
        let mut s_im = Tensor::zeros(&[n, 2]);
        let mut t_re = Tensor::zeros(&[n, 4]);
        let mut labels = Vec::new();
        let (s_re_s, s_im_s, t_re_s) = (
            s_re.as_mut_slice(),
            s_im.as_mut_slice(),
            t_re.as_mut_slice(),
        );
        for i in 0..n {
            let class = i % 2;
            let sign = if class == 0 { 1.0f32 } else { -1.0 };
            let raw: Vec<f32> = (0..4)
                .map(|j| sign * (1.0 + j as f32 * 0.1) + rng.gen_range(-0.2..0.2))
                .collect();
            // Student view: (raw0 + j raw1, raw2 + j raw3).
            s_re_s[i * 2] = raw[0];
            s_im_s[i * 2] = raw[1];
            s_re_s[i * 2 + 1] = raw[2];
            s_im_s[i * 2 + 1] = raw[3];
            // Teacher view: real parts only.
            t_re_s[i * 4..(i + 1) * 4].copy_from_slice(&raw);
            labels.push(class);
        }
        (
            CDataset::new(CTensor::new(s_re, s_im), labels.clone()),
            CDataset::new(CTensor::from_re(t_re), labels),
        )
    }

    fn small_net(n_in: usize, seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let body = CSequential::new()
            .push(CDense::new(n_in, 8, &mut rng))
            .push(CRelu::new())
            .push(CDense::new(8, 4, &mut rng));
        Network::new(body, Box::new(MergeHead::new()))
    }

    #[test]
    fn mutual_training_learns_both_models() {
        let (s_train, t_train) = paired_datasets(128, 1);
        let (s_test, t_test) = paired_datasets(64, 2);
        let mut student = small_net(2, 3);
        let mut teacher = small_net(4, 4);
        let cfg = MutualConfig::default();
        let mut opt_s = Sgd::with_momentum(0.05, 0.9, 0.0);
        let mut opt_t = Sgd::with_momentum(0.05, 0.9, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let acc_s = mutual_fit(
            &mut student,
            &mut teacher,
            &s_train,
            &t_train,
            &s_test,
            15,
            &cfg,
            &mut opt_s,
            &mut opt_t,
            &mut rng,
        );
        assert!(acc_s > 0.9, "student accuracy only {acc_s}");
        let acc_t = evaluate(&mut teacher, &t_test, 16);
        assert!(acc_t > 0.9, "teacher accuracy only {acc_t}");
    }

    #[test]
    fn losses_decrease_over_epochs() {
        let (s_train, t_train) = paired_datasets(64, 7);
        let mut student = small_net(2, 8);
        let mut teacher = small_net(4, 9);
        let cfg = MutualConfig {
            batch_size: 16,
            ..Default::default()
        };
        // Clip as every production caller does; the raw coupled updates can
        // diverge on this toy problem depending on the shuffle order.
        let mut opt_s = Sgd::with_momentum(0.05, 0.9, 0.0);
        opt_s.clip = Some(1.0);
        let mut opt_t = Sgd::with_momentum(0.05, 0.9, 0.0);
        opt_t.clip = Some(1.0);
        let mut rng = StdRng::seed_from_u64(10);
        let first = mutual_train_epoch(
            &mut student,
            &mut teacher,
            &s_train,
            &t_train,
            &cfg,
            &mut opt_s,
            &mut opt_t,
            &mut rng,
        );
        let mut last = first;
        for _ in 0..10 {
            last = mutual_train_epoch(
                &mut student,
                &mut teacher,
                &s_train,
                &t_train,
                &cfg,
                &mut opt_s,
                &mut opt_t,
                &mut rng,
            );
        }
        assert!(last.student_loss < first.student_loss);
        assert!(last.teacher_loss < first.teacher_loss);
    }

    #[test]
    #[should_panic(expected = "must pair the same samples")]
    fn rejects_mismatched_datasets() {
        let (s, _) = paired_datasets(10, 1);
        let (_, t) = paired_datasets(12, 1);
        let mut student = small_net(2, 1);
        let mut teacher = small_net(4, 2);
        let cfg = MutualConfig::default();
        let mut o1 = Sgd::new(0.1);
        let mut o2 = Sgd::new(0.1);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = mutual_train_epoch(
            &mut student,
            &mut teacher,
            &s,
            &t,
            &cfg,
            &mut o1,
            &mut o2,
            &mut rng,
        );
    }
}
