//! Output heads: the software twins of the optical decoders (Fig. 6).
//!
//! A head converts the last layer's complex activations into real class
//! logits, exactly the way the corresponding optical detection scheme
//! would:
//!
//! | Head | Optical scheme | Detection model |
//! |---|---|---|
//! | [`MergeHead`] | learnable merging decoder (proposed) | differential photodiodes on a doubled last layer |
//! | [`LinearDecoderHead`] | learnable linear decoder | extra `2K×K` complex layer + differential photodiodes |
//! | [`UnitaryDecoderHead`] | learnable unitary decoder | extra `2K×2K` unitary MZI array + differential photodiodes |
//! | [`ReHead`] | coherent detection (\[16\]) | reference interference recovers `Re(z)` exactly |
//! | [`ModulusHead`] | conventional ONN photodiodes | amplitude `|z|` (diode intensity + electronic √), phase discarded |

use crate::ctensor::CTensor;
use crate::layers::{CDense, CLayer};
use crate::param::ParamVisitor;
use crate::tensor::Tensor;
use oplix_linalg::svd::nearest_unitary;
use oplix_linalg::{CMatrix, Complex64};
use rand::Rng;

/// Converts complex network outputs into real logits, with a backward pass.
pub trait Head {
    /// Forward pass to real logits `[batch, classes]`.
    fn forward(&mut self, x: &CTensor, train: bool) -> Tensor;

    /// Backward pass: gradient of the loss with respect to the head input.
    fn backward(&mut self, dlogits: &Tensor) -> CTensor;

    /// Visits trainable parameters (most heads have none).
    fn visit_params(&mut self, visitor: &mut ParamVisitor) {
        let _ = visitor;
    }

    /// Hook run after each optimiser step (the unitary decoder re-projects
    /// its weight here).
    fn post_step(&mut self) {}

    /// Downcast hook for heads that carry deployable parameters (the
    /// linear and unitary decoders); parameter-free heads return `None`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

// ---------------------------------------------------------------------------

/// Takes the real part of each complex output as the logit.
///
/// This is the software model of **coherent detection** (the reference-beam
/// scheme recovers `Re` and `Im` exactly; post-processing selects the real
/// part) and also the natural head for RVNN (whose outputs are real
/// anyway).
#[derive(Debug, Default)]
pub struct ReHead;

impl ReHead {
    /// Creates the head.
    pub fn new() -> Self {
        ReHead
    }
}

impl Head for ReHead {
    fn forward(&mut self, x: &CTensor, _train: bool) -> Tensor {
        x.re.clone()
    }

    fn backward(&mut self, dlogits: &Tensor) -> CTensor {
        CTensor::new(dlogits.clone(), Tensor::zeros(dlogits.shape()))
    }
}

// ---------------------------------------------------------------------------

/// Photodiode amplitude head: `logit = |z| = √(re² + im²)`.
///
/// The conventional ONN output (Fig. 1c): "photodiodes are used as the
/// decoders to detect the amplitudes of output light signals" — the diode
/// physically measures intensity `|z|²` and the (monotone) square root is
/// a trivial electronic post-map that leaves the argmax unchanged while
/// giving far better-conditioned training gradients (`∂|z|/∂re = re/|z|`
/// is bounded by 1).
#[derive(Debug, Default)]
pub struct ModulusHead {
    cache: Option<CTensor>,
}

impl ModulusHead {
    /// Creates the head.
    pub fn new() -> Self {
        ModulusHead::default()
    }
}

const MODULUS_EPS: f32 = 1e-8;

impl Head for ModulusHead {
    fn forward(&mut self, x: &CTensor, train: bool) -> Tensor {
        if train {
            self.cache = Some(x.clone());
        }
        x.norm_sqr().map(|v| v.sqrt())
    }

    fn backward(&mut self, dlogits: &Tensor) -> CTensor {
        let x = self
            .cache
            .take()
            .expect("backward called before forward(train=true)");
        // d|z|/d re = re/|z|, d|z|/d im = im/|z| (0 at the origin).
        let inv = x.norm_sqr().map(|v| 1.0 / (v.sqrt() + MODULUS_EPS));
        CTensor::new(dlogits.mul(&x.re).mul(&inv), dlogits.mul(&x.im).mul(&inv))
    }
}

// ---------------------------------------------------------------------------

/// Differential photodiode readout over a doubled output width: for `2K`
/// complex inputs, `logit_k = |z_k|² − |z_{k+K}|²`.
///
/// Shared by all three learnable decoders; for the merging decoder the
/// doubling lives in the network's last layer, so this head is used bare.
#[derive(Debug, Default)]
pub struct MergeHead {
    cache: Option<CTensor>,
}

impl MergeHead {
    /// Creates the head.
    pub fn new() -> Self {
        MergeHead::default()
    }

    fn diff_forward(x: &CTensor) -> Tensor {
        let (b, n) = (x.shape()[0], x.shape()[1]);
        assert!(n % 2 == 0, "differential head needs even input width");
        let k = n / 2;
        let mut out = Tensor::zeros(&[b, k]);
        for i in 0..b {
            for j in 0..k {
                let pos = x.re.at2(i, j).powi(2) + x.im.at2(i, j).powi(2);
                let neg = x.re.at2(i, j + k).powi(2) + x.im.at2(i, j + k).powi(2);
                out.as_mut_slice()[i * k + j] = pos - neg;
            }
        }
        out
    }

    fn diff_backward(x: &CTensor, dlogits: &Tensor) -> CTensor {
        let (b, n) = (x.shape()[0], x.shape()[1]);
        let k = n / 2;
        let mut dre = Tensor::zeros(&[b, n]);
        let mut dim = Tensor::zeros(&[b, n]);
        for i in 0..b {
            for j in 0..k {
                let g = dlogits.at2(i, j);
                dre.as_mut_slice()[i * n + j] = 2.0 * g * x.re.at2(i, j);
                dim.as_mut_slice()[i * n + j] = 2.0 * g * x.im.at2(i, j);
                dre.as_mut_slice()[i * n + j + k] = -2.0 * g * x.re.at2(i, j + k);
                dim.as_mut_slice()[i * n + j + k] = -2.0 * g * x.im.at2(i, j + k);
            }
        }
        CTensor::new(dre, dim)
    }
}

impl Head for MergeHead {
    fn forward(&mut self, x: &CTensor, train: bool) -> Tensor {
        if train {
            self.cache = Some(x.clone());
        }
        Self::diff_forward(x)
    }

    fn backward(&mut self, dlogits: &Tensor) -> CTensor {
        let x = self
            .cache
            .take()
            .expect("backward called before forward(train=true)");
        Self::diff_backward(&x, dlogits)
    }
}

// ---------------------------------------------------------------------------

/// Learnable linear decoder (Fig. 6b): an extra `2K×K` complex dense layer
/// followed by differential photodiodes.
#[derive(Debug)]
pub struct LinearDecoderHead {
    dense: CDense,
    diff: MergeHead,
}

impl LinearDecoderHead {
    /// Creates the decoder for `k` classes on a `k`-wide last layer.
    pub fn new<R: Rng>(k: usize, rng: &mut R) -> Self {
        LinearDecoderHead {
            dense: CDense::new(k, 2 * k, rng),
            diff: MergeHead::new(),
        }
    }

    /// The trained `K → 2K` decoder layer, for photonic deployment.
    pub fn dense(&self) -> &CDense {
        &self.dense
    }
}

impl Head for LinearDecoderHead {
    fn forward(&mut self, x: &CTensor, train: bool) -> Tensor {
        let z = self.dense.forward(x, train);
        self.diff.forward(&z, train)
    }

    fn backward(&mut self, dlogits: &Tensor) -> CTensor {
        let dz = self.diff.backward(dlogits);
        self.dense.backward(&dz)
    }

    fn visit_params(&mut self, visitor: &mut ParamVisitor) {
        self.dense.visit_params(visitor);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

// ---------------------------------------------------------------------------

/// Learnable unitary decoder (Fig. 6b): the `K` outputs plus `K` zero
/// ancilla modes pass through a `2K×2K` complex layer that is re-projected
/// to the nearest unitary after every optimiser step, so it remains
/// implementable as a pure MZI array (no attenuators), then differential
/// photodiodes.
#[derive(Debug)]
pub struct UnitaryDecoderHead {
    k: usize,
    dense: CDense,
    diff: MergeHead,
}

impl UnitaryDecoderHead {
    /// Creates the decoder for `k` classes.
    pub fn new<R: Rng>(k: usize, rng: &mut R) -> Self {
        let mut head = UnitaryDecoderHead {
            k,
            dense: CDense::new(2 * k, 2 * k, rng),
            diff: MergeHead::new(),
        };
        // Start exactly unitary.
        head.project_unitary();
        head
    }

    fn pad(&self, x: &CTensor) -> CTensor {
        let (b, k) = (x.shape()[0], x.shape()[1]);
        assert_eq!(k, self.k, "unitary decoder input width mismatch");
        let mut re = Tensor::zeros(&[b, 2 * k]);
        let mut im = Tensor::zeros(&[b, 2 * k]);
        for i in 0..b {
            for j in 0..k {
                re.as_mut_slice()[i * 2 * k + j] = x.re.at2(i, j);
                im.as_mut_slice()[i * 2 * k + j] = x.im.at2(i, j);
            }
        }
        CTensor::new(re, im)
    }

    fn unpad(&self, d: &CTensor) -> CTensor {
        let (b, n) = (d.shape()[0], d.shape()[1]);
        let k = n / 2;
        let mut re = Tensor::zeros(&[b, k]);
        let mut im = Tensor::zeros(&[b, k]);
        for i in 0..b {
            for j in 0..k {
                re.as_mut_slice()[i * k + j] = d.re.at2(i, j);
                im.as_mut_slice()[i * k + j] = d.im.at2(i, j);
            }
        }
        CTensor::new(re, im)
    }

    /// Projects the decoder weight onto the nearest unitary (polar
    /// decomposition), keeping it MZI-array-implementable.
    pub fn project_unitary(&mut self) {
        let n = 2 * self.k;
        let (w_re, w_im) = self.dense.weight_mut();
        let m = CMatrix::from_fn(n, n, |i, j| {
            Complex64::new(w_re.at2(i, j) as f64, w_im.at2(i, j) as f64)
        });
        let u = nearest_unitary(&m);
        for i in 0..n {
            for j in 0..n {
                w_re.as_mut_slice()[i * n + j] = u[(i, j)].re as f32;
                w_im.as_mut_slice()[i * n + j] = u[(i, j)].im as f32;
            }
        }
    }

    /// The trained `2K → 2K` decoder layer (ancilla-padded input), for
    /// photonic deployment.
    pub fn dense(&self) -> &CDense {
        &self.dense
    }

    /// Number of classes `K` (the decoder acts on `2K` modes).
    pub fn classes(&self) -> usize {
        self.k
    }

    /// Whether the current weight is unitary to within `tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        let n = 2 * self.k;
        let (w_re, w_im) = self.dense.weight();
        let m = CMatrix::from_fn(n, n, |i, j| {
            Complex64::new(w_re.at2(i, j) as f64, w_im.at2(i, j) as f64)
        });
        m.is_unitary(tol)
    }
}

impl Head for UnitaryDecoderHead {
    fn forward(&mut self, x: &CTensor, train: bool) -> Tensor {
        let padded = self.pad(x);
        let z = self.dense.forward(&padded, train);
        self.diff.forward(&z, train)
    }

    fn backward(&mut self, dlogits: &Tensor) -> CTensor {
        let dz = self.diff.backward(dlogits);
        let dpad = self.dense.backward(&dz);
        self.unpad(&dpad)
    }

    fn visit_params(&mut self, visitor: &mut ParamVisitor) {
        self.dense.visit_params(visitor);
    }

    fn post_step(&mut self) {
        self.project_unitary();
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(b: usize, n: usize, seed: u64) -> CTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        CTensor::new(
            Tensor::random_uniform(&[b, n], 1.0, &mut rng),
            Tensor::random_uniform(&[b, n], 1.0, &mut rng),
        )
    }

    #[test]
    fn re_head_passes_real_part() {
        let mut h = ReHead::new();
        let x = sample(2, 3, 1);
        let y = h.forward(&x, true);
        assert_eq!(y, x.re);
        let dx = h.backward(&Tensor::full(&[2, 3], 1.0));
        assert_eq!(dx.im.max_abs(), 0.0);
    }

    #[test]
    fn modulus_head_value_and_grad() {
        let mut h = ModulusHead::new();
        let x = CTensor::new(
            Tensor::from_vec(&[1, 1], vec![3.0]),
            Tensor::from_vec(&[1, 1], vec![4.0]),
        );
        let y = h.forward(&x, true);
        assert_eq!(y.as_slice(), &[5.0]);
        let dx = h.backward(&Tensor::from_vec(&[1, 1], vec![1.0]));
        // d|z|/dre = 3/5, d|z|/dim = 4/5.
        assert!((dx.re.as_slice()[0] - 0.6).abs() < 1e-6);
        assert!((dx.im.as_slice()[0] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn merge_head_differential_logits() {
        let mut h = MergeHead::new();
        let x = CTensor::new(
            Tensor::from_vec(&[1, 4], vec![2.0, 0.0, 1.0, 0.0]),
            Tensor::from_vec(&[1, 4], vec![0.0, 1.0, 0.0, 0.0]),
        );
        let y = h.forward(&x, true);
        assert_eq!(y.as_slice(), &[4.0 - 1.0, 1.0]);
        let dx = h.backward(&Tensor::from_vec(&[1, 2], vec![1.0, 1.0]));
        // Positive diode: +2*re; negative diode: -2*re.
        assert_eq!(dx.re.as_slice(), &[4.0, 0.0, -2.0, 0.0]);
        assert_eq!(dx.im.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn merge_head_grad_matches_finite_difference() {
        let x = sample(2, 6, 2);
        let mut h = MergeHead::new();
        let _ = h.forward(&x, true);
        let dl = Tensor::full(&[2, 3], 1.0);
        let dx = h.backward(&dl);
        let loss = |x: &CTensor| {
            let mut h = MergeHead::new();
            h.forward(x, false).sum()
        };
        let eps = 1e-3f32;
        for idx in [0usize, 5, 11] {
            let mut xp = x.clone();
            xp.re.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.re.as_mut_slice()[idx] -= eps;
            let fd = ((loss(&xp) - loss(&xm)) / (2.0 * eps as f64)) as f32;
            assert!((dx.re.as_slice()[idx] - fd).abs() < 1e-2);
        }
    }

    #[test]
    fn linear_decoder_shapes_and_params() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut h = LinearDecoderHead::new(5, &mut rng);
        let x = sample(3, 5, 4);
        let y = h.forward(&x, true);
        assert_eq!(y.shape(), &[3, 5]);
        let dx = h.backward(&Tensor::full(&[3, 5], 1.0));
        assert_eq!(dx.shape(), &[3, 5]);
        let mut count = 0;
        h.visit_params(&mut |_| count += 1);
        assert_eq!(count, 4);
    }

    #[test]
    fn unitary_decoder_stays_unitary() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut h = UnitaryDecoderHead::new(4, &mut rng);
        assert!(h.is_unitary(1e-5));
        // Perturb the weight as an optimiser step would, then re-project.
        {
            let (w_re, _) = h.dense.weight_mut();
            w_re.as_mut_slice()[0] += 0.3;
        }
        assert!(!h.is_unitary(1e-5));
        h.post_step();
        assert!(h.is_unitary(1e-5));
    }

    #[test]
    fn unitary_decoder_preserves_energy_of_padded_input() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut h = UnitaryDecoderHead::new(3, &mut rng);
        let x = sample(1, 3, 7);
        let padded = h.pad(&x);
        let z = h.dense.forward(&padded, false);
        let ein: f64 = padded.norm_sqr().sum();
        let eout: f64 = z.norm_sqr().sum();
        assert!((ein - eout).abs() / ein < 1e-4, "in {ein} out {eout}");
    }

    #[test]
    fn unitary_decoder_round_trip_shapes() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut h = UnitaryDecoderHead::new(4, &mut rng);
        let x = sample(2, 4, 9);
        let y = h.forward(&x, true);
        assert_eq!(y.shape(), &[2, 4]);
        let dx = h.backward(&Tensor::full(&[2, 4], 1.0));
        assert_eq!(dx.shape(), &[2, 4]);
    }
}
