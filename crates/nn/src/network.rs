//! A complete trainable network: complex body + detection head.

use crate::ctensor::CTensor;
use crate::head::Head;
use crate::layers::{CLayer, CSequential};
use crate::param::ParamVisitor;
use crate::tensor::Tensor;

/// A complex-bodied classifier producing real logits.
///
/// All four of the paper's network families (Table I) are instances:
/// the body determines SCVNN/CVNN/RVNN behaviour (layer construction and
/// input view), the head models the optical detection scheme.
pub struct Network {
    body: CSequential,
    head: Box<dyn Head>,
}

impl Network {
    /// Assembles a network.
    pub fn new(body: CSequential, head: Box<dyn Head>) -> Self {
        Network { body, head }
    }

    /// Forward pass to logits.
    pub fn forward(&mut self, x: &CTensor, train: bool) -> Tensor {
        let z = self.body.forward(x, train);
        self.head.forward(&z, train)
    }

    /// Backward pass from a logit gradient; accumulates parameter
    /// gradients and returns the gradient with respect to the input.
    pub fn backward(&mut self, dlogits: &Tensor) -> CTensor {
        let dz = self.head.backward(dlogits);
        self.body.backward(&dz)
    }

    /// Visits every trainable parameter (body first, head last) in a
    /// stable order.
    pub fn visit_params(&mut self, visitor: &mut ParamVisitor) {
        self.body.visit_params(visitor);
        self.head.visit_params(visitor);
    }

    /// Zeroes all gradients.
    pub fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Post-optimiser hook (unitary re-projection etc.).
    pub fn post_step(&mut self) {
        self.head.post_step();
    }

    /// Total number of scalar parameters currently registered.
    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.numel());
        n
    }

    /// Immutable access to the body (for hardware deployment).
    pub fn body(&self) -> &CSequential {
        &self.body
    }

    /// Immutable access to the head (for hardware deployment of
    /// decoder-bearing heads).
    pub fn head(&self) -> &dyn Head {
        self.head.as_ref()
    }

    /// Mutable access to the body.
    pub fn body_mut(&mut self) -> &mut CSequential {
        &mut self.body
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Network({:?})", self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::head::{MergeHead, ReHead};
    use crate::layers::{CDense, CRelu};
    use crate::loss::cross_entropy;
    use crate::optim::Sgd;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_backward_step_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(1);
        let body = CSequential::new()
            .push(CDense::new(4, 8, &mut rng))
            .push(CRelu::new())
            .push(CDense::new(8, 4, &mut rng)); // 2 classes, doubled for merge
        let mut net = Network::new(body, Box::new(MergeHead::new()));

        // A tiny separable problem.
        let x = CTensor::new(
            Tensor::from_vec(
                &[4, 4],
                vec![
                    1.0, 0.0, 1.0, 0.0, 0.9, 0.1, 1.1, 0.0, 0.0, 1.0, 0.0, 1.0, 0.1, 0.9, 0.0, 1.1,
                ],
            ),
            Tensor::zeros(&[4, 4]),
        );
        let labels = [0usize, 0, 1, 1];
        let mut opt = Sgd::with_momentum(0.05, 0.9, 0.0);

        let logits0 = net.forward(&x, true);
        let (loss0, _) = cross_entropy(&logits0, &labels);
        for _ in 0..50 {
            let logits = net.forward(&x, true);
            let (_, grad) = cross_entropy(&logits, &labels);
            net.backward(&grad);
            opt.step(&mut |f| net.visit_params(f));
            net.post_step();
        }
        let logits1 = net.forward(&x, false);
        let (loss1, _) = cross_entropy(&logits1, &labels);
        assert!(
            loss1 < loss0 * 0.5,
            "training failed to reduce loss: {loss0} -> {loss1}"
        );
    }

    #[test]
    fn num_params_counts_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let body = CSequential::new().push(CDense::new(3, 2, &mut rng));
        let mut net = Network::new(body, Box::new(ReHead::new()));
        // w_re + w_im (3*2 each) + b_re + b_im (2 each).
        assert_eq!(net.num_params(), 6 + 6 + 2 + 2);
    }

    #[test]
    fn zero_grads_clears_accumulation() {
        let mut rng = StdRng::seed_from_u64(3);
        let body = CSequential::new().push(CDense::new(2, 2, &mut rng));
        let mut net = Network::new(body, Box::new(ReHead::new()));
        let x = CTensor::from_re(Tensor::full(&[1, 2], 1.0));
        let y = net.forward(&x, true);
        let (_, g) = cross_entropy(&y, &[0]);
        net.backward(&g);
        let mut total = 0.0f32;
        net.visit_params(&mut |p| total += p.grad.max_abs());
        assert!(total > 0.0);
        net.zero_grads();
        let mut total = 0.0f32;
        net.visit_params(&mut |p| total += p.grad.max_abs());
        assert_eq!(total, 0.0);
    }
}
