//! Functional building blocks shared by the real and complex layers.
//!
//! Every complex layer in this crate is assembled from these *real*
//! primitives via the split-complex identities
//! `y_re = f(x_re, w_re) − f(x_im, w_im)` and
//! `y_im = f(x_re, w_im) + f(x_im, w_re)` for any bilinear `f` (dense
//! product, convolution). Keeping the primitives functional (stateless,
//! explicit arguments) makes the hand-derived backward passes easy to
//! verify against finite differences.

use crate::tensor::Tensor;

// ---------------------------------------------------------------------------
// Dense (fully connected) primitive
// ---------------------------------------------------------------------------

/// Dense forward: `y = x · wᵀ` with `x: [B, n_in]`, `w: [n_out, n_in]`,
/// producing `[B, n_out]`.
///
/// Runs through the transpose-free [`Tensor::matmul_nt`] kernel: the
/// weight is consumed in its stored `[out, in]` layout, so no per-step
/// transposed copy is materialised.
///
/// # Panics
///
/// Panics on rank or dimension mismatch.
pub fn dense_forward(x: &Tensor, w: &Tensor) -> Tensor {
    assert_eq!(x.shape().len(), 2, "dense input must be [batch, features]");
    assert_eq!(w.shape().len(), 2, "dense weight must be [out, in]");
    assert_eq!(x.shape()[1], w.shape()[1], "dense fan-in mismatch");
    x.matmul_nt(w)
}

/// Gradient of the dense product with respect to the input:
/// `dx = dy · w`.
pub fn dense_backward_input(dy: &Tensor, w: &Tensor) -> Tensor {
    dy.matmul(w)
}

/// Gradient of the dense product with respect to the weight:
/// `dw = dyᵀ · x`, through the transpose-free [`Tensor::matmul_tn`]
/// kernel (no transposed copy of `dy` per step).
pub fn dense_backward_weight(dy: &Tensor, x: &Tensor) -> Tensor {
    dy.matmul_tn(x)
}

// ---------------------------------------------------------------------------
// 2-D convolution primitive (NCHW, square stride/padding)
// ---------------------------------------------------------------------------

/// Output spatial size of a convolution: `(in + 2·pad − k) / stride + 1`.
///
/// # Panics
///
/// Panics if the geometry is inconsistent (kernel larger than padded input
/// or non-exact stride fit is allowed — flooring like common frameworks).
pub fn conv_out_size(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    assert!(
        input + 2 * pad >= kernel,
        "kernel {kernel} larger than padded input {}",
        input + 2 * pad
    );
    (input + 2 * pad - kernel) / stride + 1
}

/// Convolution forward. `x: [N, C, H, W]`, `w: [O, C, kh, kw]` →
/// `[N, O, H', W']`.
///
/// # Panics
///
/// Panics on rank or channel mismatch.
pub fn conv2d_forward(x: &Tensor, w: &Tensor, stride: usize, pad: usize) -> Tensor {
    assert_eq!(x.shape().len(), 4, "conv input must be [N, C, H, W]");
    assert_eq!(w.shape().len(), 4, "conv weight must be [O, C, kh, kw]");
    let (n, c, h, wdt) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (o, c2, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
    assert_eq!(c, c2, "conv channel mismatch");
    let ho = conv_out_size(h, kh, stride, pad);
    let wo = conv_out_size(wdt, kw, stride, pad);
    let mut y = Tensor::zeros(&[n, o, ho, wo]);

    let xs = x.as_slice();
    let ws = w.as_slice();
    let ys = y.as_mut_slice();
    for b in 0..n {
        for oc in 0..o {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = 0.0f32;
                    for ic in 0..c {
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let x_base = ((b * c + ic) * h + iy as usize) * wdt;
                            let w_base = ((oc * c + ic) * kh + ky) * kw;
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= wdt as isize {
                                    continue;
                                }
                                acc += xs[x_base + ix as usize] * ws[w_base + kx];
                            }
                        }
                    }
                    ys[((b * o + oc) * ho + oy) * wo + ox] = acc;
                }
            }
        }
    }
    y
}

/// Gradient of [`conv2d_forward`] with respect to the input.
pub fn conv2d_backward_input(
    dy: &Tensor,
    w: &Tensor,
    x_shape: &[usize],
    stride: usize,
    pad: usize,
) -> Tensor {
    let (n, c, h, wdt) = (x_shape[0], x_shape[1], x_shape[2], x_shape[3]);
    let (o, _, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
    let (ho, wo) = (dy.shape()[2], dy.shape()[3]);
    let mut dx = Tensor::zeros(x_shape);

    let dys = dy.as_slice();
    let ws = w.as_slice();
    let dxs = dx.as_mut_slice();
    for b in 0..n {
        for oc in 0..o {
            for oy in 0..ho {
                for ox in 0..wo {
                    let g = dys[((b * o + oc) * ho + oy) * wo + ox];
                    if g == 0.0 {
                        continue;
                    }
                    for ic in 0..c {
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let x_base = ((b * c + ic) * h + iy as usize) * wdt;
                            let w_base = ((oc * c + ic) * kh + ky) * kw;
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= wdt as isize {
                                    continue;
                                }
                                dxs[x_base + ix as usize] += g * ws[w_base + kx];
                            }
                        }
                    }
                }
            }
        }
    }
    dx
}

/// Gradient of [`conv2d_forward`] with respect to the weight.
pub fn conv2d_backward_weight(
    dy: &Tensor,
    x: &Tensor,
    w_shape: &[usize],
    stride: usize,
    pad: usize,
) -> Tensor {
    let (n, c, h, wdt) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (o, _, kh, kw) = (w_shape[0], w_shape[1], w_shape[2], w_shape[3]);
    let (ho, wo) = (dy.shape()[2], dy.shape()[3]);
    let mut dw = Tensor::zeros(w_shape);

    let dys = dy.as_slice();
    let xs = x.as_slice();
    let dws = dw.as_mut_slice();
    for b in 0..n {
        for oc in 0..o {
            for oy in 0..ho {
                for ox in 0..wo {
                    let g = dys[((b * o + oc) * ho + oy) * wo + ox];
                    if g == 0.0 {
                        continue;
                    }
                    for ic in 0..c {
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let x_base = ((b * c + ic) * h + iy as usize) * wdt;
                            let w_base = ((oc * c + ic) * kh + ky) * kw;
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix >= wdt as isize {
                                    continue;
                                }
                                dws[w_base + kx] += g * xs[x_base + ix as usize];
                            }
                        }
                    }
                }
            }
        }
    }
    dw
}

// ---------------------------------------------------------------------------
// im2col view of the convolution
// ---------------------------------------------------------------------------

/// The index gather of the im2col view: for every output position
/// `p = oy·W' + ox` and patch slot `q = (ic·kh + ky)·kw + kx`, entry
/// `p·(C·kh·kw) + q` is the flat `[C, H, W]` input index the slot reads,
/// or `-1` when the slot falls in the zero padding.
///
/// This is the *single source of truth* for the patch geometry: the
/// software [`conv2d_forward_im2col`] and the photonic deployment's
/// gather stages both consume it, so proving the software identity
/// (im2col forward ≡ direct forward) carries over to the hardware
/// lowering's patch extraction.
///
/// Returns `(indices, (H', W'))`.
///
/// # Panics
///
/// Panics if the geometry is inconsistent (see [`conv_out_size`]).
pub fn im2col_indices(
    c: usize,
    h: usize,
    w: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
) -> (Vec<i64>, (usize, usize)) {
    let ho = conv_out_size(h, kernel, stride, pad);
    let wo = conv_out_size(w, kernel, stride, pad);
    let patch = c * kernel * kernel;
    let mut indices = Vec::with_capacity(ho * wo * patch);
    for oy in 0..ho {
        for ox in 0..wo {
            for ic in 0..c {
                for ky in 0..kernel {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    for kx in 0..kernel {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        let in_bounds = iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize;
                        indices.push(if in_bounds {
                            ((ic * h + iy as usize) * w + ix as usize) as i64
                        } else {
                            -1
                        });
                    }
                }
            }
        }
    }
    (indices, (ho, wo))
}

/// Convolution forward through the im2col view: every output position's
/// patch is gathered with [`im2col_indices`] (padding slots read zero) and
/// dotted with the kernel's matching `[C·kh·kw]` row.
///
/// Element-wise equal to [`conv2d_forward`]: both accumulate the products
/// of one output value in the identical `(ic, ky, kx)` order — the im2col
/// walk merely interleaves exact zero products where the direct walk skips
/// padded taps.
///
/// # Panics
///
/// Panics on rank or channel mismatch.
pub fn conv2d_forward_im2col(x: &Tensor, w: &Tensor, stride: usize, pad: usize) -> Tensor {
    assert_eq!(x.shape().len(), 4, "conv input must be [N, C, H, W]");
    assert_eq!(w.shape().len(), 4, "conv weight must be [O, C, kh, kw]");
    let (n, c, h, wdt) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (o, c2, kh, kw) = (w.shape()[0], w.shape()[1], w.shape()[2], w.shape()[3]);
    assert_eq!(c, c2, "conv channel mismatch");
    assert_eq!(kh, kw, "im2col view assumes square kernels");
    let (indices, (ho, wo)) = im2col_indices(c, h, wdt, kh, stride, pad);
    let patch = c * kh * kw;
    let positions = ho * wo;
    let mut y = Tensor::zeros(&[n, o, ho, wo]);

    let xs = x.as_slice();
    let ws = w.as_slice();
    let ys = y.as_mut_slice();
    let mut row = vec![0.0f32; patch];
    for b in 0..n {
        let sample = &xs[b * c * h * wdt..(b + 1) * c * h * wdt];
        for p in 0..positions {
            for (slot, &ix) in indices[p * patch..(p + 1) * patch].iter().enumerate() {
                row[slot] = if ix >= 0 { sample[ix as usize] } else { 0.0 };
            }
            for oc in 0..o {
                let kernel_row = &ws[oc * patch..(oc + 1) * patch];
                let mut acc = 0.0f32;
                for q in 0..patch {
                    acc += row[q] * kernel_row[q];
                }
                ys[(b * o + oc) * positions + p] = acc;
            }
        }
    }
    y
}

// ---------------------------------------------------------------------------
// Average pooling
// ---------------------------------------------------------------------------

/// Average pooling with a square window and stride equal to the window.
/// `x: [N, C, H, W]` → `[N, C, H/k, W/k]`.
///
/// # Panics
///
/// Panics if the spatial dimensions are not divisible by `k`.
pub fn avg_pool2d_forward(x: &Tensor, k: usize) -> Tensor {
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    assert!(
        h % k == 0 && w % k == 0,
        "pooling window must divide the input"
    );
    let (ho, wo) = (h / k, w / k);
    let mut y = Tensor::zeros(&[n, c, ho, wo]);
    let inv = 1.0 / (k * k) as f32;
    let mut y_w = y.writer4();
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..ho {
                for ox in 0..wo {
                    let mut acc = 0.0;
                    for dy in 0..k {
                        for dx in 0..k {
                            acc += x.at4(b, ch, oy * k + dy, ox * k + dx);
                        }
                    }
                    *y_w.at4_mut(b, ch, oy, ox) = acc * inv;
                }
            }
        }
    }
    y
}

/// Gradient of [`avg_pool2d_forward`].
pub fn avg_pool2d_backward(dy: &Tensor, x_shape: &[usize], k: usize) -> Tensor {
    let (n, c) = (x_shape[0], x_shape[1]);
    let (ho, wo) = (dy.shape()[2], dy.shape()[3]);
    let mut dx = Tensor::zeros(x_shape);
    let inv = 1.0 / (k * k) as f32;
    let mut dx_w = dx.writer4();
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..ho {
                for ox in 0..wo {
                    let g = dy.at4(b, ch, oy, ox) * inv;
                    for ddy in 0..k {
                        for ddx in 0..k {
                            *dx_w.at4_mut(b, ch, oy * k + ddy, ox * k + ddx) += g;
                        }
                    }
                }
            }
        }
    }
    dx
}

// ---------------------------------------------------------------------------
// Softmax
// ---------------------------------------------------------------------------

/// Row-wise softmax of `[B, K]` logits (numerically stabilised).
pub fn softmax(logits: &Tensor) -> Tensor {
    assert_eq!(logits.shape().len(), 2, "softmax expects [batch, classes]");
    let (b, k) = (logits.shape()[0], logits.shape()[1]);
    let mut out = Tensor::zeros(&[b, k]);
    let out_s = out.as_mut_slice();
    for i in 0..b {
        let row = &logits.as_slice()[i * k..(i + 1) * k];
        let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - m).exp()).collect();
        let s: f32 = exps.iter().sum();
        for j in 0..k {
            out_s[i * k + j] = exps[j] / s;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Central finite difference of a scalar function of one tensor entry.
    fn finite_diff<F: Fn(&Tensor) -> f64>(f: F, x: &Tensor, idx: usize) -> f32 {
        let eps = 1e-3f32;
        let mut xp = x.clone();
        xp.as_mut_slice()[idx] += eps;
        let mut xm = x.clone();
        xm.as_mut_slice()[idx] -= eps;
        ((f(&xp) - f(&xm)) / (2.0 * eps as f64)) as f32
    }

    #[test]
    fn dense_forward_shape_and_value() {
        let x = Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]);
        let w = Tensor::from_vec(&[2, 3], vec![1.0, 0.0, 0.0, 0.0, 1.0, 1.0]);
        let y = dense_forward(&x, &w);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.as_slice(), &[1.0, 5.0]);
    }

    #[test]
    fn dense_backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::random_uniform(&[2, 4], 1.0, &mut rng);
        let w = Tensor::random_uniform(&[3, 4], 1.0, &mut rng);
        // Scalar objective: sum of outputs.
        let loss_x = |x: &Tensor| dense_forward(x, &w).sum();
        let loss_w = |w: &Tensor| dense_forward(&x, w).sum();
        let dy = Tensor::full(&[2, 3], 1.0);
        let dx = dense_backward_input(&dy, &w);
        let dw = dense_backward_weight(&dy, &x);
        for idx in [0usize, 3, 7] {
            assert!((dx.as_slice()[idx] - finite_diff(loss_x, &x, idx)).abs() < 1e-2);
            assert!((dw.as_slice()[idx] - finite_diff(loss_w, &w, idx)).abs() < 1e-2);
        }
    }

    #[test]
    fn conv_out_size_cases() {
        assert_eq!(conv_out_size(8, 3, 1, 1), 8); // same padding
        assert_eq!(conv_out_size(8, 3, 2, 1), 4);
        assert_eq!(conv_out_size(5, 5, 1, 0), 1);
    }

    #[test]
    fn conv_identity_kernel_passes_through() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::random_uniform(&[1, 1, 4, 4], 1.0, &mut rng);
        let mut w = Tensor::zeros(&[1, 1, 3, 3]);
        w.as_mut_slice()[4] = 1.0; // centre tap
        let y = conv2d_forward(&x, &w, 1, 1);
        assert_eq!(y.shape(), x.shape());
        for (a, b) in y.as_slice().iter().zip(x.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn conv_known_small_case() {
        // 2x2 input, 2x2 kernel, no padding -> dot product.
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let w = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 1.0, 1.0, 1.0]);
        let y = conv2d_forward(&x, &w, 1, 0);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.as_slice()[0], 10.0);
    }

    #[test]
    fn conv_backward_input_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::random_uniform(&[1, 2, 4, 4], 1.0, &mut rng);
        let w = Tensor::random_uniform(&[2, 2, 3, 3], 1.0, &mut rng);
        let loss = |x: &Tensor| conv2d_forward(x, &w, 1, 1).sum();
        let dy = Tensor::full(&[1, 2, 4, 4], 1.0);
        let dx = conv2d_backward_input(&dy, &w, x.shape(), 1, 1);
        for idx in [0usize, 5, 17, 31] {
            let fd = finite_diff(loss, &x, idx);
            assert!(
                (dx.as_slice()[idx] - fd).abs() < 2e-2,
                "idx {idx}: analytic {} vs fd {fd}",
                dx.as_slice()[idx]
            );
        }
    }

    #[test]
    fn conv_backward_weight_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = Tensor::random_uniform(&[2, 1, 4, 4], 1.0, &mut rng);
        let w = Tensor::random_uniform(&[1, 1, 3, 3], 1.0, &mut rng);
        let loss = |w: &Tensor| conv2d_forward(&x, w, 2, 1).sum();
        let y = conv2d_forward(&x, &w, 2, 1);
        let dy = Tensor::full(y.shape(), 1.0);
        let dw = conv2d_backward_weight(&dy, &x, w.shape(), 2, 1);
        for idx in 0..9 {
            let fd = finite_diff(loss, &w, idx);
            assert!(
                (dw.as_slice()[idx] - fd).abs() < 2e-2,
                "idx {idx}: analytic {} vs fd {fd}",
                dw.as_slice()[idx]
            );
        }
    }

    #[test]
    fn avg_pool_forward_and_backward() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 3.0, 5.0, 7.0]);
        let y = avg_pool2d_forward(&x, 2);
        assert_eq!(y.as_slice(), &[4.0]);
        let dy = Tensor::from_vec(&[1, 1, 1, 1], vec![4.0]);
        let dx = avg_pool2d_backward(&dy, x.shape(), 2);
        assert_eq!(dx.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 100.0]);
        let p = softmax(&logits);
        for i in 0..2 {
            let s: f32 = p.as_slice()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Large logit dominates without overflow.
        assert!(p.at2(1, 2) > 0.999);
    }
}
