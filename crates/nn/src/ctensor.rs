//! Split-complex tensors: a pair of real tensors `(re, im)`.
//!
//! The paper's SCVNN (Eq. 2) trains complex layers in their *split*
//! representation — the real and imaginary parts are carried as two real
//! tensors and every complex operation is expressed through real arithmetic
//! on them. Gradients are taken with respect to `re` and `im`
//! independently, which is exactly what a complex-capable autodiff engine
//! would compute for the split-complex parameterisation.

use crate::tensor::Tensor;

/// A complex tensor stored as separate real and imaginary parts.
///
/// # Example
///
/// ```
/// use oplix_nn::ctensor::CTensor;
/// use oplix_nn::tensor::Tensor;
///
/// let z = CTensor::from_re(Tensor::full(&[2, 2], 1.0));
/// assert_eq!(z.shape(), &[2, 2]);
/// assert_eq!(z.im.sum(), 0.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CTensor {
    /// Real part.
    pub re: Tensor,
    /// Imaginary part.
    pub im: Tensor,
}

impl CTensor {
    /// Builds from parts.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn new(re: Tensor, im: Tensor) -> Self {
        assert_eq!(re.shape(), im.shape(), "re/im shape mismatch");
        CTensor { re, im }
    }

    /// A complex tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        CTensor {
            re: Tensor::zeros(shape),
            im: Tensor::zeros(shape),
        }
    }

    /// Lifts a real tensor to complex with zero imaginary part — the
    /// encoding a *CVNN* input uses (Table I: "only encoding the real parts
    /// of complex input values").
    pub fn from_re(re: Tensor) -> Self {
        let im = Tensor::zeros(re.shape());
        CTensor { re, im }
    }

    /// The common shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        self.re.shape()
    }

    /// Total number of complex elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.re.numel()
    }

    /// Element-wise squared modulus `re² + im²` — the photodiode readout.
    pub fn norm_sqr(&self) -> Tensor {
        let mut out = self.re.mul(&self.re);
        out.add_assign(&self.im.mul(&self.im));
        out
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, rhs: &CTensor) -> CTensor {
        CTensor {
            re: self.re.add(&rhs.re),
            im: self.im.add(&rhs.im),
        }
    }

    /// Element-wise in-place sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, rhs: &CTensor) {
        self.re.add_assign(&rhs.re);
        self.im.add_assign(&rhs.im);
    }

    /// Scales both parts by a real factor.
    pub fn scale(&self, k: f32) -> CTensor {
        CTensor {
            re: self.re.scale(k),
            im: self.im.scale(k),
        }
    }

    /// Reshapes both parts.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> CTensor {
        CTensor {
            re: self.re.reshape(shape),
            im: self.im.reshape(shape),
        }
    }

    /// Whether both parts share storage with `other` (i.e. one is an
    /// un-mutated clone of the other). Clones of complex views are
    /// reference bumps until a mutation detaches them — see
    /// [`Tensor::shares_storage`].
    pub fn shares_storage(&self, other: &CTensor) -> bool {
        self.re.shares_storage(&other.re) && self.im.shares_storage(&other.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_re_zeroes_imaginary() {
        let z = CTensor::from_re(Tensor::full(&[3], 2.0));
        assert_eq!(z.im.as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn new_checks_shapes() {
        let _ = CTensor::new(Tensor::zeros(&[2]), Tensor::zeros(&[3]));
    }

    #[test]
    fn norm_sqr_is_photodiode() {
        let z = CTensor::new(
            Tensor::from_vec(&[2], vec![3.0, 0.0]),
            Tensor::from_vec(&[2], vec![4.0, 1.0]),
        );
        assert_eq!(z.norm_sqr().as_slice(), &[25.0, 1.0]);
    }

    #[test]
    fn add_and_scale() {
        let a = CTensor::new(
            Tensor::from_vec(&[2], vec![1.0, 2.0]),
            Tensor::from_vec(&[2], vec![-1.0, 0.5]),
        );
        let b = a.add(&a);
        assert_eq!(b.re.as_slice(), &[2.0, 4.0]);
        let c = a.scale(3.0);
        assert_eq!(c.im.as_slice(), &[-3.0, 1.5]);
    }

    #[test]
    fn reshape_both_parts() {
        let a = CTensor::zeros(&[2, 3]);
        let b = a.reshape(&[6]);
        assert_eq!(b.shape(), &[6]);
        assert_eq!(b.im.shape(), &[6]);
    }
}
