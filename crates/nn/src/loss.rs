//! Losses: softmax cross entropy and the distillation KL term
//! (paper Eqs. 3–4).

use crate::functional::softmax;
use crate::tensor::Tensor;

/// Mean softmax cross entropy over a batch.
///
/// Returns `(loss, dloss/dlogits)`; the gradient is `(softmax − onehot)/B`.
///
/// # Panics
///
/// Panics if `labels.len()` does not match the batch size or any label is
/// out of range.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> (f64, Tensor) {
    assert_eq!(logits.shape().len(), 2, "logits must be [batch, classes]");
    let (b, k) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), b, "one label per batch row required");

    let p = softmax(logits);
    let mut grad = p.clone();
    let mut loss = 0.0f64;
    for (i, &y) in labels.iter().enumerate() {
        assert!(y < k, "label {y} out of range for {k} classes");
        let py = p.at2(i, y).max(1e-12);
        loss -= (py as f64).ln();
        grad.as_mut_slice()[i * k + y] -= 1.0;
    }
    grad.scale_in_place(1.0 / b as f32);
    (loss / b as f64, grad)
}

/// Mean KL divergence `KL(softmax(z_t/T) ‖ softmax(z_s/T))` from a
/// (detached) teacher to the student — the `L_KD` term of the paper's
/// mutual-learning losses (Eqs. 3–4, following Deep Mutual Learning).
///
/// Returns `(loss, dloss/d student_logits)`; the gradient is
/// `(p_s − p_t) / (B·T)`.
///
/// # Panics
///
/// Panics if shapes differ or `temperature <= 0`.
pub fn distillation_kl(
    student_logits: &Tensor,
    teacher_logits: &Tensor,
    temperature: f32,
) -> (f64, Tensor) {
    assert_eq!(
        student_logits.shape(),
        teacher_logits.shape(),
        "student/teacher logit shapes must match"
    );
    assert!(temperature > 0.0, "temperature must be positive");
    let (b, k) = (student_logits.shape()[0], student_logits.shape()[1]);

    let ps = softmax(&student_logits.scale(1.0 / temperature));
    let pt = softmax(&teacher_logits.scale(1.0 / temperature));

    let mut loss = 0.0f64;
    for i in 0..b {
        for j in 0..k {
            let t = pt.at2(i, j).max(1e-12) as f64;
            let s = ps.at2(i, j).max(1e-12) as f64;
            loss += t * (t.ln() - s.ln());
        }
    }
    let grad = ps.sub(&pt).scale(1.0 / (b as f32 * temperature));
    (loss / b as f64, grad)
}

/// Classification accuracy of a logit matrix against labels.
///
/// # Panics
///
/// Panics if `labels.len()` does not match the batch size.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let (b, k) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), b);
    let mut correct = 0usize;
    for (i, &y) in labels.iter().enumerate() {
        let row = &logits.as_slice()[i * k..(i + 1) * k];
        // NaN logits (a diverged run) never win the argmax.
        let mut pred = 0usize;
        let mut best = f32::NEG_INFINITY;
        for (j, &v) in row.iter().enumerate() {
            if v.is_finite() && v > best {
                best = v;
                pred = j;
            }
        }
        if pred == y {
            correct += 1;
        }
    }
    correct as f64 / b as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_perfect_prediction_is_small() {
        let logits = Tensor::from_vec(&[1, 3], vec![10.0, -10.0, -10.0]);
        let (loss, _) = cross_entropy(&logits, &[0]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn cross_entropy_of_uniform_is_ln_k() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, _) = cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f64).ln()).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.3, -0.1, 0.5, 1.0, 0.0, -1.0]);
        let labels = [2usize, 0];
        let (_, grad) = cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[idx] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[idx] -= eps;
            let fd = ((cross_entropy(&lp, &labels).0 - cross_entropy(&lm, &labels).0)
                / (2.0 * eps as f64)) as f32;
            assert!((grad.as_slice()[idx] - fd).abs() < 1e-3, "idx {idx}");
        }
    }

    #[test]
    fn kl_zero_when_identical() {
        let z = Tensor::from_vec(&[1, 3], vec![0.5, -0.5, 1.0]);
        let (loss, grad) = distillation_kl(&z, &z, 1.0);
        assert!(loss.abs() < 1e-9);
        assert!(grad.max_abs() < 1e-7);
    }

    #[test]
    fn kl_positive_when_different() {
        let s = Tensor::from_vec(&[1, 3], vec![0.0, 0.0, 0.0]);
        let t = Tensor::from_vec(&[1, 3], vec![5.0, 0.0, -5.0]);
        let (loss, _) = distillation_kl(&s, &t, 1.0);
        assert!(loss > 0.1);
    }

    #[test]
    fn kl_grad_matches_finite_difference() {
        let s = Tensor::from_vec(&[1, 3], vec![0.2, -0.4, 0.1]);
        let t = Tensor::from_vec(&[1, 3], vec![1.0, 0.0, -1.0]);
        let (_, grad) = distillation_kl(&s, &t, 2.0);
        let eps = 1e-3f32;
        for idx in 0..3 {
            let mut sp = s.clone();
            sp.as_mut_slice()[idx] += eps;
            let mut sm = s.clone();
            sm.as_mut_slice()[idx] -= eps;
            let fd = ((distillation_kl(&sp, &t, 2.0).0 - distillation_kl(&sm, &t, 2.0).0)
                / (2.0 * eps as f64)) as f32;
            assert!((grad.as_slice()[idx] - fd).abs() < 1e-3, "idx {idx}");
        }
    }

    #[test]
    fn kl_pulls_student_toward_teacher() {
        // One gradient step on the student logits must reduce the KL.
        let mut s = Tensor::from_vec(&[1, 3], vec![0.0, 0.0, 0.0]);
        let t = Tensor::from_vec(&[1, 3], vec![2.0, 0.0, -2.0]);
        let (l0, g) = distillation_kl(&s, &t, 1.0);
        for (v, &gv) in s.as_mut_slice().iter_mut().zip(g.as_slice()) {
            *v -= 5.0 * gv;
        }
        let (l1, _) = distillation_kl(&s, &t, 1.0);
        assert!(l1 < l0);
    }

    #[test]
    fn accuracy_counts_argmax() {
        let logits = Tensor::from_vec(&[2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 0]), 0.0);
        assert_eq!(accuracy(&logits, &[0, 0]), 0.5);
    }
}
