//! Mini-batch training utilities.

use crate::ctensor::CTensor;
use crate::loss::{accuracy, cross_entropy};
use crate::network::Network;
use crate::optim::Sgd;
use crate::tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled dataset in complex form: one `CTensor` holding every sample
/// along the first axis, plus class labels.
#[derive(Clone, Debug)]
pub struct CDataset {
    /// All samples, batch-first.
    pub inputs: CTensor,
    /// One label per sample.
    pub labels: Vec<usize>,
}

impl CDataset {
    /// Bundles inputs and labels.
    ///
    /// # Panics
    ///
    /// Panics if the label count differs from the first-axis length.
    pub fn new(inputs: CTensor, labels: Vec<usize>) -> Self {
        assert_eq!(
            inputs.shape()[0],
            labels.len(),
            "one label per sample required"
        );
        CDataset { inputs, labels }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Copies the selected samples into a contiguous batch.
    pub fn gather(&self, idxs: &[usize]) -> (CTensor, Vec<usize>) {
        let per = self.inputs.numel() / self.len();
        let mut shape = self.inputs.shape().to_vec();
        shape[0] = idxs.len();
        let mut re = Tensor::zeros(&shape);
        let mut im = Tensor::zeros(&shape);
        // Detach the batch storage once, not per gathered sample.
        let (re_s, im_s) = (re.as_mut_slice(), im.as_mut_slice());
        for (bi, &si) in idxs.iter().enumerate() {
            re_s[bi * per..(bi + 1) * per]
                .copy_from_slice(&self.inputs.re.as_slice()[si * per..(si + 1) * per]);
            im_s[bi * per..(bi + 1) * per]
                .copy_from_slice(&self.inputs.im.as_slice()[si * per..(si + 1) * per]);
        }
        let labels = idxs.iter().map(|&i| self.labels[i]).collect();
        (CTensor::new(re, im), labels)
    }
}

/// One epoch of SGD cross-entropy training. Returns the mean batch loss.
pub fn train_epoch<R: Rng>(
    net: &mut Network,
    data: &CDataset,
    batch_size: usize,
    opt: &mut Sgd,
    rng: &mut R,
) -> f64 {
    assert!(batch_size > 0, "batch size must be positive");
    let mut order: Vec<usize> = (0..data.len()).collect();
    order.shuffle(rng);
    let mut total = 0.0;
    let mut batches = 0;
    for chunk in order.chunks(batch_size) {
        let (x, y) = data.gather(chunk);
        let logits = net.forward(&x, true);
        let (loss, grad) = cross_entropy(&logits, &y);
        net.backward(&grad);
        opt.step(&mut |f| net.visit_params(f));
        net.post_step();
        total += loss;
        batches += 1;
    }
    total / batches.max(1) as f64
}

/// Classification accuracy over a dataset (evaluation mode).
pub fn evaluate(net: &mut Network, data: &CDataset, batch_size: usize) -> f64 {
    let mut correct = 0.0;
    let idxs: Vec<usize> = (0..data.len()).collect();
    for chunk in idxs.chunks(batch_size) {
        let (x, y) = data.gather(chunk);
        let logits = net.forward(&x, false);
        correct += accuracy(&logits, &y) * y.len() as f64;
    }
    correct / data.len() as f64
}

/// What one training epoch produced; handed to [`fit_with`] observers
/// after every epoch.
#[derive(Clone, Copy, Debug)]
pub struct EpochStats {
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Total epochs in the schedule.
    pub epochs: usize,
    /// Mean batch cross-entropy loss of this epoch.
    pub mean_loss: f64,
    /// Learning rate the epoch ran at (after step decay).
    pub lr: f32,
}

/// The shared step-decay schedule: ×0.5 at 50 % and ×0.25 at 75 % of the
/// epoch budget.
pub fn step_decay_lr(epoch: usize, epochs: usize, lr0: f32) -> f32 {
    if epoch >= epochs * 3 / 4 {
        lr0 * 0.25
    } else if epoch >= epochs / 2 {
        lr0 * 0.5
    } else {
        lr0
    }
}

/// Trains for `epochs` epochs with the [`step_decay_lr`] schedule,
/// invoking `hook` after each epoch, and returns the final test accuracy.
///
/// The hook is the batching-level observation point pipeline stages build
/// on: progress logging, early-stopping heuristics, and throughput
/// accounting all plug in here without another `fit` variant.
#[allow(clippy::too_many_arguments)]
pub fn fit_with<R: Rng, H: FnMut(&EpochStats)>(
    net: &mut Network,
    train: &CDataset,
    test: &CDataset,
    epochs: usize,
    batch_size: usize,
    opt: &mut Sgd,
    rng: &mut R,
    mut hook: H,
) -> f64 {
    let lr0 = opt.lr;
    for e in 0..epochs {
        opt.lr = step_decay_lr(e, epochs, lr0);
        let mean_loss = train_epoch(net, train, batch_size, opt, rng);
        hook(&EpochStats {
            epoch: e,
            epochs,
            mean_loss,
            lr: opt.lr,
        });
    }
    opt.lr = lr0;
    evaluate(net, test, batch_size)
}

/// Trains for `epochs` epochs with the [`step_decay_lr`] schedule,
/// returning the final test accuracy. `verbose` logs per-epoch loss and
/// test accuracy to stderr; use [`fit_with`] to observe training
/// programmatically.
#[allow(clippy::too_many_arguments)]
pub fn fit<R: Rng>(
    net: &mut Network,
    train: &CDataset,
    test: &CDataset,
    epochs: usize,
    batch_size: usize,
    opt: &mut Sgd,
    rng: &mut R,
    verbose: bool,
) -> f64 {
    // The verbose hook needs `net` mutably for the mid-training eval, so
    // split the two paths instead of capturing it in the closure.
    if verbose {
        let lr0 = opt.lr;
        for e in 0..epochs {
            opt.lr = step_decay_lr(e, epochs, lr0);
            let loss = train_epoch(net, train, batch_size, opt, rng);
            let acc = evaluate(net, test, batch_size);
            eprintln!("epoch {e:>3}: loss {loss:.4}, test acc {acc:.4}");
        }
        opt.lr = lr0;
        evaluate(net, test, batch_size)
    } else {
        fit_with(net, train, test, epochs, batch_size, opt, rng, |_| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::head::MergeHead;
    use crate::layers::{CDense, CRelu, CSequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two noisy Gaussian blobs, complex-encoded.
    fn blob_dataset(n: usize, seed: u64) -> CDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut re = Tensor::zeros(&[n, 2]);
        let mut im = Tensor::zeros(&[n, 2]);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let centre = if class == 0 { 1.0 } else { -1.0 };
            re.as_mut_slice()[i * 2] = centre + rng.gen_range(-0.3..0.3);
            re.as_mut_slice()[i * 2 + 1] = -centre + rng.gen_range(-0.3..0.3);
            im.as_mut_slice()[i * 2] = centre * 0.5 + rng.gen_range(-0.3..0.3);
            im.as_mut_slice()[i * 2 + 1] = rng.gen_range(-0.3..0.3);
            labels.push(class);
        }
        CDataset::new(CTensor::new(re, im), labels)
    }

    fn blob_network(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        let body = CSequential::new()
            .push(CDense::new(2, 8, &mut rng))
            .push(CRelu::new())
            .push(CDense::new(8, 4, &mut rng));
        Network::new(body, Box::new(MergeHead::new()))
    }

    #[test]
    fn fit_learns_blobs() {
        let train = blob_dataset(128, 1);
        let test = blob_dataset(64, 2);
        let mut net = blob_network(3);
        let mut opt = Sgd::with_momentum(0.05, 0.9, 1e-4);
        let mut rng = StdRng::seed_from_u64(4);
        let acc = fit(&mut net, &train, &test, 20, 16, &mut opt, &mut rng, false);
        assert!(acc > 0.95, "accuracy only {acc}");
    }

    #[test]
    fn gather_preserves_samples() {
        let data = blob_dataset(10, 5);
        let (x, y) = data.gather(&[3, 7]);
        assert_eq!(x.shape(), &[2, 2]);
        assert_eq!(y.len(), 2);
        assert_eq!(x.re.at2(0, 0), data.inputs.re.at2(3, 0));
        assert_eq!(x.im.at2(1, 1), data.inputs.im.at2(7, 1));
    }

    #[test]
    fn evaluate_bounds() {
        let data = blob_dataset(32, 6);
        let mut net = blob_network(7);
        let acc = evaluate(&mut net, &data, 8);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn train_step_materialises_no_weight_transposes() {
        use crate::tensor::transpose2_materialisations;

        let train = blob_dataset(64, 8);
        let mut net = blob_network(9);
        let mut opt = Sgd::with_momentum(0.05, 0.9, 1e-4);
        let mut rng = StdRng::seed_from_u64(10);
        // Warm up once so any one-time setup cost is out of the window.
        let _ = train_epoch(&mut net, &train, 16, &mut opt, &mut rng);
        let before = transpose2_materialisations();
        let _ = train_epoch(&mut net, &train, 16, &mut opt, &mut rng);
        let after = transpose2_materialisations();
        assert_eq!(
            after, before,
            "a dense train epoch must not materialise transposed weight copies"
        );
    }
}
