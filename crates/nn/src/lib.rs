//! Split-complex neural-network framework for the OplixNet reproduction.
//!
//! The paper trains three families of networks (Table I): **RVNN** (real),
//! **CVNN** (complex weights, real-part-only inputs) and **SCVNN** (complex
//! weights, complex-assigned inputs). All three are expressed here through
//! one split-complex layer stack with hand-derived backward passes —
//! exactly the real-expansion view of complex arithmetic the paper's Eq. 2
//! uses, which is why no general-purpose complex autodiff engine is needed
//! (see DESIGN.md, substitution table).
//!
//! * [`tensor`] / [`ctensor`] — `f32` tensors and `(re, im)` pairs.
//! * [`functional`] — dense/conv/pool primitives with explicit gradients.
//! * [`layers`] — `CDense`, `CConv2d`, `CBatchNorm2d`, `CRelu`,
//!   `CAvgPool2d`, `CFlatten`, `CResidualBlock`, `CSequential`.
//! * [`head`] — software twins of the optical decoders (merge / linear /
//!   unitary / coherent / photodiode).
//! * [`loss`] — cross entropy, distillation KL, accuracy.
//! * [`optim`] — SGD (+momentum, weight decay) and Adam.
//! * [`trainer`] — mini-batch fitting and evaluation.
//! * [`mutual`] — SCVNN–CVNN mutual learning (Eqs. 3–4).
//!
//! # Example: train a tiny split-complex classifier
//!
//! ```
//! use oplix_nn::ctensor::CTensor;
//! use oplix_nn::head::MergeHead;
//! use oplix_nn::layers::{CDense, CRelu, CSequential};
//! use oplix_nn::network::Network;
//! use oplix_nn::optim::Sgd;
//! use oplix_nn::tensor::Tensor;
//! use oplix_nn::trainer::{fit, CDataset};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let body = CSequential::new()
//!     .push(CDense::new(2, 8, &mut rng))
//!     .push(CRelu::new())
//!     .push(CDense::new(8, 4, &mut rng));
//! let mut net = Network::new(body, Box::new(MergeHead::new()));
//!
//! // Two trivially separable classes.
//! let re = Tensor::from_vec(&[4, 2], vec![1.0, 1.0, 1.1, 0.9, -1.0, -1.0, -0.9, -1.1]);
//! let data = CDataset::new(CTensor::from_re(re), vec![0, 0, 1, 1]);
//! let mut opt = Sgd::with_momentum(0.05, 0.9, 0.0);
//! let acc = fit(&mut net, &data, &data, 30, 2, &mut opt, &mut rng, false);
//! assert!(acc > 0.9);
//! ```

// The unsafe surface of the workspace is confined to the executor and the
// `#[target_feature]` kernel clones; this crate must stay free of it.
#![forbid(unsafe_code)]

pub mod ctensor;
pub mod functional;
pub mod head;
pub mod layers;
pub mod loss;
pub mod mutual;
pub mod network;
pub mod optim;
pub mod param;
pub mod tensor;
pub mod trainer;

pub use ctensor::CTensor;
pub use network::Network;
pub use param::Param;
pub use tensor::Tensor;
