//! Exhaustive finite-difference gradient checks: every layer and head is
//! verified against a numerically-differentiated scalar loss on random
//! inputs. This is the safety net that replaces a general autodiff
//! engine's correctness-by-construction.

use oplix_nn::ctensor::CTensor;
use oplix_nn::head::{Head, LinearDecoderHead, MergeHead, ModulusHead, ReHead};
use oplix_nn::layers::{
    CAvgPool2d, CBatchNorm2d, CConv2d, CDense, CFlatten, CLayer, CRelu, CResidualBlock,
};
use oplix_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f32 = 1e-2;
const TOL: f32 = 6e-2;

/// Deterministic pseudo-random weighting so the scalar loss exercises all
/// outputs asymmetrically.
fn loss_weights(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| ((i * 2654435761) % 17) as f32 / 8.0 - 1.0)
        .collect()
}

fn weighted_loss(y: &CTensor) -> f64 {
    let w = loss_weights(y.numel());
    let re: f64 =
        y.re.as_slice()
            .iter()
            .zip(&w)
            .map(|(&a, &b)| (a * b) as f64)
            .sum();
    let im: f64 =
        y.im.as_slice()
            .iter()
            .zip(&w)
            .map(|(&a, &b)| (a * b * 0.5) as f64)
            .sum();
    re + im
}

fn weighted_grad(shape: &[usize]) -> CTensor {
    let n: usize = shape.iter().product();
    let w = loss_weights(n);
    CTensor::new(
        Tensor::from_vec(shape, w.clone()),
        Tensor::from_vec(shape, w.iter().map(|v| v * 0.5).collect()),
    )
}

/// Checks dL/dx for an arbitrary layer against central differences.
fn check_input_grad<L: CLayer>(layer: &mut L, x: &CTensor, indices: &[usize]) {
    let y = layer.forward(x, true);
    let dy = weighted_grad(y.shape());
    let dx = layer.backward(&dy);

    for &idx in indices {
        // Real part.
        let mut xp = x.clone();
        xp.re.as_mut_slice()[idx] += EPS;
        let lp = weighted_loss(&layer.forward(&xp, false));
        let mut xm = x.clone();
        xm.re.as_mut_slice()[idx] -= EPS;
        let lm = weighted_loss(&layer.forward(&xm, false));
        let fd = ((lp - lm) / (2.0 * EPS as f64)) as f32;
        assert!(
            (dx.re.as_slice()[idx] - fd).abs() < TOL,
            "re idx {idx}: analytic {} vs fd {fd}",
            dx.re.as_slice()[idx]
        );

        // Imaginary part.
        let mut xp = x.clone();
        xp.im.as_mut_slice()[idx] += EPS;
        let lp = weighted_loss(&layer.forward(&xp, false));
        let mut xm = x.clone();
        xm.im.as_mut_slice()[idx] -= EPS;
        let lm = weighted_loss(&layer.forward(&xm, false));
        let fd = ((lp - lm) / (2.0 * EPS as f64)) as f32;
        assert!(
            (dx.im.as_slice()[idx] - fd).abs() < TOL,
            "im idx {idx}: analytic {} vs fd {fd}",
            dx.im.as_slice()[idx]
        );
    }
}

fn sample(shape: &[usize], seed: u64) -> CTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    CTensor::new(
        Tensor::random_uniform(shape, 1.0, &mut rng),
        Tensor::random_uniform(shape, 1.0, &mut rng),
    )
}

#[test]
fn cdense_input_gradients() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut layer = CDense::new(5, 4, &mut rng);
    let x = sample(&[3, 5], 2);
    check_input_grad(&mut layer, &x, &[0, 4, 9, 14]);
}

#[test]
fn cconv_input_gradients() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut layer = CConv2d::new(2, 3, 3, 1, 1, &mut rng);
    let x = sample(&[1, 2, 4, 4], 4);
    check_input_grad(&mut layer, &x, &[0, 7, 15, 31]);
}

#[test]
fn strided_cconv_input_gradients() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut layer = CConv2d::new(2, 2, 3, 2, 1, &mut rng);
    let x = sample(&[1, 2, 4, 4], 6);
    check_input_grad(&mut layer, &x, &[0, 9, 21, 31]);
}

#[test]
fn crelu_input_gradients() {
    let mut layer = CRelu::new();
    // Keep values away from the kink so finite differences are valid.
    let mut x = sample(&[2, 6], 7);
    for v in x.re.as_mut_slice().iter_mut().chain(x.im.as_mut_slice()) {
        if v.abs() < 0.1 {
            *v += 0.3;
        }
    }
    check_input_grad(&mut layer, &x, &[0, 5, 11]);
}

#[test]
fn avg_pool_input_gradients() {
    let mut layer = CAvgPool2d::new(2);
    let x = sample(&[1, 2, 4, 4], 8);
    check_input_grad(&mut layer, &x, &[0, 10, 20, 31]);
}

#[test]
fn flatten_input_gradients() {
    let mut layer = CFlatten::new();
    let x = sample(&[2, 2, 2, 2], 9);
    check_input_grad(&mut layer, &x, &[0, 7, 15]);
}

#[test]
fn residual_block_input_gradients() {
    // Batch-norm inside the block uses batch statistics, so the finite
    // difference must also run in train mode; our check uses eval mode for
    // the perturbed passes, which is only valid if BN statistics are
    // frozen. Use a block on a batch large enough that one-element
    // perturbations barely move the statistics, and a loose tolerance.
    let mut rng = StdRng::seed_from_u64(10);
    let mut block = CResidualBlock::new(2, 2, 1, false, &mut rng);
    let x = sample(&[4, 2, 4, 4], 11);

    let y = block.forward(&x, true);
    let dy = weighted_grad(y.shape());
    let dx = block.backward(&dy);
    // Smoke-level check: gradient is finite, input-shaped, and nonzero.
    assert_eq!(dx.shape(), x.shape());
    assert!(dx.re.as_slice().iter().all(|v| v.is_finite()));
    assert!(dx.re.max_abs() > 0.0);
}

#[test]
fn batchnorm_train_gradients_are_finite_and_centered() {
    let mut bn = CBatchNorm2d::new(2);
    let x = sample(&[4, 2, 3, 3], 12);
    let y = bn.forward(&x, true);
    let dy = weighted_grad(y.shape());
    let dx = bn.backward(&dy);
    // BN backward projects out the per-channel mean: summing dx over the
    // normalisation axes must give ~0 when dy is mean-free per channel...
    // our dy is not mean-free, but dx must still be finite and bounded.
    assert!(dx.re.as_slice().iter().all(|v| v.is_finite()));
    assert!(dx.re.max_abs() < 100.0);
}

// ---------------------------------------------------------------------------
// Heads
// ---------------------------------------------------------------------------

fn check_head_input_grad<H: Head>(head: &mut H, x: &CTensor, indices: &[usize]) {
    let logits = head.forward(x, true);
    let n = logits.numel();
    let w = loss_weights(n);
    let loss = |l: &Tensor| -> f64 {
        l.as_slice()
            .iter()
            .zip(&w)
            .map(|(&a, &b)| (a * b) as f64)
            .sum()
    };
    let dlogits = Tensor::from_vec(logits.shape(), w.clone());
    let dx = head.backward(&dlogits);

    for &idx in indices {
        let mut xp = x.clone();
        xp.re.as_mut_slice()[idx] += EPS;
        let lp = loss(&head.forward(&xp, false));
        let mut xm = x.clone();
        xm.re.as_mut_slice()[idx] -= EPS;
        let lm = loss(&head.forward(&xm, false));
        let fd = ((lp - lm) / (2.0 * EPS as f64)) as f32;
        assert!(
            (dx.re.as_slice()[idx] - fd).abs() < TOL,
            "head re idx {idx}: {} vs {fd}",
            dx.re.as_slice()[idx]
        );

        let mut xp = x.clone();
        xp.im.as_mut_slice()[idx] += EPS;
        let lp = loss(&head.forward(&xp, false));
        let mut xm = x.clone();
        xm.im.as_mut_slice()[idx] -= EPS;
        let lm = loss(&head.forward(&xm, false));
        let fd = ((lp - lm) / (2.0 * EPS as f64)) as f32;
        assert!(
            (dx.im.as_slice()[idx] - fd).abs() < TOL,
            "head im idx {idx}: {} vs {fd}",
            dx.im.as_slice()[idx]
        );
    }
}

#[test]
fn re_head_gradients() {
    let x = sample(&[2, 4], 20);
    check_head_input_grad(&mut ReHead::new(), &x, &[0, 3, 7]);
}

#[test]
fn modulus_head_gradients() {
    let x = sample(&[2, 4], 21);
    check_head_input_grad(&mut ModulusHead::new(), &x, &[0, 3, 7]);
}

#[test]
fn merge_head_gradients() {
    let x = sample(&[2, 6], 22);
    check_head_input_grad(&mut MergeHead::new(), &x, &[0, 5, 11]);
}

#[test]
fn linear_decoder_head_gradients() {
    let mut rng = StdRng::seed_from_u64(23);
    let mut head = LinearDecoderHead::new(3, &mut rng);
    let x = sample(&[2, 3], 24);
    check_head_input_grad(&mut head, &x, &[0, 2, 5]);
}
