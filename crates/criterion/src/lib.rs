//! Workspace-local stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements the criterion 0.5 API surface the workspace's benches use —
//! `Criterion`, `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple calibrated wall-clock timer and
//! plain-text reporting instead of statistics and HTML plots.
//!
//! Set `CRITERION_STUB_MS` (default 200) to change the per-benchmark
//! measurement budget in milliseconds.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

/// Units processed per iteration, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times one benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly until the measurement budget is spent and
    /// records the mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, also used to scale the batch size.
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed().max(Duration::from_nanos(1));
        let target = self.budget;
        let mut iters = 1u64;
        let mut elapsed = first;
        while elapsed < target {
            let batch = ((target.as_nanos() - elapsed.as_nanos()) / first.as_nanos().max(1))
                .clamp(1, 1 << 20) as u64;
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            elapsed += start.elapsed();
            iters += batch;
        }
        self.iters = iters;
        self.elapsed = elapsed;
    }

    fn mean(&self) -> Duration {
        self.elapsed / self.iters.max(1) as u32
    }
}

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_STUB_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms)
}

fn report(group: Option<&str>, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let mean = b.mean();
    let prefix = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut line = format!(
        "bench {prefix:<48} {:>12.3?}/iter ({} iters)",
        mean, b.iters
    );
    if let Some(tp) = throughput {
        let per_sec = |units: u64| units as f64 / mean.as_secs_f64();
        match tp {
            Throughput::Elements(n) => {
                line += &format!(", {:.3e} elem/s", per_sec(n));
            }
            Throughput::Bytes(n) => {
                line += &format!(", {:.3e} B/s", per_sec(n));
            }
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub timer is budget-based, not
    /// sample-count-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput reported for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            budget: budget(),
        };
        f(&mut b);
        report(Some(&self.name), &id.label, &b, self.throughput);
        self
    }

    /// Runs one benchmark that borrows a setup value.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            budget: budget(),
        };
        f(&mut b, input);
        report(Some(&self.name), &id.label, &b, self.throughput);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
            budget: budget(),
        };
        f(&mut b);
        report(None, name, &b, None);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("CRITERION_STUB_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4][..], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        group.finish();
    }
}
