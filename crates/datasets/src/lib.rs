//! Synthetic datasets and real-to-complex data assignment for the OplixNet
//! reproduction.
//!
//! * [`synth`] — seeded MNIST-like ([`synth::digits`]) and CIFAR-like
//!   ([`synth::colors`]) generators with controlled neighbouring-pixel and
//!   cross-channel correlation (the statistics the paper's assignment
//!   comparison depends on), plus the correlation diagnostics themselves.
//! * [`assign`] — the paper's assignment schemes (Figs. 4–5): spatial
//!   interlace / half-half / symmetric, channel lossless / remapping, and
//!   the conventional amplitude-only baseline.
//!
//! # Example
//!
//! ```
//! use oplix_datasets::assign::AssignmentKind;
//! use oplix_datasets::synth::{digits, SynthConfig};
//!
//! let data = digits(&SynthConfig { samples: 8, ..Default::default() });
//! let complex_view = AssignmentKind::SpatialInterlace.apply_dataset_flat(&data);
//! // 16x16 images halve to 128 complex features.
//! assert_eq!(complex_view.inputs.shape(), &[8, 128]);
//! ```

// The unsafe surface of the workspace is confined to the executor and the
// `#[target_feature]` kernel clones; this crate must stay free of it.
#![forbid(unsafe_code)]

pub mod assign;
pub mod synth;

pub use assign::{AssignError, AssignmentKind};
pub use synth::{colors, digits, RealDataset, SynthConfig};
