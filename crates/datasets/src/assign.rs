//! Real-to-complex data assignment schemes (paper §III-B, Figs. 4–5).
//!
//! An assignment packs a real image `[N, C, H, W]` into a complex one,
//! trading feature-map size for the phase dimension of light:
//!
//! * spatial schemes (Fig. 4) pair *pixels* and halve the height —
//!   interlace (adjacent rows, proposed), half-half (top/bottom halves),
//!   symmetric (180°-rotated partners);
//! * channel schemes (Fig. 5) pair *channels* — lossless (adjacent
//!   channels, proposed) and remapping (a lossy 3→2 colour-space map first);
//! * [`AssignmentKind::Conventional`] keeps the real data on the amplitude
//!   only (the baseline ONN encoding).

use crate::synth::RealDataset;
use oplix_nn::ctensor::CTensor;
use oplix_nn::tensor::Tensor;
use oplix_nn::trainer::CDataset;

/// Why an assignment cannot be applied to a dataset geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssignError {
    /// Spatial schemes pair rows, so the image height must be even.
    OddHeight {
        /// The offending input height.
        height: usize,
    },
    /// Channel remapping is a fixed 3→2 colour-space map; it needs RGB.
    NeedsRgb {
        /// The offending channel count.
        channels: usize,
    },
    /// Assignments act on `[N, C, H, W]` batches.
    BadRank {
        /// The offending tensor rank.
        rank: usize,
    },
}

impl std::fmt::Display for AssignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssignError::OddHeight { height } => {
                write!(
                    f,
                    "spatial assignment requires an even height, got {height}"
                )
            }
            AssignError::NeedsRgb { channels } => {
                write!(
                    f,
                    "channel remapping is defined for RGB inputs, got {channels} channels"
                )
            }
            AssignError::BadRank { rank } => {
                write!(
                    f,
                    "assignment expects a rank-4 [N, C, H, W] tensor, got rank {rank}"
                )
            }
        }
    }
}

impl std::error::Error for AssignError {}

/// The real-to-complex data assignment schemes compared in Fig. 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssignmentKind {
    /// No assignment: amplitude-only encoding, phase zero (conventional
    /// ONN, Fig. 3c / Fig. 5c).
    Conventional,
    /// Adjacent vertical pixel pairs → one complex value (proposed for
    /// FCNNs, Fig. 4a). Output height `H/2`.
    SpatialInterlace,
    /// Top half → real, bottom half → imaginary (Fig. 4b, from \[13\]).
    /// Output height `H/2`.
    SpatialHalfHalf,
    /// Pixel and its 180°-rotated partner → one complex value (Fig. 4c).
    /// Output height `H/2`.
    SpatialSymmetric,
    /// Adjacent channel pairs → one complex channel; odd trailing channel
    /// keeps a zero imaginary part (proposed for CNNs, Fig. 5a). Output
    /// channels `⌈C/2⌉`.
    ChannelLossless,
    /// Lossy `f(r,g,b)` 3→2 colour-space mapping, then the two mapped
    /// channels → one complex channel (Fig. 5b, mapping after \[26\]).
    /// Requires `C == 3`; output channels 1.
    ChannelRemapping,
}

impl AssignmentKind {
    /// Short display name matching the paper's Fig. 8 legend.
    pub fn short_name(&self) -> &'static str {
        match self {
            AssignmentKind::Conventional => "Conv",
            AssignmentKind::SpatialInterlace => "SI",
            AssignmentKind::SpatialHalfHalf => "SH",
            AssignmentKind::SpatialSymmetric => "SS",
            AssignmentKind::ChannelLossless => "CL",
            AssignmentKind::ChannelRemapping => "CR",
        }
    }

    /// Output `(channels, height, width)` for a given input image shape.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError`] if the scheme's constraints are violated
    /// (odd height for spatial schemes, `C != 3` for channel remapping).
    ///
    /// ```
    /// use oplix_datasets::assign::{AssignError, AssignmentKind};
    ///
    /// // Interlace halves the height...
    /// assert_eq!(
    ///     AssignmentKind::SpatialInterlace.try_output_shape(1, 28, 28),
    ///     Ok((1, 14, 28)),
    /// );
    /// // ...so an odd height is a typed error, not a panic.
    /// assert_eq!(
    ///     AssignmentKind::SpatialInterlace.try_output_shape(1, 7, 28),
    ///     Err(AssignError::OddHeight { height: 7 }),
    /// );
    /// ```
    pub fn try_output_shape(
        &self,
        c: usize,
        h: usize,
        w: usize,
    ) -> Result<(usize, usize, usize), AssignError> {
        match self {
            AssignmentKind::Conventional => Ok((c, h, w)),
            AssignmentKind::SpatialInterlace
            | AssignmentKind::SpatialHalfHalf
            | AssignmentKind::SpatialSymmetric => {
                if !h.is_multiple_of(2) {
                    return Err(AssignError::OddHeight { height: h });
                }
                Ok((c, h / 2, w))
            }
            AssignmentKind::ChannelLossless => Ok((c.div_ceil(2), h, w)),
            AssignmentKind::ChannelRemapping => {
                if c != 3 {
                    return Err(AssignError::NeedsRgb { channels: c });
                }
                Ok((1, h, w))
            }
        }
    }

    /// Output `(channels, height, width)` for a given input image shape.
    ///
    /// # Panics
    ///
    /// Panics if the scheme's constraints are violated (odd height for
    /// spatial schemes, `C != 3` for channel remapping); see
    /// [`AssignmentKind::try_output_shape`] for the fallible form.
    pub fn output_shape(&self, c: usize, h: usize, w: usize) -> (usize, usize, usize) {
        self.try_output_shape(c, h, w)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Whether this scheme halves the *feature-map channel count*, which is
    /// what shrinks CONV kernels (spatial schemes do not — paper §III-B-2).
    pub fn reduces_channels(&self) -> bool {
        matches!(
            self,
            AssignmentKind::ChannelLossless | AssignmentKind::ChannelRemapping
        )
    }

    /// Applies the assignment to a batch of real images `[N, C, H, W]`.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError`] if the input is not rank 4 or violates
    /// scheme constraints.
    ///
    /// ```
    /// use oplix_datasets::assign::AssignmentKind;
    /// use oplix_nn::tensor::Tensor;
    ///
    /// // Two adjacent rows pack into one complex row.
    /// let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
    /// let z = AssignmentKind::SpatialInterlace.try_apply(&x).unwrap();
    /// assert_eq!(z.shape(), &[1, 1, 1, 2]);
    /// assert_eq!(z.re.at4(0, 0, 0, 0), 1.0);
    /// assert_eq!(z.im.at4(0, 0, 0, 0), 3.0);
    ///
    /// // Wrong rank is a typed error.
    /// assert!(AssignmentKind::SpatialInterlace.try_apply(&Tensor::zeros(&[4, 4])).is_err());
    /// ```
    pub fn try_apply(&self, x: &Tensor) -> Result<CTensor, AssignError> {
        if x.shape().len() != 4 {
            return Err(AssignError::BadRank {
                rank: x.shape().len(),
            });
        }
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oc, oh, ow) = self.try_output_shape(c, h, w)?;
        let mut re = Tensor::zeros(&[n, oc, oh, ow]);
        let mut im = Tensor::zeros(&[n, oc, oh, ow]);

        match self {
            AssignmentKind::Conventional => {
                re = x.clone();
            }
            AssignmentKind::SpatialInterlace => {
                let (mut re_w, mut im_w) = (re.writer4(), im.writer4());
                for b in 0..n {
                    for ch in 0..c {
                        for y in 0..oh {
                            for xx in 0..w {
                                *re_w.at4_mut(b, ch, y, xx) = x.at4(b, ch, 2 * y, xx);
                                *im_w.at4_mut(b, ch, y, xx) = x.at4(b, ch, 2 * y + 1, xx);
                            }
                        }
                    }
                }
            }
            AssignmentKind::SpatialHalfHalf => {
                let (mut re_w, mut im_w) = (re.writer4(), im.writer4());
                for b in 0..n {
                    for ch in 0..c {
                        for y in 0..oh {
                            for xx in 0..w {
                                *re_w.at4_mut(b, ch, y, xx) = x.at4(b, ch, y, xx);
                                *im_w.at4_mut(b, ch, y, xx) = x.at4(b, ch, y + oh, xx);
                            }
                        }
                    }
                }
            }
            AssignmentKind::SpatialSymmetric => {
                let (mut re_w, mut im_w) = (re.writer4(), im.writer4());
                for b in 0..n {
                    for ch in 0..c {
                        for y in 0..oh {
                            for xx in 0..w {
                                *re_w.at4_mut(b, ch, y, xx) = x.at4(b, ch, y, xx);
                                *im_w.at4_mut(b, ch, y, xx) = x.at4(b, ch, h - 1 - y, w - 1 - xx);
                            }
                        }
                    }
                }
            }
            AssignmentKind::ChannelLossless => {
                let (mut re_w, mut im_w) = (re.writer4(), im.writer4());
                for b in 0..n {
                    for oc_i in 0..oc {
                        for y in 0..h {
                            for xx in 0..w {
                                *re_w.at4_mut(b, oc_i, y, xx) = x.at4(b, 2 * oc_i, y, xx);
                                if 2 * oc_i + 1 < c {
                                    *im_w.at4_mut(b, oc_i, y, xx) = x.at4(b, 2 * oc_i + 1, y, xx);
                                }
                                // Odd trailing channel: imaginary part stays
                                // zero-padded (Fig. 5a).
                            }
                        }
                    }
                }
            }
            AssignmentKind::ChannelRemapping => {
                // Lossy 3 -> 2 colour-space mapping after [26]:
                // c1 = (r + g)/2, c2 = (g + b)/2. The blue-vs-red contrast
                // is partially lost — this is the scheme's documented
                // weakness (5.83 %–13.12 % accuracy drop in the paper).
                let (mut re_w, mut im_w) = (re.writer4(), im.writer4());
                for b in 0..n {
                    for y in 0..h {
                        for xx in 0..w {
                            let r = x.at4(b, 0, y, xx);
                            let g = x.at4(b, 1, y, xx);
                            let bl = x.at4(b, 2, y, xx);
                            *re_w.at4_mut(b, 0, y, xx) = 0.5 * (r + g);
                            *im_w.at4_mut(b, 0, y, xx) = 0.5 * (g + bl);
                        }
                    }
                }
            }
        }
        Ok(CTensor::new(re, im))
    }

    /// Applies the assignment to a batch of real images `[N, C, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 4 or violates scheme constraints;
    /// see [`AssignmentKind::try_apply`] for the fallible form.
    pub fn apply(&self, x: &Tensor) -> CTensor {
        self.try_apply(x).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Applies the assignment to a whole dataset, producing the complex
    /// training view (keeping image layout).
    ///
    /// # Errors
    ///
    /// Returns [`AssignError`] if the assignment cannot be applied to the
    /// dataset geometry.
    ///
    /// ```
    /// use oplix_datasets::assign::AssignmentKind;
    /// use oplix_datasets::synth::{colors, SynthConfig};
    ///
    /// let data = colors(&SynthConfig { samples: 4, ..Default::default() });
    /// let view = AssignmentKind::ChannelLossless.try_apply_dataset(&data).unwrap();
    /// // 3 RGB channels pack into 2 complex channels; images stay 16x16.
    /// assert_eq!(view.inputs.shape(), &[4, 2, 16, 16]);
    /// assert_eq!(view.labels, data.labels);
    /// ```
    pub fn try_apply_dataset(&self, data: &RealDataset) -> Result<CDataset, AssignError> {
        Ok(CDataset::new(
            self.try_apply(&data.inputs)?,
            data.labels.clone(),
        ))
    }

    /// Applies the assignment to a whole dataset, producing the complex
    /// training view (keeping image layout).
    ///
    /// # Panics
    ///
    /// Panics on geometry violations; see
    /// [`AssignmentKind::try_apply_dataset`] for the fallible form.
    pub fn apply_dataset(&self, data: &RealDataset) -> CDataset {
        self.try_apply_dataset(data)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Applies the assignment and flattens each sample to a vector — the
    /// FCNN input view.
    ///
    /// # Errors
    ///
    /// Returns [`AssignError`] if the assignment cannot be applied to the
    /// dataset geometry.
    ///
    /// ```
    /// use oplix_datasets::assign::AssignmentKind;
    /// use oplix_datasets::synth::{digits, SynthConfig};
    ///
    /// let data = digits(&SynthConfig { samples: 6, ..Default::default() });
    /// // 16x16 images interlace to 128 complex features per sample.
    /// let view = AssignmentKind::SpatialInterlace.try_apply_dataset_flat(&data).unwrap();
    /// assert_eq!(view.inputs.shape(), &[6, 128]);
    ///
    /// // A 3-channel view cannot channel-remap unless it is RGB... this one is,
    /// // so the error path needs a greyscale set:
    /// let grey = digits(&SynthConfig { samples: 2, ..Default::default() });
    /// assert!(AssignmentKind::ChannelRemapping.try_apply_dataset_flat(&grey).is_err());
    /// ```
    pub fn try_apply_dataset_flat(&self, data: &RealDataset) -> Result<CDataset, AssignError> {
        let c = self.try_apply(&data.inputs)?;
        let n = c.shape()[0];
        let rest: usize = c.shape()[1..].iter().product();
        Ok(CDataset::new(c.reshape(&[n, rest]), data.labels.clone()))
    }

    /// Applies the assignment and flattens each sample to a vector — the
    /// FCNN input view.
    ///
    /// # Panics
    ///
    /// Panics on geometry violations; see
    /// [`AssignmentKind::try_apply_dataset_flat`] for the fallible form.
    pub fn apply_dataset_flat(&self, data: &RealDataset) -> CDataset {
        self.try_apply_dataset_flat(data)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// All schemes in the paper's Fig. 8 order.
    pub fn all() -> [AssignmentKind; 6] {
        [
            AssignmentKind::Conventional,
            AssignmentKind::SpatialInterlace,
            AssignmentKind::SpatialHalfHalf,
            AssignmentKind::SpatialSymmetric,
            AssignmentKind::ChannelLossless,
            AssignmentKind::ChannelRemapping,
        ]
    }
}

impl std::fmt::Display for AssignmentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AssignmentKind::Conventional => "Conventional",
            AssignmentKind::SpatialInterlace => "Spatial Interlace",
            AssignmentKind::SpatialHalfHalf => "Spatial Half-half",
            AssignmentKind::SpatialSymmetric => "Spatial Symmetric",
            AssignmentKind::ChannelLossless => "Channel Lossless",
            AssignmentKind::ChannelRemapping => "Channel Remapping",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_image() -> Tensor {
        // 1 sample, 1 channel, 4x2: values 0..8 row-major.
        Tensor::from_vec(&[1, 1, 4, 2], (0..8).map(|v| v as f32).collect())
    }

    #[test]
    fn interlace_pairs_adjacent_rows() {
        let z = AssignmentKind::SpatialInterlace.apply(&toy_image());
        assert_eq!(z.shape(), &[1, 1, 2, 2]);
        // (row0, row1) and (row2, row3).
        assert_eq!(z.re.at4(0, 0, 0, 0), 0.0);
        assert_eq!(z.im.at4(0, 0, 0, 0), 2.0);
        assert_eq!(z.re.at4(0, 0, 1, 1), 5.0);
        assert_eq!(z.im.at4(0, 0, 1, 1), 7.0);
    }

    #[test]
    fn half_half_pairs_across_halves() {
        let z = AssignmentKind::SpatialHalfHalf.apply(&toy_image());
        // (row0, row2) and (row1, row3).
        assert_eq!(z.re.at4(0, 0, 0, 0), 0.0);
        assert_eq!(z.im.at4(0, 0, 0, 0), 4.0);
        assert_eq!(z.re.at4(0, 0, 1, 0), 2.0);
        assert_eq!(z.im.at4(0, 0, 1, 0), 6.0);
    }

    #[test]
    fn symmetric_pairs_rotated_partners() {
        let z = AssignmentKind::SpatialSymmetric.apply(&toy_image());
        // (0,0) pairs with (3,1): values 0 and 7.
        assert_eq!(z.re.at4(0, 0, 0, 0), 0.0);
        assert_eq!(z.im.at4(0, 0, 0, 0), 7.0);
        // (1,1) pairs with (2,0): values 3 and 4.
        assert_eq!(z.re.at4(0, 0, 1, 1), 3.0);
        assert_eq!(z.im.at4(0, 0, 1, 1), 4.0);
    }

    #[test]
    fn channel_lossless_pads_odd_channel() {
        let x = Tensor::from_vec(&[1, 3, 1, 1], vec![1.0, 2.0, 3.0]);
        let z = AssignmentKind::ChannelLossless.apply(&x);
        assert_eq!(z.shape(), &[1, 2, 1, 1]);
        assert_eq!(z.re.at4(0, 0, 0, 0), 1.0);
        assert_eq!(z.im.at4(0, 0, 0, 0), 2.0);
        assert_eq!(z.re.at4(0, 1, 0, 0), 3.0);
        assert_eq!(z.im.at4(0, 1, 0, 0), 0.0); // zero-padded
    }

    #[test]
    fn channel_remapping_is_lossy() {
        let x = Tensor::from_vec(&[1, 3, 1, 1], vec![1.0, 0.0, 1.0]);
        let y = Tensor::from_vec(&[1, 3, 1, 1], vec![0.0, 0.5, 0.5]);
        let zx = AssignmentKind::ChannelRemapping.apply(&x);
        let zy = AssignmentKind::ChannelRemapping.apply(&y);
        // Distinct RGB triples can collide after the 3->2 map... these two
        // don't, but the blue/red contrast is compressed:
        assert_eq!(zx.shape(), &[1, 1, 1, 1]);
        assert!(zx.re.at4(0, 0, 0, 0) != zy.re.at4(0, 0, 0, 0));
        // An actual collision: (1, 0, 1) vs (0.5, 0.5, 0.5) both map to
        // (0.5, 0.5).
        let w = Tensor::from_vec(&[1, 3, 1, 1], vec![0.5, 0.5, 0.5]);
        let zw = AssignmentKind::ChannelRemapping.apply(&w);
        assert_eq!(zx.re.at4(0, 0, 0, 0), zw.re.at4(0, 0, 0, 0));
        assert_eq!(zx.im.at4(0, 0, 0, 0), zw.im.at4(0, 0, 0, 0));
    }

    #[test]
    fn conventional_keeps_phase_zero() {
        let z = AssignmentKind::Conventional.apply(&toy_image());
        assert_eq!(z.shape(), &[1, 1, 4, 2]);
        assert_eq!(z.im.max_abs(), 0.0);
    }

    #[test]
    fn spatial_schemes_halve_element_count() {
        let x = toy_image();
        for kind in [
            AssignmentKind::SpatialInterlace,
            AssignmentKind::SpatialHalfHalf,
            AssignmentKind::SpatialSymmetric,
        ] {
            assert_eq!(kind.apply(&x).numel(), x.numel() / 2, "{kind}");
        }
    }

    #[test]
    fn output_shapes() {
        assert_eq!(
            AssignmentKind::SpatialInterlace.output_shape(1, 28, 28),
            (1, 14, 28)
        );
        assert_eq!(
            AssignmentKind::ChannelLossless.output_shape(3, 32, 32),
            (2, 32, 32)
        );
        assert_eq!(
            AssignmentKind::ChannelRemapping.output_shape(3, 32, 32),
            (1, 32, 32)
        );
        assert_eq!(
            AssignmentKind::ChannelLossless.output_shape(16, 8, 8),
            (8, 8, 8)
        );
    }

    #[test]
    #[should_panic(expected = "even height")]
    fn spatial_rejects_odd_height() {
        let x = Tensor::zeros(&[1, 1, 3, 4]);
        let _ = AssignmentKind::SpatialInterlace.apply(&x);
    }

    #[test]
    fn assignment_preserves_information_interlace_vs_remap() {
        // Interlace is invertible (both pixels recoverable); remapping is
        // not. Verify invertibility of interlace.
        let x = toy_image();
        let z = AssignmentKind::SpatialInterlace.apply(&x);
        let mut recovered = Tensor::zeros(&[1, 1, 4, 2]);
        for y in 0..2 {
            for xx in 0..2 {
                *recovered.at4_mut(0, 0, 2 * y, xx) = z.re.at4(0, 0, y, xx);
                *recovered.at4_mut(0, 0, 2 * y + 1, xx) = z.im.at4(0, 0, y, xx);
            }
        }
        assert_eq!(recovered, x);
    }

    #[test]
    fn short_names_match_figure8() {
        let names: Vec<&str> = AssignmentKind::all()
            .iter()
            .map(|k| k.short_name())
            .collect();
        assert_eq!(names, vec!["Conv", "SI", "SH", "SS", "CL", "CR"]);
    }
}
