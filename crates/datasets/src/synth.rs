//! Seeded synthetic image datasets.
//!
//! The paper evaluates on MNIST, CIFAR-10 and CIFAR-100, none of which are
//! available in this offline environment. The substitution (see DESIGN.md)
//! generates class-templated images whose *statistical structure* matches
//! what the paper's claims depend on:
//!
//! * **neighbouring-pixel correlation** (via per-class smooth templates and
//!   a final blur) — this is what makes *spatial interlace* beat *spatial
//!   symmetric* (Fig. 8): two adjacent pixels carry nearly the same value,
//!   so packing them into one complex number loses little;
//! * **cross-channel correlation** (a shared luminance pattern tinted per
//!   class) — this is what makes *channel lossless* viable and *channel
//!   remapping* lossy.
//!
//! Absolute accuracies differ from the paper's; orderings and gaps are the
//! reproduction target.

use oplix_nn::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled real-valued image dataset `[N, C, H, W]` with values in
/// `[0, 1]`.
#[derive(Clone, Debug)]
pub struct RealDataset {
    /// All images, batch-first.
    pub inputs: Tensor,
    /// One label per image.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl RealDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// `(channels, height, width)` of one sample.
    pub fn image_shape(&self) -> (usize, usize, usize) {
        let s = self.inputs.shape();
        (s[1], s[2], s[3])
    }
}

/// Configuration of the synthetic generators.
#[derive(Clone, Copy, Debug)]
pub struct SynthConfig {
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Number of classes.
    pub num_classes: usize,
    /// Samples to generate.
    pub samples: usize,
    /// Per-pixel Gaussian noise amplitude.
    pub noise: f32,
    /// RNG seed; train and test sets should use different seeds.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            height: 16,
            width: 16,
            num_classes: 10,
            samples: 512,
            noise: 0.06,
            seed: 0,
        }
    }
}

fn gauss<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// A smooth per-class template: a sum of a few Gaussian blobs plus one
/// oriented bar, all derived deterministically from `(class, template_seed)`.
fn class_template(class: usize, h: usize, w: usize, template_seed: u64) -> Vec<f32> {
    let mut rng =
        StdRng::seed_from_u64(template_seed.wrapping_mul(7919).wrapping_add(class as u64));
    let mut img = vec![0.0f32; h * w];
    // Blobs.
    let blobs = 3;
    for _ in 0..blobs {
        let cy = rng.gen_range(0.15..0.85) * h as f32;
        let cx = rng.gen_range(0.15..0.85) * w as f32;
        let sy = rng.gen_range(0.08..0.22) * h as f32;
        let sx = rng.gen_range(0.08..0.22) * w as f32;
        let amp = rng.gen_range(0.5..1.0);
        for y in 0..h {
            for x in 0..w {
                let dy = (y as f32 - cy) / sy;
                let dx = (x as f32 - cx) / sx;
                img[y * w + x] += amp * (-(dy * dy + dx * dx) / 2.0).exp();
            }
        }
    }
    // One oriented bar (angle fixed per class).
    let angle = class as f32 * std::f32::consts::PI / 7.3 + rng.gen_range(-0.1..0.1);
    let (s, c) = angle.sin_cos();
    let (cy, cx) = (h as f32 / 2.0, w as f32 / 2.0);
    for y in 0..h {
        for x in 0..w {
            let d = ((y as f32 - cy) * c - (x as f32 - cx) * s).abs();
            if d < 1.2 {
                img[y * w + x] += 0.8 * (1.2 - d);
            }
        }
    }
    // Normalise into [0, 1].
    let max = img.iter().cloned().fold(f32::MIN, f32::max).max(1e-6);
    for v in &mut img {
        *v = (*v / max).clamp(0.0, 1.0);
    }
    img
}

/// 3×3 binomial blur (weights 1-2-1 ⊗ 1-2-1) introducing neighbouring-pixel
/// correlation; edges are handled by clamping.
fn blur3(img: &[f32], h: usize, w: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; h * w];
    let k = [1.0f32, 2.0, 1.0];
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            let mut wsum = 0.0;
            for (dy, &ky) in k.iter().enumerate() {
                let yy = (y + dy).saturating_sub(1).min(h - 1);
                for (dx, &kx) in k.iter().enumerate() {
                    let xx = (x + dx).saturating_sub(1).min(w - 1);
                    acc += ky * kx * img[yy * w + xx];
                    wsum += ky * kx;
                }
            }
            out[y * w + x] = acc / wsum;
        }
    }
    out
}

/// Integer-pixel random shift with zero fill (data augmentation jitter that
/// also prevents the classes from being a single fixed pattern).
fn shift(img: &[f32], h: usize, w: usize, dy: isize, dx: isize) -> Vec<f32> {
    let mut out = vec![0.0f32; h * w];
    for y in 0..h {
        for x in 0..w {
            let sy = y as isize - dy;
            let sx = x as isize - dx;
            if sy >= 0 && sy < h as isize && sx >= 0 && sx < w as isize {
                out[y * w + x] = img[sy as usize * w + sx as usize];
            }
        }
    }
    out
}

/// Generates an MNIST-like single-channel dataset.
///
/// # Example
///
/// ```
/// use oplix_datasets::synth::{digits, SynthConfig};
///
/// let data = digits(&SynthConfig { samples: 20, ..Default::default() });
/// assert_eq!(data.len(), 20);
/// assert_eq!(data.image_shape(), (1, 16, 16));
/// ```
pub fn digits(cfg: &SynthConfig) -> RealDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let (h, w) = (cfg.height, cfg.width);
    let templates: Vec<Vec<f32>> = (0..cfg.num_classes)
        .map(|c| class_template(c, h, w, 1234))
        .collect();
    let mut inputs = Tensor::zeros(&[cfg.samples, 1, h, w]);
    let mut labels = Vec::with_capacity(cfg.samples);
    for i in 0..cfg.samples {
        let class = i % cfg.num_classes;
        labels.push(class);
        let dy = rng.gen_range(-1..=1);
        let dx = rng.gen_range(-1..=1);
        let mut img = shift(&templates[class], h, w, dy, dx);
        for v in &mut img {
            *v = (*v + cfg.noise * gauss(&mut rng)).clamp(0.0, 1.0);
        }
        let img = blur3(&img, h, w);
        inputs.as_mut_slice()[i * h * w..(i + 1) * h * w].copy_from_slice(&img);
    }
    RealDataset {
        inputs,
        labels,
        num_classes: cfg.num_classes,
    }
}

/// Generates a CIFAR-like three-channel dataset with strong cross-channel
/// correlation: a shared luminance template tinted by a per-class colour.
///
/// # Example
///
/// ```
/// use oplix_datasets::synth::{colors, SynthConfig};
///
/// let data = colors(&SynthConfig { samples: 12, ..Default::default() });
/// assert_eq!(data.image_shape(), (3, 16, 16));
/// ```
pub fn colors(cfg: &SynthConfig) -> RealDataset {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(99));
    let (h, w) = (cfg.height, cfg.width);
    let templates: Vec<Vec<f32>> = (0..cfg.num_classes)
        .map(|c| class_template(c, h, w, 4321))
        .collect();
    // Per-class tints, spread around the colour wheel and bounded away
    // from zero so every channel keeps signal.
    let tints: Vec<[f32; 3]> = (0..cfg.num_classes)
        .map(|c| {
            let t = c as f32 / cfg.num_classes as f32 * std::f32::consts::TAU;
            // Moderate saturation: enough tint to separate classes while
            // keeping the natural-image property that channels correlate.
            [
                0.65 + 0.25 * t.cos(),
                0.65 + 0.25 * (t + 2.1).cos(),
                0.65 + 0.25 * (t + 4.2).cos(),
            ]
        })
        .collect();

    let mut inputs = Tensor::zeros(&[cfg.samples, 3, h, w]);
    let mut labels = Vec::with_capacity(cfg.samples);
    for i in 0..cfg.samples {
        let class = i % cfg.num_classes;
        labels.push(class);
        let dy = rng.gen_range(-1..=1);
        let dx = rng.gen_range(-1..=1);
        let lum = shift(&templates[class], h, w, dy, dx);
        for ch in 0..3 {
            let mut img: Vec<f32> = lum
                .iter()
                .map(|&v| (v * tints[class][ch] + cfg.noise * gauss(&mut rng)).clamp(0.0, 1.0))
                .collect();
            img = blur3(&img, h, w);
            let base = (i * 3 + ch) * h * w;
            inputs.as_mut_slice()[base..base + h * w].copy_from_slice(&img);
        }
    }
    RealDataset {
        inputs,
        labels,
        num_classes: cfg.num_classes,
    }
}

/// Empirical correlation between vertically adjacent pixels over a dataset
/// — the statistic that justifies the spatial-interlace assignment.
pub fn adjacent_pixel_correlation(data: &RealDataset) -> f64 {
    let (c, h, w) = data.image_shape();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..data.len() {
        for ch in 0..c {
            for y in 0..h - 1 {
                for x in 0..w {
                    xs.push(data.inputs.at4(i, ch, y, x) as f64);
                    ys.push(data.inputs.at4(i, ch, y + 1, x) as f64);
                }
            }
        }
    }
    pearson(&xs, &ys)
}

/// Empirical correlation between pixel pairs related by 180° rotation —
/// the (weak) statistic behind spatial-symmetric assignment.
pub fn symmetric_pixel_correlation(data: &RealDataset) -> f64 {
    let (c, h, w) = data.image_shape();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..data.len() {
        for ch in 0..c {
            for y in 0..h / 2 {
                for x in 0..w {
                    xs.push(data.inputs.at4(i, ch, y, x) as f64);
                    ys.push(data.inputs.at4(i, ch, h - 1 - y, w - 1 - x) as f64);
                }
            }
        }
    }
    pearson(&xs, &ys)
}

/// Empirical correlation between the first two colour channels.
pub fn channel_correlation(data: &RealDataset) -> f64 {
    let (c, h, w) = data.image_shape();
    assert!(c >= 2, "channel correlation needs at least two channels");
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..data.len() {
        for y in 0..h {
            for x in 0..w {
                xs.push(data.inputs.at4(i, 0, y, x) as f64);
                ys.push(data.inputs.at4(i, 1, y, x) as f64);
            }
        }
    }
    pearson(&xs, &ys)
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    sxy / (sxx.sqrt() * syy.sqrt()).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_shape_and_determinism() {
        let cfg = SynthConfig {
            samples: 30,
            ..Default::default()
        };
        let a = digits(&cfg);
        let b = digits(&cfg);
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.image_shape(), (1, 16, 16));
    }

    #[test]
    fn different_seeds_differ() {
        let a = digits(&SynthConfig {
            samples: 10,
            seed: 1,
            ..Default::default()
        });
        let b = digits(&SynthConfig {
            samples: 10,
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a.inputs, b.inputs);
    }

    #[test]
    fn values_in_unit_interval() {
        let d = colors(&SynthConfig {
            samples: 20,
            ..Default::default()
        });
        for &v in d.inputs.as_slice() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn labels_cycle_through_classes() {
        let d = digits(&SynthConfig {
            samples: 25,
            num_classes: 5,
            ..Default::default()
        });
        assert_eq!(d.labels[0], 0);
        assert_eq!(d.labels[7], 2);
        assert_eq!(d.num_classes, 5);
    }

    #[test]
    fn adjacent_correlation_exceeds_symmetric() {
        // The statistical property the paper's Fig. 8 relies on: neighbours
        // are much more correlated than 180-degree partners.
        let d = digits(&SynthConfig {
            samples: 100,
            ..Default::default()
        });
        let adj = adjacent_pixel_correlation(&d);
        let sym = symmetric_pixel_correlation(&d);
        assert!(adj > 0.8, "adjacent correlation too weak: {adj}");
        assert!(adj > sym + 0.1, "adjacent {adj} vs symmetric {sym}");
    }

    #[test]
    fn colour_channels_are_correlated() {
        let d = colors(&SynthConfig {
            samples: 100,
            ..Default::default()
        });
        let cc = channel_correlation(&d);
        assert!(cc > 0.5, "channel correlation too weak: {cc}");
    }

    #[test]
    fn classes_are_distinguishable() {
        // Mean inter-class template distance must dominate intra-class
        // sample noise, otherwise no model can learn anything.
        let d = digits(&SynthConfig {
            samples: 200,
            ..Default::default()
        });
        let (c, h, w) = d.image_shape();
        let px = c * h * w;
        let mut means = vec![vec![0.0f64; px]; d.num_classes];
        let mut counts = vec![0usize; d.num_classes];
        for i in 0..d.len() {
            let cls = d.labels[i];
            counts[cls] += 1;
            for p in 0..px {
                means[cls][p] += d.inputs.as_slice()[i * px + p] as f64;
            }
        }
        for (m, &cnt) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= cnt as f64;
            }
        }
        let dist = |a: &[f64], b: &[f64]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        let mut min_inter = f64::MAX;
        for i in 0..d.num_classes {
            for j in i + 1..d.num_classes {
                min_inter = min_inter.min(dist(&means[i], &means[j]));
            }
        }
        assert!(min_inter > 0.5, "classes too close: {min_inter}");
    }
}
