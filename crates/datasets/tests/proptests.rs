//! Property-based tests for dataset generation and assignment schemes.

use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::{colors, digits, SynthConfig};
use oplix_nn::tensor::Tensor;
use proptest::prelude::*;

fn cfg(h: usize, w: usize, classes: usize, samples: usize, seed: u64) -> SynthConfig {
    SynthConfig {
        height: h,
        width: w,
        num_classes: classes,
        samples,
        seed,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn digits_respect_config(h in 2usize..10, w in 2usize..10, classes in 2usize..8, seed in 0u64..100) {
        let d = digits(&cfg(2 * h, 2 * w, classes, 3 * classes, seed));
        prop_assert_eq!(d.image_shape(), (1, 2 * h, 2 * w));
        prop_assert_eq!(d.len(), 3 * classes);
        prop_assert!(d.labels.iter().all(|&l| l < classes));
        prop_assert!(d.inputs.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn colors_have_three_channels(seed in 0u64..100) {
        let d = colors(&cfg(8, 8, 5, 10, seed));
        prop_assert_eq!(d.image_shape(), (3, 8, 8));
    }

    #[test]
    fn generation_is_deterministic(seed in 0u64..100) {
        let a = digits(&cfg(8, 8, 4, 12, seed));
        let b = digits(&cfg(8, 8, 4, 12, seed));
        prop_assert_eq!(a.inputs, b.inputs);
    }

    #[test]
    fn spatial_assignments_conserve_values(seed in 0u64..100) {
        // Every input pixel appears exactly once across (re, im) of the
        // assigned tensor for each spatial scheme.
        let d = digits(&cfg(8, 8, 4, 6, seed));
        let total_in: f64 = d.inputs.sum();
        for kind in [
            AssignmentKind::SpatialInterlace,
            AssignmentKind::SpatialHalfHalf,
            AssignmentKind::SpatialSymmetric,
        ] {
            let z = kind.apply(&d.inputs);
            let total_out = z.re.sum() + z.im.sum();
            prop_assert!((total_in - total_out).abs() < 1e-3, "{kind}: {total_in} vs {total_out}");
        }
    }

    #[test]
    fn channel_lossless_conserves_values(seed in 0u64..100) {
        let d = colors(&cfg(8, 8, 4, 6, seed));
        let total_in: f64 = d.inputs.sum();
        let z = AssignmentKind::ChannelLossless.apply(&d.inputs);
        let total_out = z.re.sum() + z.im.sum();
        prop_assert!((total_in - total_out).abs() < 1e-3);
    }

    #[test]
    fn assignment_shapes_match_output_shape(seed in 0u64..50) {
        let d = colors(&cfg(8, 8, 4, 4, seed));
        for kind in AssignmentKind::all() {
            let (c, h, w) = kind.output_shape(3, 8, 8);
            let z = kind.apply(&d.inputs);
            prop_assert_eq!(z.shape(), &[4, c, h, w], "{}", kind);
        }
    }

    #[test]
    fn flat_views_match_image_views(seed in 0u64..50) {
        let d = digits(&cfg(8, 8, 4, 4, seed));
        let img = AssignmentKind::SpatialInterlace.apply_dataset(&d);
        let flat = AssignmentKind::SpatialInterlace.apply_dataset_flat(&d);
        prop_assert_eq!(img.inputs.re.as_slice(), flat.inputs.re.as_slice());
        prop_assert_eq!(flat.inputs.shape().len(), 2);
    }
}

#[test]
fn interlace_is_invertible_half_half_is_too() {
    // Both schemes are permutations of the pixels into (re, im) pairs;
    // verify invertibility explicitly for a structured image.
    let x = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|v| v as f32).collect());
    for kind in [
        AssignmentKind::SpatialInterlace,
        AssignmentKind::SpatialHalfHalf,
    ] {
        let z = kind.apply(&x);
        let mut seen = [false; 16];
        for (&re, &im) in z.re.as_slice().iter().zip(z.im.as_slice()) {
            seen[re as usize] = true;
            seen[im as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{kind} dropped a pixel");
    }
}
