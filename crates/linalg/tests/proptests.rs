//! Property-based tests for the linear-algebra substrate.

use oplix_linalg::fft::{circular_convolve, dft_naive, fft, ifft};
use oplix_linalg::qr::qr;
use oplix_linalg::svd::{nearest_unitary, svd};
use oplix_linalg::{CMatrix, Complex64};
use proptest::prelude::*;

fn complex_strategy() -> impl Strategy<Value = Complex64> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| Complex64::new(re, im))
}

fn cmatrix_strategy(max_dim: usize) -> impl Strategy<Value = CMatrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(m, n)| {
        proptest::collection::vec(complex_strategy(), m * n)
            .prop_map(move |data| CMatrix::from_fn(m, n, |i, j| data[i * n + j]))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_mul_commutes(a in complex_strategy(), b in complex_strategy()) {
        prop_assert!((a * b - b * a).abs() < 1e-9);
    }

    #[test]
    fn complex_mul_distributes(a in complex_strategy(), b in complex_strategy(), c in complex_strategy()) {
        prop_assert!((a * (b + c) - (a * b + a * c)).abs() < 1e-8);
    }

    #[test]
    fn complex_abs_is_multiplicative(a in complex_strategy(), b in complex_strategy()) {
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-8);
    }

    #[test]
    fn conjugation_is_ring_homomorphism(a in complex_strategy(), b in complex_strategy()) {
        prop_assert!(((a * b).conj() - a.conj() * b.conj()).abs() < 1e-9);
        prop_assert!(((a + b).conj() - (a.conj() + b.conj())).abs() < 1e-9);
    }

    #[test]
    fn qr_reconstructs(a in cmatrix_strategy(6)) {
        let (q, r) = qr(&a);
        prop_assert!(q.is_unitary(1e-8));
        prop_assert!(q.matmul(&r).max_abs_diff(&a) < 1e-7 * (1.0 + a.frobenius_norm()));
    }

    #[test]
    fn svd_reconstructs_and_factors_are_unitary(a in cmatrix_strategy(6)) {
        let f = svd(&a);
        prop_assert!(f.u.is_unitary(1e-8));
        prop_assert!(f.v.is_unitary(1e-8));
        prop_assert!(f.reconstruct().max_abs_diff(&a) < 1e-7 * (1.0 + a.frobenius_norm()));
        for w in f.s.windows(2) {
            prop_assert!(w[0] + 1e-9 >= w[1]);
        }
    }

    #[test]
    fn svd_frobenius_identity(a in cmatrix_strategy(6)) {
        // ||A||_F^2 == sum of squared singular values.
        let f = svd(&a);
        let fro = a.frobenius_norm().powi(2);
        let ssq: f64 = f.s.iter().map(|s| s * s).sum();
        prop_assert!((fro - ssq).abs() < 1e-6 * (1.0 + fro));
    }

    #[test]
    fn nearest_unitary_is_idempotent(a in cmatrix_strategy(5)) {
        prop_assume!(a.rows() == a.cols());
        let f = svd(&a);
        // Skip near-singular inputs where the polar factor is ill-defined.
        prop_assume!(f.s.last().copied().unwrap_or(0.0) > 1e-6);
        let p = nearest_unitary(&a);
        prop_assert!(p.is_unitary(1e-8));
        let p2 = nearest_unitary(&p);
        prop_assert!(p.max_abs_diff(&p2) < 1e-7);
    }

    #[test]
    fn fft_matches_dft(x in proptest::collection::vec(complex_strategy(), 1..=5)) {
        // Round the length up to a power of two by zero-padding.
        let n = x.len().next_power_of_two();
        let mut padded = x.clone();
        padded.resize(n, Complex64::ZERO);
        let expect = dft_naive(&padded);
        let mut got = padded.clone();
        fft(&mut got);
        for (a, b) in got.iter().zip(&expect) {
            prop_assert!((*a - *b).abs() < 1e-8);
        }
    }

    #[test]
    fn fft_round_trip(x in proptest::collection::vec(complex_strategy(), 8..=8)) {
        let mut y = x.clone();
        fft(&mut y);
        ifft(&mut y);
        for (a, b) in y.iter().zip(&x) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn convolution_commutes(
        w in proptest::collection::vec(complex_strategy(), 8..=8),
        x in proptest::collection::vec(complex_strategy(), 8..=8),
    ) {
        let wx = circular_convolve(&w, &x);
        let xw = circular_convolve(&x, &w);
        for (a, b) in wx.iter().zip(&xw) {
            prop_assert!((*a - *b).abs() < 1e-8);
        }
    }

    #[test]
    fn unitary_products_stay_unitary(seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = CMatrix::random_unitary(4, &mut rng);
        let b = CMatrix::random_unitary(4, &mut rng);
        prop_assert!(a.matmul(&b).is_unitary(1e-8));
    }
}
