//! Complex linear-algebra substrate for the OplixNet reproduction.
//!
//! Optical neural networks are fundamentally complex-valued: light carries an
//! amplitude and a phase, MZI meshes implement complex unitaries, and weight
//! matrices are mapped onto hardware through a singular value decomposition
//! `W = U Σ V*`. This crate provides everything the photonic layers above it
//! need, with no external linear-algebra dependency:
//!
//! * [`Complex64`] — a self-contained double-precision complex scalar
//!   (the `num-complex` crate is outside the allowed dependency set).
//! * [`CMatrix`] — dense row-major complex matrices with multiplication,
//!   Hermitian transpose, norms and unitarity checks.
//! * [`Matrix`] — dense real (`f64`) matrices, convertible to [`CMatrix`].
//! * [`qr`] — Householder QR factorisation and unitary basis completion.
//! * [`svd`] — one-sided Jacobi SVD for complex (and hence real) matrices.
//! * [`fft`] — radix-2 FFT used by the OFFT baseline.
//! * [`gemm`] — the shared cache-blocked GEMM kernel every dense product
//!   in the workspace (real, complex, and the `f32` training tensors)
//!   runs through, with transpose-free `NT`/`TN` layouts.
//! * [`lanes`] — the portable array-of-lanes SIMD primitives (no-FMA,
//!   bitwise-by-construction) the GEMM micro-kernel and the compiled mesh
//!   sweep are written against.
//!
//! # Example
//!
//! ```
//! use oplix_linalg::{CMatrix, Complex64, svd::svd};
//!
//! let a = CMatrix::from_fn(3, 2, |i, j| Complex64::new((i + j) as f64, i as f64));
//! let f = svd(&a);
//! let err = f.reconstruct().max_abs_diff(&a);
//! assert!(err < 1e-9);
//! ```

pub mod complex;
pub mod fft;
pub mod gemm;
pub mod lanes;
pub mod matrix;
pub mod qr;
pub mod svd;

pub use complex::Complex64;
pub use matrix::{CMatrix, Matrix};
pub use svd::Svd;

/// Convenience alias used throughout the workspace for approximate
/// floating-point comparisons in tests.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}
