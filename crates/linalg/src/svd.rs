//! One-sided Jacobi singular value decomposition for complex matrices.
//!
//! Deploying a trained weight matrix onto an MZI-based ONN requires
//! `W = U Σ V*` (paper §II-A): the unitaries `U` and `V*` become MZI meshes
//! and `Σ` becomes a column of optical attenuators/amplifiers. The Jacobi
//! method is chosen because it is simple, numerically robust, and its
//! convergence is easy to property-test; the matrices mapped onto photonic
//! hardware are small enough that asymptotic speed is irrelevant.

use crate::complex::Complex64;
use crate::matrix::{CMatrix, Matrix};
use crate::qr::complete_unitary;

/// The result of a singular value decomposition `A = U Σ V*`.
///
/// `U` is `m×m` unitary, `V` is `n×n` unitary and `Σ` is the `m×n`
/// rectangular diagonal of the `min(m,n)` non-negative singular values in
/// non-increasing order — exactly the three photonic stages of an SVD-based
/// ONN layer.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors, `m×m` unitary.
    pub u: CMatrix,
    /// Singular values, length `min(m, n)`, non-increasing, non-negative.
    pub s: Vec<f64>,
    /// Right singular vectors, `n×n` unitary (not conjugated).
    pub v: CMatrix,
}

impl Svd {
    /// Rebuilds `U Σ V*`; useful for round-trip testing.
    pub fn reconstruct(&self) -> CMatrix {
        let m = self.u.rows();
        let n = self.v.rows();
        let sigma = CMatrix::diag_rect(m, n, &self.s);
        self.u.matmul(&sigma).matmul(&self.v.hermitian())
    }

    /// The largest singular value (spectral norm), or `0` for empty input.
    pub fn spectral_norm(&self) -> f64 {
        self.s.first().copied().unwrap_or(0.0)
    }
}

/// Maximum number of Jacobi sweeps before giving up. Convergence is
/// typically reached in well under 20 sweeps for the matrix sizes used by
/// the photonic mapper.
const MAX_SWEEPS: usize = 64;

/// Computes the SVD of a complex matrix using one-sided Jacobi rotations.
///
/// # Example
///
/// ```
/// use oplix_linalg::{CMatrix, Complex64, svd::svd};
///
/// let a = CMatrix::from_fn(2, 2, |i, j| Complex64::new((2 * i + j) as f64, 1.0));
/// let f = svd(&a);
/// assert!(f.u.is_unitary(1e-10));
/// assert!(f.v.is_unitary(1e-10));
/// assert!(f.reconstruct().max_abs_diff(&a) < 1e-9);
/// ```
pub fn svd(a: &CMatrix) -> Svd {
    let m = a.rows();
    let n = a.cols();
    if m < n {
        // Work on the Hermitian transpose and swap the factors:
        // A^H = U' Σ V'^H  =>  A = V' Σ U'^H.
        let f = svd(&a.hermitian());
        return Svd {
            u: f.v,
            s: f.s,
            v: f.u,
        };
    }

    // One-sided Jacobi: iteratively make the columns of `work` mutually
    // orthogonal; the rotations accumulate into V.
    let mut work = a.clone();
    let mut v = CMatrix::identity(n);
    let tol = 1e-14;

    for _ in 0..MAX_SWEEPS {
        let mut off_diagonal = false;
        for p in 0..n {
            for q in (p + 1)..n {
                // Column inner products.
                let mut alpha = 0.0;
                let mut beta = 0.0;
                let mut gamma = Complex64::ZERO;
                for i in 0..m {
                    let ap = work[(i, p)];
                    let aq = work[(i, q)];
                    alpha += ap.norm_sqr();
                    beta += aq.norm_sqr();
                    gamma += ap.conj() * aq;
                }
                let g = gamma.abs();
                if g <= tol * (alpha * beta).sqrt() || g == 0.0 {
                    continue;
                }
                off_diagonal = true;

                // Absorb the phase of gamma into column q, reducing the 2x2
                // problem to the real symmetric case [[alpha, g], [g, beta]].
                let phase = gamma.unit_phase(); // e^{i psi}
                let zeta = (beta - alpha) / (2.0 * g);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;

                // Column update: [a_p', a_q'] = [a_p, a_q] * M with
                // M = [[c, s], [-s * conj(phase), c * conj(phase)]].
                let m11 = Complex64::from_real(c);
                let m12 = Complex64::from_real(s);
                let m21 = -phase.conj().scale(s);
                let m22 = phase.conj().scale(c);
                for i in 0..m {
                    let ap = work[(i, p)];
                    let aq = work[(i, q)];
                    work[(i, p)] = ap * m11 + aq * m21;
                    work[(i, q)] = ap * m12 + aq * m22;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = vp * m11 + vq * m21;
                    v[(i, q)] = vp * m12 + vq * m22;
                }
            }
        }
        if !off_diagonal {
            break;
        }
    }

    // Extract singular values and left singular vectors.
    let mut sigma: Vec<f64> = (0..n)
        .map(|j| (0..m).map(|i| work[(i, j)].norm_sqr()).sum::<f64>().sqrt())
        .collect();

    // Sort in non-increasing order of sigma, permuting columns of work & V.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| {
        sigma[y]
            .partial_cmp(&sigma[x])
            .expect("non-NaN singular values")
    });
    let work_sorted = CMatrix::from_fn(m, n, |i, j| work[(i, order[j])]);
    let v_sorted = CMatrix::from_fn(n, n, |i, j| v[(i, order[j])]);
    sigma = order.iter().map(|&j| sigma[j]).collect();

    // Normalise the non-negligible columns into left singular vectors.
    let smax = sigma.first().copied().unwrap_or(0.0);
    let rank_tol = smax * 1e-13;
    let mut u_cols: Vec<Vec<Complex64>> = Vec::new();
    for (j, &s_j) in sigma.iter().enumerate() {
        if s_j > rank_tol && s_j > 0.0 {
            u_cols.push(
                (0..m)
                    .map(|i| work_sorted[(i, j)].scale(1.0 / s_j))
                    .collect(),
            );
        }
    }
    let u = complete_unitary(&u_cols, m);

    Svd {
        u,
        s: sigma,
        v: v_sorted,
    }
}

/// Computes the SVD of a real matrix by lifting it to complex form.
///
/// The factors generally remain complex-valued only up to phases; for the
/// photonic mapper this is irrelevant because the meshes are complex anyway.
pub fn svd_real(a: &Matrix) -> Svd {
    svd(&a.to_cmatrix())
}

/// Projects a square complex matrix onto the nearest unitary (in Frobenius
/// norm) via the polar decomposition `A = (U V*) (V Σ V*)`.
///
/// Used by the *unitary decoder* of the paper's Fig. 6(b): after each
/// optimiser step the decoder weight is re-projected so that it stays
/// implementable as a pure MZI array (no attenuators).
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn nearest_unitary(a: &CMatrix) -> CMatrix {
    assert_eq!(
        a.rows(),
        a.cols(),
        "nearest_unitary requires a square matrix"
    );
    let f = svd(a);
    f.u.matmul(&f.v.hermitian())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cmatrix(m: usize, n: usize, seed: u64) -> CMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        CMatrix::from_fn(m, n, |_, _| {
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    fn check_svd(a: &CMatrix, tol: f64) {
        let f = svd(a);
        assert!(f.u.is_unitary(1e-9), "U not unitary");
        assert!(f.v.is_unitary(1e-9), "V not unitary");
        assert!(
            f.reconstruct().max_abs_diff(a) < tol,
            "reconstruction error too large: {}",
            f.reconstruct().max_abs_diff(a)
        );
        // Non-increasing, non-negative singular values.
        for w in f.s.windows(2) {
            assert!(w[0] + 1e-12 >= w[1], "singular values not sorted");
        }
        assert!(f.s.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn svd_square() {
        check_svd(&random_cmatrix(5, 5, 1), 1e-9);
    }

    #[test]
    fn svd_tall() {
        check_svd(&random_cmatrix(8, 3, 2), 1e-9);
    }

    #[test]
    fn svd_wide() {
        check_svd(&random_cmatrix(3, 8, 3), 1e-9);
    }

    #[test]
    fn svd_rank_deficient() {
        // Outer product => rank 1.
        let u = random_cmatrix(6, 1, 4);
        let v = random_cmatrix(1, 5, 5);
        let a = u.matmul(&v);
        let f = svd(&a);
        assert!(f.u.is_unitary(1e-9));
        assert!(f.v.is_unitary(1e-9));
        assert!(f.reconstruct().max_abs_diff(&a) < 1e-9);
        // Exactly one non-negligible singular value.
        assert!(f.s[0] > 1e-6);
        for &s in &f.s[1..] {
            assert!(s < 1e-9 * f.s[0].max(1.0));
        }
    }

    #[test]
    fn svd_zero_matrix() {
        let a = CMatrix::zeros(4, 3);
        let f = svd(&a);
        assert!(f.u.is_unitary(1e-9));
        assert!(f.v.is_unitary(1e-9));
        assert!(f.s.iter().all(|&s| s == 0.0));
        assert!(f.reconstruct().max_abs_diff(&a) < 1e-12);
    }

    #[test]
    fn svd_identity() {
        let a = CMatrix::identity(4);
        let f = svd(&a);
        for &s in &f.s {
            assert!((s - 1.0).abs() < 1e-10);
        }
        assert!(f.reconstruct().max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn svd_of_unitary_has_unit_singular_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = CMatrix::random_unitary(6, &mut rng);
        let f = svd(&a);
        for &s in &f.s {
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn svd_real_matrix() {
        let a = Matrix::from_rows(&[vec![4.0, 0.0], vec![3.0, -5.0]]);
        let f = svd_real(&a);
        assert!(f.reconstruct().max_abs_diff(&a.to_cmatrix()) < 1e-9);
        // Known singular values of [[4,0],[3,-5]]: sqrt(20+...)  just check
        // the product equals |det| = 20 and the frobenius matches.
        let prod: f64 = f.s.iter().product();
        assert!((prod - 20.0).abs() < 1e-8);
        let fro: f64 = f.s.iter().map(|s| s * s).sum();
        assert!((fro - 50.0).abs() < 1e-8);
    }

    #[test]
    fn nearest_unitary_is_unitary_and_close() {
        let mut rng = StdRng::seed_from_u64(21);
        let u = CMatrix::random_unitary(5, &mut rng);
        // Perturb slightly off unitary.
        let noise = random_cmatrix(5, 5, 22).scale(Complex64::from_real(0.01));
        let a = u.add(&noise);
        let p = nearest_unitary(&a);
        assert!(p.is_unitary(1e-9));
        assert!(p.max_abs_diff(&u) < 0.1);
    }

    #[test]
    fn spectral_norm_matches_definition() {
        let a = random_cmatrix(4, 4, 33);
        let f = svd(&a);
        // ||A x|| <= sigma_max ||x|| with equality for the top right vector.
        let x = f.v.col(0);
        let y = a.mul_vec(&x);
        let ny: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        assert!((ny - f.spectral_norm()).abs() < 1e-9);
    }
}
