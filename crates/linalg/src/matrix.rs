//! Dense row-major matrices over `f64` and [`Complex64`].
//!
//! These are deliberately simple, allocation-friendly containers: the
//! matrices that flow through an MZI mesh simulator are small (a mesh of
//! dimension `n` is an `n×n` unitary with `n` rarely above a few hundred),
//! so a straightforward triple loop with the inner dimension contiguous is
//! both fast enough and easy to audit.

use crate::complex::Complex64;
use rand::Rng;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major real matrix.
///
/// # Example
///
/// ```
/// use oplix_linalg::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have the same length"
        );
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.concat(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix product `self · rhs`, through the workspace's shared
    /// cache-blocked kernel ([`crate::gemm::gemm`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matmul");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        crate::gemm::gemm(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        (0..self.rows)
            .map(|i| {
                self.data[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .zip(x)
                    .map(|(a, b)| a * b)
                    .sum()
            })
            .collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute element-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Lifts the real matrix into a complex one with zero imaginary part.
    pub fn to_cmatrix(&self) -> CMatrix {
        CMatrix::from_fn(self.rows, self.cols, |i, j| {
            Complex64::from_real(self[(i, j)])
        })
    }

    /// Fills a matrix with i.i.d. samples from `rng` in `[-scale, scale)`.
    pub fn random_uniform<R: Rng>(rows: usize, cols: usize, scale: f64, rng: &mut R) -> Self {
        Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-scale..scale))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.6} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A dense, row-major complex matrix.
///
/// # Example
///
/// ```
/// use oplix_linalg::{CMatrix, Complex64};
///
/// let u = CMatrix::identity(3);
/// assert!(u.is_unitary(1e-12));
/// assert_eq!(u.mul_vec(&[Complex64::ONE; 3]).len(), 3);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> Complex64>(
        rows: usize,
        cols: usize,
        mut f: F,
    ) -> Self {
        let mut m = CMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<Complex64>]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have the same length"
        );
        CMatrix {
            rows: rows.len(),
            cols,
            data: rows.concat(),
        }
    }

    /// A rectangular diagonal matrix with the given (real) diagonal values.
    pub fn diag_rect(rows: usize, cols: usize, diag: &[f64]) -> Self {
        let mut m = CMatrix::zeros(rows, cols);
        for (i, &d) in diag.iter().enumerate().take(rows.min(cols)) {
            m[(i, i)] = Complex64::from_real(d);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable access to the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// A view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[Complex64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<Complex64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Matrix product `self · rhs`, through the workspace's shared
    /// cache-blocked kernel ([`crate::gemm::gemm`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matmul");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        crate::gemm::gemm(
            self.rows,
            self.cols,
            rhs.cols,
            &self.data,
            &rhs.data,
            &mut out.data,
        );
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch in mul_vec");
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(x)
                    .map(|(&a, &b)| a * b)
                    .sum::<Complex64>()
            })
            .collect()
    }

    /// Plain transpose (no conjugation).
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Hermitian (conjugate) transpose `A*`.
    pub fn hermitian(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest absolute element-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &CMatrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether `A* A = I` to within `tol` (element-wise).
    pub fn is_unitary(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let prod = self.hermitian().matmul(self);
        prod.max_abs_diff(&CMatrix::identity(self.rows)) <= tol
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let mut out = self.clone();
        for (o, &b) in out.data.iter_mut().zip(&rhs.data) {
            *o += b;
        }
        out
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let mut out = self.clone();
        for (o, &b) in out.data.iter_mut().zip(&rhs.data) {
            *o -= b;
        }
        out
    }

    /// Scales every entry by a complex factor.
    pub fn scale(&self, k: Complex64) -> CMatrix {
        let mut out = self.clone();
        for v in &mut out.data {
            *v *= k;
        }
        out
    }

    /// Real part as a real matrix.
    pub fn real(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)].re)
    }

    /// Imaginary part as a real matrix.
    pub fn imag(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| self[(i, j)].im)
    }

    /// A Haar-ish random unitary obtained by QR-orthonormalising a matrix of
    /// i.i.d. Gaussian entries. Exactly unitary up to floating-point error.
    pub fn random_unitary<R: Rng>(n: usize, rng: &mut R) -> CMatrix {
        let gauss = |rng: &mut R| {
            // Box–Muller transform; `rand` is allowed but `rand_distr` is not.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        };
        let a = CMatrix::from_fn(n, n, |_, _| Complex64::new(gauss(rng), gauss(rng)));
        let (q, r) = crate::qr::qr(&a);
        // Normalise column phases so that the distribution is Haar-like:
        // multiply each column of Q by the phase of the corresponding
        // diagonal of R.
        let mut q = q;
        for j in 0..n {
            let ph = r[(j, j)].unit_phase();
            for i in 0..n {
                q[(i, j)] *= ph;
            }
        }
        q
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                let z = self[(i, j)];
                write!(f, "({:>9.5},{:>9.5}) ", z.re, z.im)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn real_matmul_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let id = Matrix::identity(3);
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn real_matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn real_mul_vec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn real_transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn complex_hermitian_conjugates() {
        let a = CMatrix::from_fn(2, 3, |i, j| Complex64::new(i as f64, j as f64));
        let h = a.hermitian();
        assert_eq!(h.rows(), 3);
        assert_eq!(h[(2, 1)], Complex64::new(1.0, -2.0));
    }

    #[test]
    fn complex_matmul_associative() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = CMatrix::random_unitary(4, &mut rng);
        let b = CMatrix::random_unitary(4, &mut rng);
        let c = CMatrix::random_unitary(4, &mut rng);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert!(left.max_abs_diff(&right) < 1e-10);
    }

    #[test]
    fn random_unitary_is_unitary() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1, 2, 3, 5, 8, 16] {
            let u = CMatrix::random_unitary(n, &mut rng);
            assert!(u.is_unitary(1e-9), "n = {n} not unitary");
        }
    }

    #[test]
    fn unitary_preserves_norm() {
        let mut rng = StdRng::seed_from_u64(3);
        let u = CMatrix::random_unitary(6, &mut rng);
        let x: Vec<Complex64> = (0..6).map(|k| Complex64::new(k as f64, -1.0)).collect();
        let y = u.mul_vec(&x);
        let nx: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ny: f64 = y.iter().map(|z| z.norm_sqr()).sum();
        assert!((nx - ny).abs() < 1e-9);
    }

    #[test]
    fn diag_rect_places_diagonal() {
        let d = CMatrix::diag_rect(3, 2, &[2.0, 5.0]);
        assert_eq!(d[(0, 0)], Complex64::from_real(2.0));
        assert_eq!(d[(1, 1)], Complex64::from_real(5.0));
        assert_eq!(d[(2, 0)], Complex64::ZERO);
    }

    #[test]
    fn non_square_is_not_unitary() {
        let a = CMatrix::zeros(2, 3);
        assert!(!a.is_unitary(1e-9));
    }

    #[test]
    fn real_to_cmatrix_round_trip() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 4.0]]);
        let c = a.to_cmatrix();
        assert_eq!(c.real(), a);
        assert_eq!(c.imag(), Matrix::zeros(2, 2));
    }
}
