//! Householder QR factorisation for complex matrices and unitary basis
//! completion.
//!
//! QR is used in two places by the photonic stack:
//!
//! * generating exactly-unitary random test matrices
//!   ([`CMatrix::random_unitary`]), and
//! * completing the economy singular-vector blocks returned by the Jacobi
//!   SVD to full square unitaries, which is what an MZI mesh physically
//!   implements.
//!
//! [`CMatrix::random_unitary`]: crate::CMatrix::random_unitary

use crate::complex::Complex64;
use crate::matrix::CMatrix;

/// Householder QR factorisation `A = Q R` with `Q` square unitary (`m×m`)
/// and `R` upper trapezoidal (`m×n`).
///
/// # Example
///
/// ```
/// use oplix_linalg::{CMatrix, Complex64, qr::qr};
///
/// let a = CMatrix::from_fn(4, 3, |i, j| Complex64::new(i as f64 - j as f64, 1.0));
/// let (q, r) = qr(&a);
/// assert!(q.is_unitary(1e-10));
/// assert!(q.matmul(&r).max_abs_diff(&a) < 1e-10);
/// ```
pub fn qr(a: &CMatrix) -> (CMatrix, CMatrix) {
    let m = a.rows();
    let n = a.cols();
    let mut r = a.clone();
    let mut q = CMatrix::identity(m);

    for k in 0..n.min(m.saturating_sub(1)) {
        // Householder vector for the k-th column below the diagonal.
        let x: Vec<Complex64> = (k..m).map(|i| r[(i, k)]).collect();
        let norm_x = x.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if norm_x == 0.0 {
            continue;
        }
        // alpha = -e^{i arg(x0)} * ||x|| guarantees v^H x is real positive,
        // which makes H = I - 2 v v^H / (v^H v) map x onto alpha * e1.
        let phase = x[0].unit_phase();
        let alpha = -phase * norm_x;
        let mut v = x;
        v[0] -= alpha;
        let vnorm_sqr: f64 = v.iter().map(|z| z.norm_sqr()).sum();
        if vnorm_sqr == 0.0 {
            continue;
        }
        let tau = 2.0 / vnorm_sqr;

        // R <- H R, applied only to the trailing block.
        for j in k..n {
            let dot: Complex64 = v
                .iter()
                .enumerate()
                .map(|(t, &vt)| vt.conj() * r[(k + t, j)])
                .sum();
            let f = dot.scale(tau);
            for (t, &vt) in v.iter().enumerate() {
                let upd = vt * f;
                r[(k + t, j)] -= upd;
            }
        }
        // Q <- Q H (H is Hermitian, so accumulating on the right builds
        // Q = H_0 H_1 ... H_{n-1}).
        for i in 0..m {
            let dot: Complex64 = v
                .iter()
                .enumerate()
                .map(|(t, &vt)| q[(i, k + t)] * vt)
                .sum();
            let f = dot.scale(tau);
            for (t, &vt) in v.iter().enumerate() {
                let upd = f * vt.conj();
                q[(i, k + t)] -= upd;
            }
        }
    }
    // Zero out the strictly-lower part of R to remove round-off residue.
    for i in 0..m {
        for j in 0..n.min(i) {
            r[(i, j)] = Complex64::ZERO;
        }
    }
    (q, r)
}

/// Completes a set of orthonormal columns to a full `n×n` unitary.
///
/// The first `cols.len()` columns of the result are the inputs (in order);
/// the remaining columns are obtained by Gram–Schmidt orthogonalisation of
/// canonical basis vectors.
///
/// This is exactly the freedom an ONN designer has when a weight matrix is
/// rank deficient: the missing singular vectors can be chosen arbitrarily
/// without changing the implemented linear map.
///
/// # Panics
///
/// Panics if any input column does not have length `n`, if more than `n`
/// columns are supplied, or if the inputs are too far from orthonormal for
/// completion to succeed.
///
/// # Example
///
/// ```
/// use oplix_linalg::{Complex64, qr::complete_unitary};
///
/// let e0 = vec![Complex64::ONE, Complex64::ZERO, Complex64::ZERO];
/// let u = complete_unitary(&[e0], 3);
/// assert!(u.is_unitary(1e-10));
/// ```
pub fn complete_unitary(cols: &[Vec<Complex64>], n: usize) -> CMatrix {
    assert!(cols.len() <= n, "more columns than the target dimension");
    for c in cols {
        assert_eq!(c.len(), n, "column length must equal target dimension");
    }
    let mut basis: Vec<Vec<Complex64>> = cols.to_vec();
    let mut cand = 0usize;
    while basis.len() < n {
        assert!(
            cand < n,
            "failed to complete unitary basis: inputs were not orthonormal"
        );
        // Candidate canonical vector e_cand.
        let mut v = vec![Complex64::ZERO; n];
        v[cand] = Complex64::ONE;
        cand += 1;
        // Modified Gram–Schmidt against the current basis (twice, for
        // numerical robustness).
        for _ in 0..2 {
            for b in &basis {
                let dot: Complex64 = b.iter().zip(&v).map(|(&bi, &vi)| bi.conj() * vi).sum();
                for (vi, &bi) in v.iter_mut().zip(b) {
                    *vi -= dot * bi;
                }
            }
        }
        let norm = v.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if norm > 1e-7 {
            for z in &mut v {
                *z = z.scale(1.0 / norm);
            }
            basis.push(v);
        }
    }
    CMatrix::from_fn(n, n, |i, j| basis[j][i])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_cmatrix(m: usize, n: usize, seed: u64) -> CMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        CMatrix::from_fn(m, n, |_, _| {
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    #[test]
    fn qr_reconstructs_square() {
        let a = random_cmatrix(5, 5, 1);
        let (q, r) = qr(&a);
        assert!(q.is_unitary(1e-10));
        assert!(q.matmul(&r).max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn qr_reconstructs_tall() {
        let a = random_cmatrix(7, 3, 2);
        let (q, r) = qr(&a);
        assert!(q.is_unitary(1e-10));
        assert!(q.matmul(&r).max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn qr_reconstructs_wide() {
        let a = random_cmatrix(3, 6, 3);
        let (q, r) = qr(&a);
        assert!(q.is_unitary(1e-10));
        assert!(q.matmul(&r).max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = random_cmatrix(5, 4, 4);
        let (_, r) = qr(&a);
        for i in 0..5 {
            for j in 0..4.min(i) {
                assert_eq!(r[(i, j)], Complex64::ZERO);
            }
        }
    }

    #[test]
    fn qr_handles_zero_column() {
        let mut a = random_cmatrix(4, 4, 5);
        for i in 0..4 {
            a[(i, 1)] = Complex64::ZERO;
        }
        let (q, r) = qr(&a);
        assert!(q.matmul(&r).max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn complete_unitary_from_orthonormal_pair() {
        let mut rng = StdRng::seed_from_u64(9);
        let u = CMatrix::random_unitary(5, &mut rng);
        let cols = vec![u.col(0), u.col(1)];
        let full = complete_unitary(&cols, 5);
        assert!(full.is_unitary(1e-9));
        // First two columns preserved.
        for i in 0..5 {
            assert!((full[(i, 0)] - u[(i, 0)]).abs() < 1e-12);
            assert!((full[(i, 1)] - u[(i, 1)]).abs() < 1e-12);
        }
    }

    #[test]
    fn complete_unitary_from_nothing_gives_identityish() {
        let full = complete_unitary(&[], 4);
        assert!(full.is_unitary(1e-10));
    }
}
