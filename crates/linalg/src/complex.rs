//! A self-contained double-precision complex number.
//!
//! The workspace is restricted to a small set of external crates which does
//! not include `num-complex`, so the photonic simulator carries its own
//! complex scalar. Only the operations actually used by the workspace are
//! provided, but those are provided carefully (NaN-free `arg` at the origin,
//! stable `abs` via `hypot`).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` in double precision.
///
/// # Example
///
/// ```
/// use oplix_linalg::Complex64;
///
/// let a = Complex64::new(1.0, 2.0);
/// let b = Complex64::i();
/// assert_eq!(a * b, Complex64::new(-2.0, 1.0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// The imaginary unit `i`.
    #[inline]
    pub const fn i() -> Self {
        Complex64 { re: 0.0, im: 1.0 }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    ///
    /// This is the natural representation of a light pulse with amplitude
    /// `r` and phase `theta`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64 {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `e^{iθ}` — a unit-modulus phasor, the transfer function of an ideal
    /// phase shifter.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Modulus `|z|`, computed with `hypot` for numerical stability.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²` — the quantity a photodiode measures.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in `(-π, π]`. Returns `0` at the origin.
    #[inline]
    pub fn arg(self) -> f64 {
        if self.re == 0.0 && self.im == 0.0 {
            0.0
        } else {
            self.im.atan2(self.re)
        }
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// # Panics
    ///
    /// Does not panic; dividing by zero yields infinities like `f64`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Whether both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Returns the unit phasor `z/|z|`, or `1` if `z == 0`.
    #[inline]
    pub fn unit_phase(self) -> Self {
        let a = self.abs();
        if a == 0.0 {
            Complex64::ONE
        } else {
            self.scale(1.0 / a)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert!(close(z + Complex64::ZERO, z));
        assert!(close(z * Complex64::ONE, z));
        assert!(close(z - z, Complex64::ZERO));
        assert!(close(z * z.inv(), Complex64::ONE));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert!(close(
            Complex64::i() * Complex64::i(),
            Complex64::from_real(-1.0)
        ));
    }

    #[test]
    fn abs_and_norm_sqr() {
        let z = Complex64::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < 1e-12);
        assert!((z.norm_sqr() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.5, 1.2);
        assert!((z.abs() - 2.5).abs() < 1e-12);
        assert!((z.arg() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn arg_at_origin_is_zero() {
        assert_eq!(Complex64::ZERO.arg(), 0.0);
    }

    #[test]
    fn cis_quarter_turn() {
        let z = Complex64::cis(FRAC_PI_2);
        assert!(close(z, Complex64::i()));
    }

    #[test]
    fn conj_negates_imag() {
        let z = Complex64::new(1.0, 2.0);
        assert_eq!(z.conj(), Complex64::new(1.0, -2.0));
        assert!(close(z * z.conj(), Complex64::from_real(z.norm_sqr())));
    }

    #[test]
    fn exp_of_i_pi() {
        let z = Complex64::new(0.0, PI).exp();
        assert!(close(z, Complex64::from_real(-1.0)));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex64::new(-3.0, 4.0);
        let r = z.sqrt();
        assert!(close(r * r, z));
    }

    #[test]
    fn division_matches_multiplication_by_inverse() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert!(close(a / b, a * b.inv()));
    }

    #[test]
    fn unit_phase_has_modulus_one() {
        let z = Complex64::new(-2.0, 7.0);
        assert!((z.unit_phase().abs() - 1.0).abs() < 1e-12);
        assert_eq!(Complex64::ZERO.unit_phase(), Complex64::ONE);
    }

    #[test]
    fn sum_folds() {
        let s: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert!(close(s, Complex64::new(6.0, 4.0)));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }
}
