//! Radix-2 fast Fourier transform.
//!
//! The OFFT baseline of Gu et al. (ASP-DAC 2020), reproduced in
//! `oplix-offt`, replaces dense ONN weight blocks with circulant blocks
//! whose matrix-vector product is computed in the Fourier domain — on chip
//! via optical butterfly meshes, in software via this FFT.

use crate::complex::Complex64;

/// In-place forward FFT (decimation in time, radix 2).
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
///
/// # Example
///
/// ```
/// use oplix_linalg::{Complex64, fft::{fft, ifft}};
///
/// let mut x = vec![
///     Complex64::new(1.0, 0.0),
///     Complex64::new(2.0, 0.0),
///     Complex64::new(3.0, 0.0),
///     Complex64::new(4.0, 0.0),
/// ];
/// let orig = x.clone();
/// fft(&mut x);
/// ifft(&mut x);
/// for (a, b) in x.iter().zip(&orig) {
///     assert!((*a - *b).abs() < 1e-12);
/// }
/// ```
pub fn fft(buf: &mut [Complex64]) {
    fft_dir(buf, false);
}

/// In-place inverse FFT (includes the `1/n` normalisation).
///
/// # Panics
///
/// Panics if `buf.len()` is not a power of two.
pub fn ifft(buf: &mut [Complex64]) {
    fft_dir(buf, true);
    let n = buf.len() as f64;
    for z in buf.iter_mut() {
        *z = z.scale(1.0 / n);
    }
}

fn fft_dir(buf: &mut [Complex64], inverse: bool) {
    let n = buf.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }

    // Butterfly passes.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex64::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex64::ONE;
            for k in 0..len / 2 {
                let a = buf[start + k];
                let b = buf[start + k + len / 2] * w;
                buf[start + k] = a + b;
                buf[start + k + len / 2] = a - b;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Naive `O(n²)` discrete Fourier transform — any length, used as a test
/// oracle for [`fft`].
pub fn dft_naive(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    (0..n)
        .map(|k| {
            (0..n)
                .map(|t| x[t] * Complex64::cis(-std::f64::consts::TAU * (k * t) as f64 / n as f64))
                .sum()
        })
        .collect()
}

/// Circular convolution of two equal-length power-of-two sequences via FFT.
///
/// This is the software model of a circulant weight block: `y = w ⊛ x`.
///
/// # Panics
///
/// Panics if the lengths differ or are not a power of two.
pub fn circular_convolve(w: &[Complex64], x: &[Complex64]) -> Vec<Complex64> {
    assert_eq!(w.len(), x.len(), "circular_convolve length mismatch");
    let mut fw = w.to_vec();
    let mut fx = x.to_vec();
    fft(&mut fw);
    fft(&mut fx);
    let mut fy: Vec<Complex64> = fw.iter().zip(&fx).map(|(&a, &b)| a * b).collect();
    ifft(&mut fy);
    fy
}

/// Circular correlation `y = w ⋆ x` (adjoint of circular convolution),
/// needed for the OFFT backward pass.
///
/// # Panics
///
/// Panics if the lengths differ or are not a power of two.
pub fn circular_correlate(w: &[Complex64], x: &[Complex64]) -> Vec<Complex64> {
    assert_eq!(w.len(), x.len(), "circular_correlate length mismatch");
    let mut fw = w.to_vec();
    let mut fx = x.to_vec();
    fft(&mut fw);
    fft(&mut fx);
    let mut fy: Vec<Complex64> = fw.iter().zip(&fx).map(|(&a, &b)| a.conj() * b).collect();
    ifft(&mut fy);
    fy
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_signal(n: usize, seed: u64) -> Vec<Complex64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect()
    }

    #[test]
    fn fft_matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let x = random_signal(n, n as u64);
            let expect = dft_naive(&x);
            let mut got = x.clone();
            fft(&mut got);
            for (a, b) in got.iter().zip(&expect) {
                assert!((*a - *b).abs() < 1e-9, "n = {n}");
            }
        }
    }

    #[test]
    fn fft_ifft_round_trip() {
        let x = random_signal(32, 7);
        let mut y = x.clone();
        fft(&mut y);
        ifft(&mut y);
        for (a, b) in y.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut x = random_signal(6, 1);
        fft(&mut x);
    }

    #[test]
    fn parseval_energy_preserved() {
        let x = random_signal(16, 3);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut y = x;
        fft(&mut y);
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / 16.0;
        assert!((ex - ey).abs() < 1e-9);
    }

    #[test]
    fn circular_convolution_matches_direct() {
        let n = 8;
        let w = random_signal(n, 10);
        let x = random_signal(n, 11);
        let y = circular_convolve(&w, &x);
        for k in 0..n {
            let direct: Complex64 = (0..n).map(|t| w[t] * x[(n + k - t) % n]).sum();
            assert!((y[k] - direct).abs() < 1e-9);
        }
    }

    #[test]
    fn correlation_is_adjoint_of_convolution() {
        // <w conv x, y> == <x, w corr y> for the real inner product
        // Re(sum conj(a) b); this is the identity the backward pass needs.
        let n = 8;
        let w = random_signal(n, 20);
        let x = random_signal(n, 21);
        let y = random_signal(n, 22);
        let conv = circular_convolve(&w, &x);
        let corr = circular_correlate(&w, &y);
        let lhs: Complex64 = conv.iter().zip(&y).map(|(&a, &b)| a.conj() * b).sum();
        let rhs: Complex64 = x.iter().zip(&corr).map(|(&a, &b)| a.conj() * b).sum();
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        fft(&mut x);
        for z in &x {
            assert!((*z - Complex64::ONE).abs() < 1e-12);
        }
    }
}
