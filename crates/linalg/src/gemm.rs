//! The workspace's one blocked GEMM kernel shape, shared by every dense
//! matrix product: `f64` ([`crate::Matrix`]), [`Complex64`]
//! ([`crate::CMatrix`]) and — via `oplix-nn` — the `f32` training tensors.
//!
//! All three variants walk the operands in the same cache-blocked order
//! and make the *accumulation order bitwise deterministic*: every output
//! element accumulates its `k` products in strictly ascending `k`,
//! exactly like the naive `ikj` triple loop. That invariant is what lets
//! [`gemm_nt`] / [`gemm_tn`] (the transpose-free layouts the neural-network
//! crate trains through) be pinned *bitwise* against
//! `transpose-then-[`gemm`]` in property tests: same products, same order,
//! same roundings.
//!
//! There is deliberately **no** per-element `a == 0` skip branch (the old
//! kernels had one): the branch costs a compare per multiply on the hot
//! path, defeats vectorisation of the inner loop, and only pays off
//! for exactly-zero weights, which trained networks do not have.
//!
//! The `j` inner loop of every driver is the one explicit lane
//! micro-kernel, [`GemmScalar::axpy_rows`]: [`F64x4`]-blocked for `f64`,
//! [`F32x8`]-blocked for `f32`, and planar (split re/im lanes) for
//! [`Complex64`], each with a scalar remainder tail running the identical
//! per-element expression — so the kernels no longer depend on the
//! autovectoriser recognising the loop shape. On `x86_64` each driver
//! additionally dispatches to an AVX2-compiled clone of the same portable
//! code behind [`crate::lanes::avx2_available`]; see the [`crate::lanes`]
//! docs for why both layers stay bitwise.
//!
//! Blocking parameters are modest ([`NC`]/[`KC`]/[`MC`]): the matrices
//! flowing through an MZI-mesh simulator are a few hundred wide at most,
//! so the goal is keeping the `B` panel and the output row in L1/L2, not
//! squeezing peak FLOPs out of a many-megabyte GEMM.
//!
//! [`Complex64`]: crate::Complex64

use crate::lanes::{cmul_splat_lhs, F32x8, F64x4};
use crate::Complex64;
use std::ops::{AddAssign, Mul};

/// Column-block width: the `j` tile kept hot across an `i` sweep.
pub const NC: usize = 128;
/// Inner-dimension block depth: the `k` tile of `B` reused per `i` tile.
pub const KC: usize = 64;
/// Row-block height: the `i` tile that reuses one `B` panel.
pub const MC: usize = 32;

/// The scalar types the shared kernel accepts: plain `Copy` arithmetic
/// with a `Default` zero, plus the lane-structured axpy micro-kernel the
/// blocked drivers run their `j` inner loop through. Implemented by
/// `f32`, `f64` and [`Complex64`].
pub trait GemmScalar: Copy + Default + Mul<Output = Self> + AddAssign {
    /// `out[j] += a * b[j]` over two equal-length rows — the one inner
    /// loop every blocked driver ([`gemm`] / [`gemm_nt`] / [`gemm_tn`])
    /// runs. Each implementation is lane-blocked
    /// ([`F64x4`] / [`F32x8`] / planar complex) with a scalar remainder
    /// tail running the identical per-element expression, so the lane
    /// kernel is bitwise the scalar loop by construction.
    fn axpy_rows(out: &mut [Self], a: Self, b: &[Self]);
}

macro_rules! real_axpy {
    ($elem:ty, $lane:ident) => {
        impl GemmScalar for $elem {
            #[inline(always)]
            fn axpy_rows(out: &mut [Self], a: Self, b: &[Self]) {
                let av = $lane::splat(a);
                let mut o_it = out.chunks_exact_mut($lane::LANES);
                let mut b_it = b.chunks_exact($lane::LANES);
                for (o, bv) in (&mut o_it).zip(&mut b_it) {
                    ($lane::load(o) + av * $lane::load(bv)).store(o);
                }
                for (o, &bv) in o_it.into_remainder().iter_mut().zip(b_it.remainder()) {
                    *o += a * bv;
                }
            }
        }
    };
}

real_axpy!(f64, F64x4);
real_axpy!(f32, F32x8);

impl GemmScalar for Complex64 {
    /// Planar complex axpy: four complex elements travel as one re lane
    /// and one im lane, the cross terms computed with the exact
    /// [`Complex64`] `Mul` expression shape
    /// ([`cmul_splat_lhs`]) — bitwise four scalar `out[j] += a * b[j]`
    /// steps.
    #[inline(always)]
    fn axpy_rows(out: &mut [Self], a: Self, b: &[Self]) {
        const L: usize = F64x4::LANES;
        let mut o_it = out.chunks_exact_mut(L);
        let mut b_it = b.chunks_exact(L);
        for (o, bv) in (&mut o_it).zip(&mut b_it) {
            let br = F64x4([bv[0].re, bv[1].re, bv[2].re, bv[3].re]);
            let bi = F64x4([bv[0].im, bv[1].im, bv[2].im, bv[3].im]);
            let (pr, pi) = cmul_splat_lhs(a.re, a.im, br, bi);
            for l in 0..L {
                o[l].re += pr.0[l];
                o[l].im += pi.0[l];
            }
        }
        for (o, &bv) in o_it.into_remainder().iter_mut().zip(b_it.remainder()) {
            *o += a * bv;
        }
    }
}

/// `out = A · B` with `A: m×k`, `B: k×n`, all row-major.
///
/// Output elements accumulate in strictly ascending `k` — bitwise the
/// naive `ikj` loop, blocked for cache reuse.
///
/// # Panics
///
/// Panics if a slice length does not match its `rows × cols` shape.
///
/// # Example
///
/// ```
/// use oplix_linalg::gemm::gemm;
///
/// let a = [1.0f64, 2.0, 3.0, 4.0]; // 2×2
/// let b = [5.0f64, 6.0, 7.0, 8.0]; // 2×2
/// let mut out = [0.0f64; 4];
/// gemm(2, 2, 2, &a, &b, &mut out);
/// assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn gemm<T: GemmScalar>(m: usize, k: usize, n: usize, a: &[T], b: &[T], out: &mut [T]) {
    assert_eq!(a.len(), m * k, "gemm: lhs length must be m*k");
    assert_eq!(b.len(), k * n, "gemm: rhs length must be k*n");
    assert_eq!(out.len(), m * n, "gemm: out length must be m*n");
    #[cfg(target_arch = "x86_64")]
    if crate::lanes::avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime; the clone is
        // the identical portable lane code (see `lanes` module docs), so
        // results are bitwise unchanged.
        unsafe { gemm_avx2(m, k, n, a, b, out) };
        return;
    }
    gemm_impl(m, k, n, a, b, out);
}

// SAFETY: `#[target_feature]` makes this fn unsafe to *call*; the only
// caller gates on `avx2_available()`. The body is the same portable
// `gemm_impl`, just compiled with AVX2 codegen enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_avx2<T: GemmScalar>(m: usize, k: usize, n: usize, a: &[T], b: &[T], out: &mut [T]) {
    gemm_impl(m, k, n, a, b, out);
}

#[inline(always)]
fn gemm_impl<T: GemmScalar>(m: usize, k: usize, n: usize, a: &[T], b: &[T], out: &mut [T]) {
    out.fill(T::default());
    let mut j0 = 0;
    while j0 < n {
        let jn = (j0 + NC).min(n);
        let mut k0 = 0;
        while k0 < k {
            let kn = (k0 + KC).min(k);
            let mut i0 = 0;
            while i0 < m {
                let im = (i0 + MC).min(m);
                for i in i0..im {
                    let a_row = &a[i * k..(i + 1) * k];
                    let out_row = &mut out[i * n + j0..i * n + jn];
                    for t in k0..kn {
                        T::axpy_rows(out_row, a_row[t], &b[t * n + j0..t * n + jn]);
                    }
                }
                i0 = im;
            }
            k0 = kn;
        }
        j0 = jn;
    }
}

/// `out = A · Bᵀ` with `A: m×k` and `B` stored **untransposed** as `n×k`
/// row-major — the layout a `[out_features, in_features]` weight matrix
/// already has, so the dense forward pass needs no transposed copy.
///
/// Internally each `KC × NC` tile of `B` is *packed* into `k`-major order
/// in a bounded scratch panel (the classic GEMM pack step), so the inner
/// loop is the same vectorisable axpy as [`gemm`] — a naive row·row dot
/// product would serialise the accumulation chain and run scalar. The
/// panel is at most `KC × NC` elements regardless of the operand sizes,
/// unlike a full transposed copy.
///
/// Each output element still accumulates in strictly ascending `k`: the
/// result is bitwise identical to materialising `Bᵀ` and calling
/// [`gemm`].
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
///
/// # Example
///
/// ```
/// use oplix_linalg::gemm::{gemm, gemm_nt};
///
/// let a = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0]; // 2×3
/// let b = [1.0f32, 0.0, 1.0, 0.5, 0.5, 0.0]; // 2×3 (logically Bᵀ: 3×2)
/// let bt = [1.0f32, 0.5, 0.0, 0.5, 1.0, 0.0]; // B transposed: 3×2
/// let (mut fused, mut reference) = ([0.0f32; 4], [0.0f32; 4]);
/// gemm_nt(2, 3, 2, &a, &b, &mut fused);
/// gemm(2, 3, 2, &a, &bt, &mut reference);
/// assert_eq!(fused, reference);
/// ```
pub fn gemm_nt<T: GemmScalar>(m: usize, k: usize, n: usize, a: &[T], b: &[T], out: &mut [T]) {
    assert_eq!(a.len(), m * k, "gemm_nt: lhs length must be m*k");
    assert_eq!(b.len(), n * k, "gemm_nt: rhs length must be n*k");
    assert_eq!(out.len(), m * n, "gemm_nt: out length must be m*n");
    #[cfg(target_arch = "x86_64")]
    if crate::lanes::avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime; the clone is
        // the identical portable lane code, bitwise unchanged.
        unsafe { gemm_nt_avx2(m, k, n, a, b, out) };
        return;
    }
    gemm_nt_impl(m, k, n, a, b, out);
}

// SAFETY: `#[target_feature]` makes this fn unsafe to *call*; the only
// caller gates on `avx2_available()`. The body is the same portable
// `gemm_nt_impl`, just compiled with AVX2 codegen enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_nt_avx2<T: GemmScalar>(
    m: usize,
    k: usize,
    n: usize,
    a: &[T],
    b: &[T],
    out: &mut [T],
) {
    gemm_nt_impl(m, k, n, a, b, out);
}

#[inline(always)]
fn gemm_nt_impl<T: GemmScalar>(m: usize, k: usize, n: usize, a: &[T], b: &[T], out: &mut [T]) {
    out.fill(T::default());
    let mut panel = vec![T::default(); KC.min(k.max(1)) * NC.min(n.max(1))];
    let mut j0 = 0;
    while j0 < n {
        let jn = (j0 + NC).min(n);
        let jw = jn - j0;
        let mut k0 = 0;
        while k0 < k {
            let kn = (k0 + KC).min(k);
            // Pack the B tile k-major: panel row `t - k0` holds
            // `B[j][t]` for `j` in the tile, contiguously.
            for j in j0..jn {
                let b_row = &b[j * k..(j + 1) * k];
                for t in k0..kn {
                    panel[(t - k0) * jw + (j - j0)] = b_row[t];
                }
            }
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * n + j0..i * n + jn];
                for t in k0..kn {
                    T::axpy_rows(out_row, a_row[t], &panel[(t - k0) * jw..(t - k0 + 1) * jw]);
                }
            }
            k0 = kn;
        }
        j0 = jn;
    }
}

/// `out = Aᵀ · B` with `A` stored **untransposed** as `k×m` row-major and
/// `B: k×n` — the weight-gradient product `dW = dYᵀ · X` without a
/// transposed copy of `dY`.
///
/// Walks `k` in the outer loop so every read (`A` row, `B` row) and every
/// write (`out` row) is contiguous; each output element accumulates in
/// strictly ascending `k`, bitwise identical to materialising `Aᵀ` and
/// calling [`gemm`].
///
/// # Panics
///
/// Panics if a slice length does not match its shape.
///
/// # Example
///
/// ```
/// use oplix_linalg::gemm::{gemm, gemm_tn};
///
/// let a = [1.0f64, 2.0, 3.0, 4.0]; // 2×2 (logically Aᵀ of [[1,3],[2,4]])
/// let at = [1.0f64, 3.0, 2.0, 4.0];
/// let b = [1.0f64, 0.0, 0.0, 1.0]; // identity
/// let (mut fused, mut reference) = ([0.0f64; 4], [0.0f64; 4]);
/// gemm_tn(2, 2, 2, &a, &b, &mut fused);
/// gemm(2, 2, 2, &at, &b, &mut reference);
/// assert_eq!(fused, reference);
/// ```
pub fn gemm_tn<T: GemmScalar>(m: usize, k: usize, n: usize, a: &[T], b: &[T], out: &mut [T]) {
    assert_eq!(a.len(), k * m, "gemm_tn: lhs length must be k*m");
    assert_eq!(b.len(), k * n, "gemm_tn: rhs length must be k*n");
    assert_eq!(out.len(), m * n, "gemm_tn: out length must be m*n");
    #[cfg(target_arch = "x86_64")]
    if crate::lanes::avx2_available() {
        // SAFETY: AVX2 support was just verified at runtime; the clone is
        // the identical portable lane code, bitwise unchanged.
        unsafe { gemm_tn_avx2(m, k, n, a, b, out) };
        return;
    }
    gemm_tn_impl(m, k, n, a, b, out);
}

// SAFETY: `#[target_feature]` makes this fn unsafe to *call*; the only
// caller gates on `avx2_available()`. The body is the same portable
// `gemm_tn_impl`, just compiled with AVX2 codegen enabled.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_tn_avx2<T: GemmScalar>(
    m: usize,
    k: usize,
    n: usize,
    a: &[T],
    b: &[T],
    out: &mut [T],
) {
    gemm_tn_impl(m, k, n, a, b, out);
}

#[inline(always)]
fn gemm_tn_impl<T: GemmScalar>(m: usize, k: usize, n: usize, a: &[T], b: &[T], out: &mut [T]) {
    out.fill(T::default());
    for t in 0..k {
        let a_row = &a[t * m..(t + 1) * m];
        let b_row = &b[t * n..(t + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            T::axpy_rows(&mut out[i * n..(i + 1) * n], av, b_row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn naive_ikj(m: usize, k: usize, n: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for t in 0..k {
                for j in 0..n {
                    out[i * n + j] += a[i * k + t] * b[t * n + j];
                }
            }
        }
        out
    }

    fn transpose<T: Copy>(rows: usize, cols: usize, a: &[T]) -> Vec<T> {
        let mut out = Vec::with_capacity(a.len());
        for j in 0..cols {
            for i in 0..rows {
                out.push(a[i * cols + j]);
            }
        }
        out
    }

    #[test]
    fn blocked_gemm_is_bitwise_the_naive_ikj_loop() {
        let mut rng = StdRng::seed_from_u64(1);
        // Shapes straddling every block boundary, plus empty/degenerate.
        for &(m, k, n) in &[
            (0, 3, 4),
            (3, 0, 4),
            (3, 4, 0),
            (1, 1, 1),
            (1, 200, 1),
            (7, 65, 130),
            (33, 64, 128),
            (40, 130, 129),
        ] {
            let a: Vec<f64> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f64> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut out = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut out);
            assert_eq!(out, naive_ikj(m, k, n, &a, &b), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn nt_and_tn_match_transpose_then_gemm_bitwise() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(m, k, n) in &[(0, 2, 3), (1, 1, 1), (5, 67, 4), (34, 5, 129), (8, 128, 8)] {
            let a: Vec<f64> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let bt: Vec<f64> = (0..n * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut fused = vec![0.0; m * n];
            gemm_nt(m, k, n, &a, &bt, &mut fused);
            let mut reference = vec![0.0; m * n];
            gemm(m, k, n, &a, &transpose(n, k, &bt), &mut reference);
            assert_eq!(fused, reference, "nt shape {m}x{k}x{n}");

            let at: Vec<f64> = (0..k * m).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f64> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut fused = vec![0.0; m * n];
            gemm_tn(m, k, n, &at, &b, &mut fused);
            let mut reference = vec![0.0; m * n];
            gemm(m, k, n, &transpose(k, m, &at), &b, &mut reference);
            assert_eq!(fused, reference, "tn shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn complex_gemm_matches_naive_product() {
        let mut rng = StdRng::seed_from_u64(3);
        let (m, k, n) = (9, 70, 11);
        let a: Vec<Complex64> = (0..m * k)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let b: Vec<Complex64> = (0..k * n)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let mut out = vec![Complex64::ZERO; m * n];
        gemm(m, k, n, &a, &b, &mut out);
        let mut naive = vec![Complex64::ZERO; m * n];
        for i in 0..m {
            for t in 0..k {
                for j in 0..n {
                    naive[i * n + j] += a[i * k + t] * b[t * n + j];
                }
            }
        }
        assert_eq!(out, naive);
    }

    /// The lane micro-kernel (`axpy_rows`) must be bitwise the scalar
    /// loop at every row width around the lane boundaries (F64x4 /
    /// F32x8): tail-only rows, exactly one lane, one lane plus a tail.
    #[test]
    fn lane_awkward_row_widths_are_bitwise_naive() {
        let mut rng = StdRng::seed_from_u64(4);
        let (m, k) = (3usize, 13usize);
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17] {
            let a: Vec<f64> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f64> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut out = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut out);
            assert_eq!(out, naive_ikj(m, k, n, &a, &b), "f64 n={n}");

            let af: Vec<f32> = a.iter().map(|&v| v as f32).collect();
            let bf: Vec<f32> = b.iter().map(|&v| v as f32).collect();
            let mut outf = vec![0.0f32; m * n];
            gemm(m, k, n, &af, &bf, &mut outf);
            let mut naive = vec![0.0f32; m * n];
            for i in 0..m {
                for t in 0..k {
                    for j in 0..n {
                        naive[i * n + j] += af[i * k + t] * bf[t * n + j];
                    }
                }
            }
            assert_eq!(outf, naive, "f32 n={n}");

            let ac: Vec<Complex64> = (0..m * k)
                .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let bc: Vec<Complex64> = (0..k * n)
                .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let mut outc = vec![Complex64::ZERO; m * n];
            gemm(m, k, n, &ac, &bc, &mut outc);
            let mut naivec = vec![Complex64::ZERO; m * n];
            for i in 0..m {
                for t in 0..k {
                    for j in 0..n {
                        naivec[i * n + j] += ac[i * k + t] * bc[t * n + j];
                    }
                }
            }
            assert_eq!(outc, naivec, "complex n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "out length")]
    fn shape_mismatch_panics() {
        let mut out = [0.0f32; 3];
        gemm(2, 2, 2, &[0.0; 4], &[0.0; 4], &mut out);
    }
}
