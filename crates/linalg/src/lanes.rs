//! Portable lane-structured SIMD primitives: fixed-width array-of-lanes
//! wrappers the workspace's hot inner loops are written against.
//!
//! Every kernel claim in this workspace is **bitwise-pinned** against a
//! scalar reference, so the lane layer is built to keep that contract *by
//! construction* rather than by hoping the autovectoriser picks the same
//! operation order:
//!
//! * A lane type is a plain `[T; LANES]` wrapper ([`F64x4`], [`F32x8`])
//!   whose arithmetic is element-wise `+`/`-`/`*` — the exact scalar IEEE
//!   operations, one per element, in the order the scalar loop would run
//!   them. Fixed trip counts turn each op into one vector instruction.
//! * There is deliberately **no** fused multiply-add anywhere: `a * b + c`
//!   stays two roundings, exactly like the scalar path (Rust never
//!   contracts `mul`+`add` into `fma`, and this module never calls
//!   [`f64::mul_add`]). A fused kernel would be faster and *almost*
//!   right — which in a bitwise-pinned codebase means wrong.
//! * Complex arithmetic is **planar**: the re and im parts travel in
//!   separate lanes and the cross terms are spelled out with the same
//!   expression shape as [`Complex64`](crate::Complex64)'s `Mul` impl
//!   ([`cmul_splat_lhs`] / [`cmul_splat_rhs`]), so a planar butterfly is
//!   bitwise the scalar `t00 * x + t01 * y`.
//!
//! On `x86_64` the hot kernels additionally dispatch to an AVX2-compiled
//! clone of the *same* portable code behind [`avx2_available`] (a cached
//! `is_x86_feature_detected!` probe). That stays bitwise because the
//! clone is the identical Rust source monomorphised with wider registers:
//! AVX2 `vmulpd`/`vaddpd` are the same correctly-rounded IEEE operations
//! as their scalar twins, and no `-ffast-math`-style flags are in play.

use std::ops::{Add, Mul, Sub};

/// The operations a kernel written against lane vectors of `T` needs:
/// element-wise `+`/`-`/`*` (via the operator bounds), broadcast, and
/// slice load/store. Implemented by every width of a scalar type
/// ([`F64x4`] and [`F64x8`] for `f64`, [`F32x8`] and [`F32x16`] for
/// `f32`), so a kernel generic over `V: Lane<f64>` monomorphises to any
/// register width while running the identical per-element operations.
pub trait Lane<T: Copy>:
    Copy + Add<Output = Self> + Sub<Output = Self> + Mul<Output = Self>
{
    /// Number of scalar elements per lane vector.
    const LANES: usize;

    /// Broadcasts one scalar into every lane.
    fn splat(v: T) -> Self;

    /// Builds a lane vector element-by-element — the strided-load shape
    /// transposes use.
    fn from_fn(f: impl FnMut(usize) -> T) -> Self;

    /// Loads `Self::LANES` elements from the front of `src`.
    fn load(src: &[T]) -> Self;

    /// Stores the lanes into the front of `dst`.
    fn store(self, dst: &mut [T]);

    /// The `l`-th lane value.
    fn get(self, l: usize) -> T;
}

macro_rules! lane_type {
    ($(#[$doc:meta])* $name:ident, $elem:ty, $lanes:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, Debug, Default, PartialEq)]
        #[repr(transparent)]
        pub struct $name(pub [$elem; $lanes]);

        impl $name {
            /// Number of scalar elements per lane vector.
            pub const LANES: usize = $lanes;

            /// Broadcasts one scalar into every lane.
            #[inline(always)]
            pub fn splat(v: $elem) -> Self {
                $name([v; $lanes])
            }

            /// Loads `Self::LANES` elements from the front of `src`.
            ///
            /// # Panics
            ///
            /// Panics if `src.len() < Self::LANES`.
            #[inline(always)]
            pub fn load(src: &[$elem]) -> Self {
                let mut out = [<$elem>::default(); $lanes];
                out.copy_from_slice(&src[..$lanes]);
                $name(out)
            }

            /// Stores the lanes into the front of `dst`.
            ///
            /// # Panics
            ///
            /// Panics if `dst.len() < Self::LANES`.
            #[inline(always)]
            pub fn store(self, dst: &mut [$elem]) {
                dst[..$lanes].copy_from_slice(&self.0);
            }
        }

        impl Lane<$elem> for $name {
            const LANES: usize = $lanes;

            #[inline(always)]
            fn splat(v: $elem) -> Self {
                $name::splat(v)
            }

            #[inline(always)]
            fn from_fn(mut f: impl FnMut(usize) -> $elem) -> Self {
                let mut out = [<$elem>::default(); $lanes];
                for (l, o) in out.iter_mut().enumerate() {
                    *o = f(l);
                }
                $name(out)
            }

            #[inline(always)]
            fn load(src: &[$elem]) -> Self {
                $name::load(src)
            }

            #[inline(always)]
            fn store(self, dst: &mut [$elem]) {
                $name::store(self, dst)
            }

            #[inline(always)]
            fn get(self, l: usize) -> $elem {
                self.0[l]
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                let mut out = self.0;
                for (o, r) in out.iter_mut().zip(&rhs.0) {
                    *o += *r;
                }
                $name(out)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline(always)]
            fn sub(self, rhs: Self) -> Self {
                let mut out = self.0;
                for (o, r) in out.iter_mut().zip(&rhs.0) {
                    *o -= *r;
                }
                $name(out)
            }
        }

        impl Mul for $name {
            type Output = Self;
            #[inline(always)]
            fn mul(self, rhs: Self) -> Self {
                let mut out = self.0;
                for (o, r) in out.iter_mut().zip(&rhs.0) {
                    *o *= *r;
                }
                $name(out)
            }
        }
    };
}

lane_type!(
    /// Four `f64` lanes — one AVX ymm register worth of doubles.
    ///
    /// # Example
    ///
    /// ```
    /// use oplix_linalg::lanes::F64x4;
    ///
    /// let a = F64x4([1.0, 2.0, 3.0, 4.0]);
    /// let b = F64x4::splat(0.5);
    /// // Element-wise mul then add: two roundings per lane, exactly like
    /// // the scalar expression `a[i] * 0.5 + 1.0` — never an FMA.
    /// let r = a * b + F64x4::splat(1.0);
    /// assert_eq!(r, F64x4([1.5, 2.0, 2.5, 3.0]));
    /// ```
    F64x4,
    f64,
    4
);

lane_type!(
    /// Eight `f64` lanes — one AVX-512 zmm register worth of doubles,
    /// used by the kernels' widest dispatch tier.
    F64x8,
    f64,
    8
);

lane_type!(
    /// Eight `f32` lanes — one AVX ymm register worth of floats.
    ///
    /// # Example
    ///
    /// ```
    /// use oplix_linalg::lanes::F32x8;
    ///
    /// let x = F32x8::splat(2.0);
    /// let y = F32x8::load(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
    /// let mut out = [0.0f32; 8];
    /// (x * y).store(&mut out);
    /// assert_eq!(out, [2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0]);
    /// ```
    F32x8,
    f32,
    8
);

lane_type!(
    /// Sixteen `f32` lanes — one AVX-512 zmm register worth of floats,
    /// used by the kernels' widest dispatch tier.
    F32x16,
    f32,
    16
);

/// Planar complex multiply with a *splatted left-hand* coefficient:
/// `(c.re + i·c.im) * (xr + i·xi)`, element-wise over the lanes.
///
/// The expression shape is exactly
/// [`Complex64`](crate::Complex64)`::mul` with the coefficient as `self`:
/// `re = c.re*xr - c.im*xi`, `im = c.re*xi + c.im*xr` — so a lane of four
/// complex products is bitwise four scalar `c * x` evaluations.
///
/// # Example
///
/// ```
/// use oplix_linalg::lanes::{cmul_splat_lhs, F64x4};
/// use oplix_linalg::Complex64;
///
/// let x = Complex64::new(0.3, -0.7);
/// let c = Complex64::new(-1.25, 0.5);
/// let (re, im) = cmul_splat_lhs(c.re, c.im, F64x4::splat(x.re), F64x4::splat(x.im));
/// let scalar = c * x;
/// assert_eq!(re.0[0], scalar.re); // bitwise, not approximately
/// assert_eq!(im.0[0], scalar.im);
/// ```
#[inline(always)]
pub fn cmul_splat_lhs<V: Lane<f64>>(c_re: f64, c_im: f64, xr: V, xi: V) -> (V, V) {
    let cr = V::splat(c_re);
    let ci = V::splat(c_im);
    (cr * xr - ci * xi, cr * xi + ci * xr)
}

/// Planar complex multiply with a *splatted right-hand* coefficient:
/// `(xr + i·xi) * (c.re + i·c.im)`, element-wise over the lanes.
///
/// The expression shape is exactly
/// [`Complex64`](crate::Complex64)`::mul` with the lane vector as `self`:
/// `re = xr*c.re - xi*c.im`, `im = xr*c.im + xi*c.re` — the shape of the
/// output phase-screen pass `field *= phasor`.
#[inline(always)]
pub fn cmul_splat_rhs<V: Lane<f64>>(xr: V, xi: V, c_re: f64, c_im: f64) -> (V, V) {
    let cr = V::splat(c_re);
    let ci = V::splat(c_im);
    (xr * cr - xi * ci, xr * ci + xi * cr)
}

/// Whether the running CPU supports AVX2 (cached after the first probe).
///
/// The hot kernels use this to dispatch into an
/// `#[target_feature(enable = "avx2")]` clone of the identical portable
/// lane code — same Rust operations, wider registers, bitwise-identical
/// results. Always `false` off `x86_64`.
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVX2: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the running CPU supports AVX-512F (cached after the first
/// probe) — the widest dispatch tier, running the identical portable lane
/// code at [`F64x8`]/[`F32x16`] width. Always `false` off `x86_64`.
#[inline]
pub fn avx512f_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVX512: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *AVX512.get_or_init(|| std::arch::is_x86_feature_detected!("avx512f"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex64;

    #[test]
    fn lane_ops_are_elementwise_scalar_ops() {
        let a = F64x4([1.5, -2.25, 3.0, 1e-300]);
        let b = F64x4([-0.5, 7.0, 1e300, 4.0]);
        let sum = a + b;
        let dif = a - b;
        let prd = a * b;
        for i in 0..F64x4::LANES {
            assert_eq!(sum.0[i].to_bits(), (a.0[i] + b.0[i]).to_bits());
            assert_eq!(dif.0[i].to_bits(), (a.0[i] - b.0[i]).to_bits());
            assert_eq!(prd.0[i].to_bits(), (a.0[i] * b.0[i]).to_bits());
        }
    }

    #[test]
    fn f32_lane_ops_are_elementwise_scalar_ops() {
        let a = F32x8([1.5, -2.25, 3.0, 1e-30, 9.75, -0.125, 2.5, 1e30]);
        let b = F32x8::splat(3.125);
        let sum = a + b;
        let prd = a * b;
        for i in 0..F32x8::LANES {
            assert_eq!(sum.0[i].to_bits(), (a.0[i] + b.0[i]).to_bits());
            assert_eq!(prd.0[i].to_bits(), (a.0[i] * b.0[i]).to_bits());
        }
    }

    #[test]
    fn load_store_round_trip() {
        let src = [1.0, 2.0, 3.0, 4.0, 5.0];
        let v = F64x4::load(&src);
        let mut dst = [0.0; 5];
        v.store(&mut dst);
        assert_eq!(&dst[..4], &src[..4]);
        assert_eq!(dst[4], 0.0);
    }

    #[test]
    fn cmul_matches_complex_mul_bitwise_both_sides() {
        // Awkward magnitudes so any reassociation or contraction would
        // change the bits.
        let cs = [
            Complex64::new(0.1, -0.3),
            Complex64::new(1e-200, 1e200),
            Complex64::new(-7.25, 0.0),
        ];
        let xs = [
            Complex64::new(-0.9, 0.7),
            Complex64::new(3.0, -1e-8),
            Complex64::new(1e100, 1e-100),
        ];
        for &c in &cs {
            for &x in &xs {
                let (re, im) = cmul_splat_lhs(c.re, c.im, F64x4::splat(x.re), F64x4::splat(x.im));
                let want = c * x;
                for l in 0..F64x4::LANES {
                    assert_eq!(re.0[l].to_bits(), want.re.to_bits());
                    assert_eq!(im.0[l].to_bits(), want.im.to_bits());
                }
                let (re, im) = cmul_splat_rhs(F64x4::splat(x.re), F64x4::splat(x.im), c.re, c.im);
                let want = x * c;
                for l in 0..F64x4::LANES {
                    assert_eq!(re.0[l].to_bits(), want.re.to_bits());
                    assert_eq!(im.0[l].to_bits(), want.im.to_bits());
                }
            }
        }
    }

    #[test]
    fn avx2_probe_is_stable() {
        assert_eq!(avx2_available(), avx2_available());
    }
}
