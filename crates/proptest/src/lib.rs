//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! implements the proptest API surface the workspace's property tests use:
//! the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! [`Strategy`] with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Unlike upstream proptest there is no shrinking and no failure
//! persistence: each test runs `cases` seeded random samples (seeded from a
//! hash of the test name, so runs are deterministic) and assertion macros
//! panic directly with the failing values in the message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Creates the deterministic generator for a named test (FNV-1a over the
/// test name). Public for use by the [`proptest!`] expansion only.
#[doc(hidden)]
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Produces a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always produces the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f32, f64, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_inclusive_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
    (A 0, B 1, C 2, D 3, E 4, F 5)
);

pub mod collection {
    //! Collection strategies.

    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec()`]: a fixed size or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Runner types (compatibility module).

    pub use super::ProptestConfig as Config;
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declares seeded random-case tests. Mirrors proptest's macro for simple
/// `name(arg in strategy, ...)` signatures, with an optional leading
/// `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let case = move || -> ::std::result::Result<(), ()> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    let _ = case();
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (f64, f64)> {
        (-1.0f64..1.0, -1.0f64..1.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -3.0f64..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn assume_skips_cases(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_and_map_compose(v in crate::collection::vec(pair().prop_map(|(a, b)| a + b), 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            for x in v {
                prop_assert!((-2.0..2.0).contains(&x));
            }
        }

        #[test]
        fn flat_map_chains(v in (1usize..=4).prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n))) {
            prop_assert!(!v.is_empty() && v.len() <= 4);
        }
    }
}
