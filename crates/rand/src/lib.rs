//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the subset of the rand 0.8 API the workspace actually uses,
//! with the same module layout (`rand::Rng`, `rand::SeedableRng`,
//! `rand::rngs::StdRng`, `rand::seq::SliceRandom`):
//!
//! * [`rngs::StdRng`] — a seeded xoshiro256** generator (not the upstream
//!   ChaCha12; streams differ from upstream rand but are deterministic,
//!   uniform and fast, which is all the experiments need);
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges;
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Everything is `no_std`-free plain Rust with no dependencies.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random-value interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Samples a uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        // 53 mantissa bits of the next u64.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples a bool with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A scalar type uniform samples can be drawn for.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// A range that a uniform sample can be drawn from. The single generic
/// impl per range shape is what lets inference flow from the range's
/// literal type to `gen_range`'s return type, as in upstream rand.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        // Rounding in lo + u·(hi−lo) can land exactly on hi; keep the
        // half-open contract.
        (lo + u * (hi - lo)).min(hi.next_down())
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        // Inclusive: the rounding that the half-open sampler clamps away
        // is legitimate here, and lo..=lo must return lo.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        (lo + u * (hi - lo)).min(hi.next_down())
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + u * (hi - lo)
    }
}

/// Rejection-free bounded integer sampling (Lemire's multiply-shift).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Widening multiply keeps the bias below 2^-64, irrelevant here.
    (((rng.next_u64() as u128) * (bound as u128)) >> 64) as u64
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded through
    /// SplitMix64. Deterministic for a given seed, passes BigCrush, and is
    /// a few cycles per draw.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related randomness.

    use super::{bounded_u64, Rng};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_ranges_land_inside() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-0.3..0.3);
            assert!((-0.3..0.3).contains(&x));
            let y: f32 = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v: i32 = rng.gen_range(-1..=1);
            seen[(v + 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "inclusive range missed a value");
        for _ in 0..200 {
            let v: usize = rng.gen_range(0..5);
            assert!(v < 5);
        }
    }

    #[test]
    fn half_open_upper_bound_is_excluded_even_at_max_entropy() {
        // A generator pinned at the maximal word exercises the rounding
        // path where lo + u·(hi−lo) would land exactly on hi.
        struct MaxRng;
        impl RngCore for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let v: f64 = MaxRng.gen_range(0.1..0.2);
        assert!(v < 0.2, "f64 upper bound leaked: {v}");
        let w: f32 = MaxRng.gen_range(0.1f32..0.2);
        assert!(w < 0.2, "f32 upper bound leaked: {w}");
    }

    #[test]
    fn degenerate_inclusive_float_range_returns_the_endpoint() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..16 {
            let v: f64 = rng.gen_range(0.5..=0.5);
            assert_eq!(v, 0.5);
            let w: f32 = rng.gen_range(-1.25f32..=-1.25);
            assert_eq!(w, -1.25);
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn rng_usable_through_mut_ref() {
        fn draw<R: Rng>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let _ = draw(&mut rng);
        let r = &mut rng;
        let _ = draw(r);
    }
}
