//! The workspace-wide bounded worker pool, served by a **persistent
//! executor**.
//!
//! Every parallel grid in the experiment runners — and the sharded batch
//! path of [`crate::engine::InferenceEngine`] — draws its concurrency from
//! one shared budget, the *jobs* knob, instead of each call site spawning
//! an unbounded `std::thread::scope` of its own. This is what keeps a
//! `paper_tables`-style run (six runners, each fanning out per
//! model/variant) from oversubscribing the machine.
//!
//! The knob resolves in priority order:
//!
//! 1. [`set_jobs`] — an explicit programmatic override (e.g. a `--jobs`
//!    CLI flag, as in the `paper_tables` example);
//! 2. the `OPLIX_JOBS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! # The persistent executor
//!
//! Earlier revisions spawned a fresh `std::thread::scope` of workers per
//! [`run_scoped`] call. That is fine for coarse experiment grids (a few
//! launches per run) but dominates fine-grained kernel-level task lists,
//! where a batch of sub-millisecond tasks pays tens of microseconds of
//! thread launch each call. The pool now keeps a set of **lazily spawned,
//! persistent worker threads** that park on a global injector queue:
//!
//! * a [`run_scoped`] call that is granted `g > 1` workers publishes
//!   `g − 1` *job handles* to the injector and then works through its own
//!   task queue on the calling thread;
//! * idle workers pop job handles and *steal* tasks from that call's
//!   shared task queue until it is empty;
//! * before blocking, the caller cancels any of its job handles that no
//!   worker has picked up yet (they would find an empty queue anyway), so
//!   a call never waits on a busy executor — which also makes nested
//!   calls deadlock-free by construction;
//! * results land in per-task slots, so they come back **in task order**
//!   regardless of completion order, and task panics are re-raised on the
//!   caller (lowest task index wins).
//!
//! The budget contract is unchanged: at most [`jobs`] tasks run
//! concurrently process-wide (workers beyond the budget stay parked), a
//! call that finds the budget exhausted runs inline on the caller's
//! thread, and a `--jobs 1` run is exactly the sequential program.
//!
//! ```
//! use oplixnet::pool;
//!
//! let squares = pool::parallel_map(vec![1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// The programmatic override; 0 means "unset, fall back to the
/// environment / hardware".
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Worker budget currently reserved across every [`run_scoped`] call in
/// the process. Nested calls (an engine sharding inside a grid arm)
/// reserve from the same budget, so concurrent workers stay ≈ [`jobs`]
/// instead of multiplying per nesting level.
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Persistent executor threads ever spawned (they never exit).
static WORKERS_ALIVE: AtomicUsize = AtomicUsize::new(0);

/// Hard ceiling on persistent executor threads, a safety net well above
/// any sane `--jobs` value.
const MAX_EXECUTOR_WORKERS: usize = 256;

/// A granted share of the global worker budget; returns it on drop (also
/// on unwind, so a panicking task cannot leak budget).
struct Reservation(usize);

impl Drop for Reservation {
    fn drop(&mut self) {
        if self.0 > 0 {
            ACTIVE_WORKERS.fetch_sub(self.0, Ordering::SeqCst);
        }
    }
}

/// Reserves up to `wanted` workers from whatever the budget has left.
fn reserve_workers(wanted: usize) -> Reservation {
    let budget = jobs();
    let mut granted = 0;
    let _ = ACTIVE_WORKERS.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |active| {
        granted = budget.saturating_sub(active).min(wanted);
        Some(active + granted)
    });
    Reservation(granted)
}

/// Overrides the worker budget for the whole process (clamped to ≥ 1).
/// Call this from a `--jobs` CLI flag before running experiment grids.
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::SeqCst);
}

/// The current worker budget: [`set_jobs`] if called, else the
/// `OPLIX_JOBS` environment variable, else the machine's available
/// parallelism (and 1 if even that is unknown).
pub fn jobs() -> usize {
    let j = JOBS.load(Ordering::SeqCst);
    if j > 0 {
        return j;
    }
    if let Some(n) = std::env::var("OPLIX_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// A long-lived, best-effort claim of one slot of the shared worker
/// budget, held by resident service threads — e.g. the batcher thread of
/// a [`crate::serve::Server`] — for as long as they live. While the slot
/// is held, [`run_scoped`] grants callers one worker fewer, so a serving
/// front end running next to experiment grids keeps total concurrency at
/// ≈ [`jobs`] instead of oversubscribing by one thread per server.
///
/// The claim is best-effort: if the budget is already exhausted the slot
/// holds nothing (see [`ServiceSlot::granted`]) and the service thread
/// simply rides on the OS scheduler. The slot returns its share on drop.
pub struct ServiceSlot(Reservation);

impl ServiceSlot {
    /// Whether the slot actually obtained a budget share.
    pub fn granted(&self) -> bool {
        self.0 .0 > 0
    }
}

/// Claims one slot of the shared worker budget for a resident service
/// thread (best-effort; see [`ServiceSlot`]).
pub fn reserve_service_slot() -> ServiceSlot {
    ServiceSlot(reserve_workers(1))
}

/// A granted block of the shared worker budget backing one stage-pipelined
/// walk (see `crate::deploy`): the calling thread plus `granted() − 1`
/// helper threads, one per pipeline segment. Unlike [`run_scoped`] — whose
/// executor workers must never block on each other — pipeline segments
/// *do* block on their bounded inter-stage rings, so the walk runs its
/// segments on short-lived scoped threads instead of borrowing parked
/// executor workers; this reservation keeps that concurrency accounted
/// against the same process-wide [`jobs`] budget. The share returns on
/// drop (also on unwind).
pub(crate) struct PipelineReservation(Reservation);

impl PipelineReservation {
    /// Total budget slots granted, the caller's own slot included.
    pub(crate) fn granted(&self) -> usize {
        self.0 .0
    }
}

/// Reserves up to `wanted` budget slots (the caller's slot included) for
/// a stage-pipelined walk. A grant of `0` or `1` leaves no room for
/// helper threads: the caller should fall back to the sequential walk —
/// which keeps a `--jobs 1` run exactly the sequential program.
pub(crate) fn reserve_pipeline_workers(wanted: usize) -> PipelineReservation {
    PipelineReservation(reserve_workers(wanted))
}

/// How many persistent executor threads are currently alive. Workers are
/// spawned lazily by the first [`run_scoped`] call granted more than one
/// budget slot and then persist for the process lifetime, parked on the
/// injector when idle — this is what amortises thread launches across
/// fine-grained task lists.
pub fn workers_alive() -> usize {
    WORKERS_ALIVE.load(Ordering::SeqCst)
}

// ---------------------------------------------------------------------------
// Executor internals
// ---------------------------------------------------------------------------

/// A batch's shared task queue, type-erased so persistent workers can
/// drain it. Tasks are unit closures that write their result (or stash
/// their panic) into caller-owned slots; they are constructed to never
/// unwind.
struct SharedBatch {
    queue: Mutex<Vec<Box<dyn FnOnce() + Send>>>,
}

impl SharedBatch {
    /// Runs tasks until the queue is empty. Called concurrently by the
    /// owning caller and by any worker that picked up one of the batch's
    /// job handles — this is the "stealing": whichever thread gets the
    /// lock next takes the next task.
    fn drain(&self) {
        loop {
            let task = self.queue.lock().expect("pool batch queue").pop();
            match task {
                Some(task) => task(),
                None => break,
            }
        }
    }
}

/// Completion latch for one batch's published job handles.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut r = self.remaining.lock().expect("pool latch");
        *r -= 1;
        if *r == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut r = self.remaining.lock().expect("pool latch");
        while *r > 0 {
            r = self.done.wait(r).expect("pool latch");
        }
    }
}

/// A handle published to the injector: "come steal tasks from this
/// batch". The raw pointer is kept alive by the publishing `run_scoped`
/// call, which does not return until `latch` confirms every published
/// handle was either executed or cancelled.
struct JobRef {
    batch: *const SharedBatch,
    latch: Arc<Latch>,
}

// SAFETY: the pointee is a `Sync` structure (a mutex-guarded queue of
// `Send` closures) owned by the publishing call's stack frame, which
// outlives every access — see the latch protocol in `run_scoped`.
unsafe impl Send for JobRef {}

/// The global injector persistent workers park on.
struct Injector {
    queue: Mutex<VecDeque<JobRef>>,
    available: Condvar,
}

fn injector() -> &'static Injector {
    static INJECTOR: OnceLock<Injector> = OnceLock::new();
    INJECTOR.get_or_init(|| Injector {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
    })
}

/// The persistent worker body: pop a job handle, steal tasks from its
/// batch until the batch queue is dry, report completion, park again.
fn worker_loop() {
    let inj = injector();
    loop {
        let job = {
            let mut q = inj.queue.lock().expect("pool injector");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = inj.available.wait(q).expect("pool injector");
            }
        };
        // SAFETY: the publishing `run_scoped` call blocks until this
        // handle's latch is counted down, so `job.batch` is alive (and its
        // borrows valid) for the whole `drain`.
        unsafe { (*job.batch).drain() };
        job.latch.count_down();
    }
}

/// Lazily grows the persistent worker set towards `wanted` threads;
/// returns how many are alive afterwards.
fn ensure_workers(wanted: usize) -> usize {
    static SPAWN: Mutex<()> = Mutex::new(());
    let _guard = SPAWN.lock().expect("pool spawn lock");
    let target = wanted.min(MAX_EXECUTOR_WORKERS);
    while WORKERS_ALIVE.load(Ordering::SeqCst) < target {
        match thread::Builder::new()
            .name("oplix-pool".into())
            .spawn(worker_loop)
        {
            Ok(_) => {
                WORKERS_ALIVE.fetch_add(1, Ordering::SeqCst);
            }
            Err(_) => break, // OS refused a thread: degrade gracefully.
        }
    }
    WORKERS_ALIVE.load(Ordering::SeqCst)
}

/// Runs a list of tasks with at most [`jobs`] concurrent workers *process
/// wide*, returning their results in task order.
///
/// Tasks may borrow from the caller's stack. With a single-slot grant —
/// or a single task — everything runs inline on the caller's thread, so a
/// `--jobs 1` run is exactly the sequential program. Otherwise the
/// persistent executor's workers steal tasks from this call's queue while
/// the caller works through it too; see the module docs for the
/// publish/steal/cancel protocol.
///
/// # Panics
///
/// Propagates the panic of any task (the remaining tasks still run to
/// completion first; the panic of the lowest-indexed failing task wins).
pub fn run_scoped<'env, T: Send + 'env>(
    tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
) -> Vec<T> {
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let reservation = reserve_workers(jobs().min(n));
    let granted = reservation.0;
    if granted <= 1 {
        // Inline on the caller's thread: hand any granted budget straight
        // back, no executor involvement.
        drop(reservation);
        return tasks.into_iter().map(|t| t()).collect();
    }

    // Per-task result slots (task order) and the first-panic store.
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    type PanicPayload = Box<dyn Any + Send + 'static>;
    let panic_store: Mutex<Option<(usize, PanicPayload)>> = Mutex::new(None);

    // Wrap every task into a unit closure that records its outcome and
    // never unwinds (workers must never die to a user panic).
    let unit_tasks: Vec<Box<dyn FnOnce() + Send + '_>> = tasks
        .into_iter()
        .enumerate()
        .map(|(i, task)| {
            let results = &results;
            let panic_store = &panic_store;
            Box::new(move || match catch_unwind(AssertUnwindSafe(task)) {
                Ok(v) => *results[i].lock().expect("pool result slot") = Some(v),
                Err(payload) => {
                    let mut slot = panic_store.lock().expect("pool panic slot");
                    let replace = match slot.as_ref() {
                        Some((j, _)) => i < *j,
                        None => true,
                    };
                    if replace {
                        *slot = Some((i, payload));
                    }
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();

    // SAFETY (lifetime erasure): the closures borrow `results`,
    // `panic_store` and the caller's `'env` state. Persistent workers only
    // reach them through `JobRef`s published below, and this function does
    // not return before `latch.wait()` confirms every published handle was
    // executed or cancelled — after which no worker holds a reference. The
    // transmute only widens the trait-object lifetime bound; the layout is
    // identical.
    let static_tasks: Vec<Box<dyn FnOnce() + Send + 'static>> = unsafe {
        std::mem::transmute::<Vec<Box<dyn FnOnce() + Send + '_>>, Vec<Box<dyn FnOnce() + Send>>>(
            unit_tasks,
        )
    };
    let shared = SharedBatch {
        queue: Mutex::new(static_tasks),
    };

    // Publish one job handle per granted helper (the caller is the
    // remaining worker). If the executor cannot field a single thread,
    // skip publishing; the caller drains everything inline.
    let helpers = if ensure_workers(granted - 1) == 0 {
        0
    } else {
        granted - 1
    };
    let latch = Arc::new(Latch::new(helpers));
    if helpers > 0 {
        let inj = injector();
        let mut q = inj.queue.lock().expect("pool injector");
        for _ in 0..helpers {
            q.push_back(JobRef {
                batch: &shared as *const SharedBatch,
                latch: Arc::clone(&latch),
            });
        }
        drop(q);
        inj.available.notify_all();
    }

    // The caller is a worker too: steal tasks until the queue is dry.
    shared.drain();

    // Cancel job handles no worker picked up (the queue is empty, so they
    // would be no-ops) instead of waiting for busy workers to get to them
    // — this is what makes nested calls deadlock-free.
    if helpers > 0 {
        let mut q = injector().queue.lock().expect("pool injector");
        q.retain(|job| {
            if std::ptr::eq(job.batch, &shared) {
                job.latch.count_down();
                false
            } else {
                true
            }
        });
        drop(q);
        // Wait for the handles that *were* picked up: their workers are
        // draining a now-empty queue and finish promptly.
        latch.wait();
    }

    if let Some((_, payload)) = panic_store.into_inner().expect("pool panic slot") {
        resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("pool result slot")
                .expect("every task ran")
        })
        .collect()
}

/// Applies `f` to every item with at most [`jobs`] concurrent workers,
/// returning results in item order.
///
/// ```
/// use oplixnet::pool;
///
/// let lens = pool::parallel_map(vec!["a", "bb", "ccc"], |s| s.len());
/// assert_eq!(lens, vec![1, 2, 3]);
/// ```
pub fn parallel_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let f = &f;
    run_scoped(
        items
            .into_iter()
            .map(|item| Box::new(move || f(item)) as Box<dyn FnOnce() -> T + Send + '_>)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Most tests force a multi-slot budget so the executor path (not the
    /// inline fallback) is exercised even on a single-core machine. The
    /// budget is process-global, which is safe: every caller must be
    /// correct at any budget (results are slot-ordered and bitwise
    /// independent of worker count).
    fn force_parallel_budget() {
        set_jobs(4);
    }

    #[test]
    fn results_come_back_in_task_order() {
        force_parallel_budget();
        // Tasks finish out of order (larger inputs sleep longer backwards),
        // results must not.
        let out = parallel_map((0..32u64).collect(), |i| {
            std::thread::sleep(std::time::Duration::from_micros((32 - i) * 50));
            i * 10
        });
        assert_eq!(out, (0..32u64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn tasks_can_borrow_caller_state() {
        force_parallel_budget();
        let counter = AtomicU64::new(0);
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = (0..8)
            .map(|_| {
                Box::new(|| counter.fetch_add(1, Ordering::SeqCst))
                    as Box<dyn FnOnce() -> u64 + Send + '_>
            })
            .collect();
        let mut got = run_scoped(tasks);
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let out: Vec<u8> = run_scoped(Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_is_at_least_one() {
        assert!(jobs() >= 1);
    }

    #[test]
    fn workers_persist_across_calls() {
        force_parallel_budget();
        let _ = parallel_map((0..16u32).collect(), |x| x + 1);
        let after_first = workers_alive();
        assert!(
            after_first >= 1,
            "a multi-slot grant must have spawned persistent workers"
        );
        for _ in 0..10 {
            let _ = parallel_map((0..16u32).collect(), |x| x + 1);
        }
        assert_eq!(
            workers_alive(),
            after_first,
            "repeat calls must reuse the persistent worker set, not spawn more"
        );
    }

    #[test]
    fn task_panic_propagates_after_batch_completes() {
        force_parallel_budget();
        let completed = AtomicU64::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = (0..12u64)
                .map(|i| {
                    let completed = &completed;
                    Box::new(move || {
                        if i == 5 {
                            panic!("task {i} failed");
                        }
                        completed.fetch_add(1, Ordering::SeqCst)
                    }) as Box<dyn FnOnce() -> u64 + Send + '_>
                })
                .collect();
            run_scoped(tasks)
        }));
        assert!(result.is_err(), "the task panic must propagate");
        assert_eq!(
            completed.load(Ordering::SeqCst),
            11,
            "non-panicking tasks still run to completion"
        );
    }

    #[test]
    fn nested_calls_complete_without_deadlock() {
        force_parallel_budget();
        // Outer fan-out whose tasks fan out again: inner calls either find
        // leftover budget or run inline; either way every level finishes.
        let out = parallel_map((0..6u64).collect(), |i| {
            parallel_map((0..5u64).collect(), move |j| i * 10 + j)
                .into_iter()
                .sum::<u64>()
        });
        let want: Vec<u64> = (0..6u64)
            .map(|i| (0..5u64).map(|j| i * 10 + j).sum())
            .collect();
        assert_eq!(out, want);
    }
}
