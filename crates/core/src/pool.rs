//! The workspace-wide bounded worker pool.
//!
//! Every parallel grid in the experiment runners — and the sharded batch
//! path of [`crate::engine::InferenceEngine`] — draws its concurrency from
//! one shared budget, the *jobs* knob, instead of each call site spawning
//! an unbounded `std::thread::scope` of its own. This is what keeps a
//! `paper_tables`-style run (six runners, each fanning out per
//! model/variant) from oversubscribing the machine.
//!
//! The knob resolves in priority order:
//!
//! 1. [`set_jobs`] — an explicit programmatic override (e.g. a `--jobs`
//!    CLI flag, as in the `paper_tables` example);
//! 2. the `OPLIX_JOBS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! Work is executed by [`run_scoped`] (a list of boxed closures) or
//! [`parallel_map`] (a function over items): at most [`jobs`] worker
//! threads run at once, tasks are pulled from a shared queue, and results
//! come back **in task order** regardless of completion order, so callers
//! stay deterministic.
//!
//! ```
//! use oplixnet::pool;
//!
//! let squares = pool::parallel_map(vec![1u64, 2, 3, 4], |x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// The programmatic override; 0 means "unset, fall back to the
/// environment / hardware".
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Worker threads currently alive across every [`run_scoped`] call in the
/// process. Nested calls (an engine sharding inside a grid arm) reserve
/// from the same budget, so total threads stay ≈ [`jobs`] instead of
/// multiplying per nesting level.
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// A granted share of the global worker budget; returns it on drop (also
/// on unwind, so a panicking task cannot leak budget).
struct Reservation(usize);

impl Drop for Reservation {
    fn drop(&mut self) {
        if self.0 > 0 {
            ACTIVE_WORKERS.fetch_sub(self.0, Ordering::SeqCst);
        }
    }
}

/// Reserves up to `wanted` workers from whatever the budget has left.
fn reserve_workers(wanted: usize) -> Reservation {
    let budget = jobs();
    let mut granted = 0;
    let _ = ACTIVE_WORKERS.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |active| {
        granted = budget.saturating_sub(active).min(wanted);
        Some(active + granted)
    });
    Reservation(granted)
}

/// Overrides the worker budget for the whole process (clamped to ≥ 1).
/// Call this from a `--jobs` CLI flag before running experiment grids.
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::SeqCst);
}

/// The current worker budget: [`set_jobs`] if called, else the
/// `OPLIX_JOBS` environment variable, else the machine's available
/// parallelism (and 1 if even that is unknown).
pub fn jobs() -> usize {
    let j = JOBS.load(Ordering::SeqCst);
    if j > 0 {
        return j;
    }
    if let Some(n) = std::env::var("OPLIX_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs a list of tasks with at most [`jobs`] worker threads *process
/// wide*, returning their results in task order.
///
/// Tasks may borrow from the caller's stack (the pool is
/// `std::thread::scope`-based). With a single-job budget — or a single
/// task — everything runs inline on the caller's thread, so a `--jobs 1`
/// run is exactly the sequential program. Nested calls share one global
/// budget: workers already alive (e.g. grid arms that internally shard an
/// engine batch) count against it, and a call that finds the budget
/// exhausted runs its tasks inline instead of stacking `jobs²` threads.
///
/// # Panics
///
/// Propagates the panic of any task (like the `join().expect` of the
/// hand-rolled scopes this replaces).
pub fn run_scoped<'env, T: Send + 'env>(
    tasks: Vec<Box<dyn FnOnce() -> T + Send + 'env>>,
) -> Vec<T> {
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let reservation = reserve_workers(jobs().min(n));
    let workers = reservation.0;
    if workers <= 1 {
        // Inline on the caller's thread: no threads spawned, so hand any
        // granted budget straight back.
        drop(reservation);
        return tasks.into_iter().map(|t| t()).collect();
    }
    // A LIFO stack of (slot, task): completion order is irrelevant because
    // every task writes its own result slot.
    let queue: Mutex<Vec<(usize, Box<dyn FnOnce() -> T + Send + 'env>)>> =
        Mutex::new(tasks.into_iter().enumerate().collect());
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let item = queue.lock().expect("pool queue").pop();
                match item {
                    Some((slot, task)) => {
                        let out = task();
                        *results[slot].lock().expect("pool result slot") = Some(out);
                    }
                    None => break,
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("pool result slot")
                .expect("every task ran")
        })
        .collect()
}

/// Applies `f` to every item with at most [`jobs`] worker threads,
/// returning results in item order.
///
/// ```
/// use oplixnet::pool;
///
/// let lens = pool::parallel_map(vec!["a", "bb", "ccc"], |s| s.len());
/// assert_eq!(lens, vec![1, 2, 3]);
/// ```
pub fn parallel_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let f = &f;
    run_scoped(
        items
            .into_iter()
            .map(|item| Box::new(move || f(item)) as Box<dyn FnOnce() -> T + Send + '_>)
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_task_order() {
        // Tasks finish out of order (larger inputs sleep longer backwards),
        // results must not.
        let out = parallel_map((0..32u64).collect(), |i| {
            std::thread::sleep(std::time::Duration::from_micros((32 - i) * 50));
            i * 10
        });
        assert_eq!(out, (0..32u64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn tasks_can_borrow_caller_state() {
        let counter = AtomicU64::new(0);
        let tasks: Vec<Box<dyn FnOnce() -> u64 + Send + '_>> = (0..8)
            .map(|_| {
                Box::new(|| counter.fetch_add(1, Ordering::SeqCst))
                    as Box<dyn FnOnce() -> u64 + Send + '_>
            })
            .collect();
        let mut got = run_scoped(tasks);
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let out: Vec<u8> = run_scoped(Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn jobs_is_at_least_one() {
        assert!(jobs() >= 1);
    }
}
