//! Deployment of trained networks onto the photonic simulator.
//!
//! This closes the paper's Fig. 2 loop: software parameters → SVD phase
//! mapping → split ONN → field-level inference. Dense layers become
//! [`PhotonicLayer`]s (two MZI meshes + attenuators). Conventions:
//!
//! * **Biases** ride on an extra always-on reference waveguide
//!   (homogeneous coordinates: the deployed matrix is `[W | b]` acting on
//!   `[x; 1]`), so the optical path reproduces the software layer exactly.
//! * **Hidden activations** are electro-optic: the fields are coherently
//!   detected, the split ReLU is applied electronically, and the result is
//!   re-modulated — the standard assumption for MZI-ONN nonlinearities.
//! * **Output detection** follows the trained head: differential
//!   photodiodes for the merging decoder, plain photodiodes for the
//!   conventional ONN, coherent detection for the `Re` head.

use oplix_linalg::{CMatrix, Complex64};
use oplix_nn::ctensor::CTensor;
use oplix_nn::layers::CDense;
use oplix_nn::network::Network;
use oplix_photonics::count::DeviceCount;
use oplix_photonics::decoder::{differential_photodiode, photodiode_vec};
use oplix_photonics::svd_map::{MeshStyle, PhotonicLayer};
use rand::Rng;

/// How the deployed network's outputs are detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeployedDetection {
    /// Differential photodiodes over a doubled output (merging decoder).
    Differential,
    /// Photodiode amplitude readout (conventional ONN): the diode measures
    /// `|z|²`, the electronics take the square root — matching
    /// `ModulusHead` exactly (and leaving the argmax unchanged).
    Intensity,
    /// Coherent detection: logits are the real parts.
    CoherentReal,
}

/// A fully connected network deployed onto MZI meshes.
#[derive(Debug)]
pub struct DeployedFcnn {
    stages: Vec<PhotonicLayer>,
    detection: DeployedDetection,
}

/// Errors from deployment.
#[derive(Debug, PartialEq, Eq)]
pub enum DeployError {
    /// The network body contained a layer type that cannot be mapped
    /// (only dense layers, activations and reshapes are supported).
    UnsupportedLayer(usize),
    /// The network body contained no dense layers.
    Empty,
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::UnsupportedLayer(i) => {
                write!(f, "layer {i} is not deployable onto an FCNN photonic pipeline")
            }
            DeployError::Empty => write!(f, "network has no dense layers to deploy"),
        }
    }
}

impl std::error::Error for DeployError {}

impl DeployedFcnn {
    /// Extracts every [`CDense`] layer from the network body, augments each
    /// weight with its bias column, and maps it through SVD onto meshes.
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] if the body contains layers other than dense
    /// layers and parameter-free ones (activations / reshapes), which this
    /// FCNN pipeline skips by construction.
    pub fn from_network(net: &Network, detection: DeployedDetection, style: MeshStyle) -> Result<Self, DeployError> {
        let mut stages = Vec::new();
        for layer in net.body().layers() {
            if let Some(any) = layer.as_any() {
                if let Some(dense) = any.downcast_ref::<CDense>() {
                    stages.push(deploy_dense(dense, style));
                    continue;
                }
            }
            // Parameter-free layers (ReLU, flatten) are modelled in the
            // electro-optic stage; anything with parameters would have
            // exposed as_any.
        }
        if stages.is_empty() {
            return Err(DeployError::Empty);
        }
        Ok(DeployedFcnn { stages, detection })
    }

    /// Field-level inference of one sample (already complex-assigned,
    /// flattened). Returns the detected logits.
    ///
    /// # Panics
    ///
    /// Panics if the input length does not match the first stage fan-in
    /// minus the bias mode.
    pub fn forward(&self, input: &[Complex64]) -> Vec<f64> {
        let mut fields: Vec<Complex64> = input.to_vec();
        let last = self.stages.len() - 1;
        for (i, stage) in self.stages.iter().enumerate() {
            // Bias reference mode.
            fields.push(Complex64::ONE);
            fields = stage.forward(&fields);
            if i < last {
                // Electro-optic split ReLU between optical stages.
                for z in &mut fields {
                    *z = Complex64::new(z.re.max(0.0), z.im.max(0.0));
                }
            }
        }
        match self.detection {
            DeployedDetection::Differential => differential_photodiode(&fields),
            DeployedDetection::Intensity => {
                photodiode_vec(&fields).into_iter().map(f64::sqrt).collect()
            }
            DeployedDetection::CoherentReal => fields.iter().map(|z| z.re).collect(),
        }
    }

    /// Classifies a batch given as a complex dataset view; returns
    /// predicted class indices.
    pub fn classify(&self, inputs: &CTensor) -> Vec<usize> {
        let (n, d) = (inputs.shape()[0], inputs.shape()[1]);
        (0..n)
            .map(|i| {
                let sample: Vec<Complex64> = (0..d)
                    .map(|j| {
                        Complex64::new(inputs.re.at2(i, j) as f64, inputs.im.at2(i, j) as f64)
                    })
                    .collect();
                let logits = self.forward(&sample);
                argmax(&logits)
            })
            .collect()
    }

    /// Classification accuracy of the deployed hardware on a labelled view.
    pub fn accuracy(&self, inputs: &CTensor, labels: &[usize]) -> f64 {
        let preds = self.classify(inputs);
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        correct as f64 / labels.len() as f64
    }

    /// Total device inventory of the deployed pipeline.
    pub fn device_count(&self) -> DeviceCount {
        self.stages.iter().map(|s| s.device_count()).sum()
    }

    /// Injects Gaussian phase noise into every mesh (thermal crosstalk /
    /// fabrication imprecision study).
    pub fn inject_phase_noise<R: Rng>(&mut self, sigma: f64, rng: &mut R) {
        for stage in &mut self.stages {
            let (v, u) = stage.meshes_mut();
            *v = v.with_phase_noise(sigma, rng);
            *u = u.with_phase_noise(sigma, rng);
        }
    }

    /// Number of optical stages (dense layers).
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Total static heater power over every programmable phase of every
    /// mesh, in milliwatts, plus the number of phases (see
    /// [`oplix_photonics::power`]).
    pub fn static_power_mw(&self, max_mw: f64) -> (f64, usize) {
        use oplix_photonics::power::mesh_static_power_mw;
        let mut total = 0.0;
        let mut phases = 0usize;
        for stage in &self.stages {
            for mesh in [stage.v_mesh(), stage.u_mesh()] {
                total += mesh_static_power_mw(mesh, max_mw);
                phases += mesh.phases().len();
            }
        }
        (total, phases)
    }
}

fn deploy_dense(dense: &CDense, style: MeshStyle) -> PhotonicLayer {
    let (w_re, w_im) = dense.weight();
    let (b_re, b_im) = dense.bias();
    let (m, n) = (dense.n_out(), dense.n_in());
    // Homogeneous augmentation: last column is the bias.
    let aug = CMatrix::from_fn(m, n + 1, |i, j| {
        if j < n {
            Complex64::new(w_re.at2(i, j) as f64, w_im.at2(i, j) as f64)
        } else {
            Complex64::new(b_re.as_slice()[i] as f64, b_im.as_slice()[i] as f64)
        }
    });
    PhotonicLayer::from_matrix(&aug, style)
}

fn argmax(v: &[f64]) -> usize {
    v.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("non-NaN logits"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{build_fcnn, FcnnConfig, ModelVariant};
    use oplix_nn::tensor::Tensor;
    use oplix_photonics::decoder::DecoderKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_view(n: usize, d: usize, seed: u64) -> CTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        CTensor::new(
            Tensor::random_uniform(&[n, d], 1.0, &mut rng),
            Tensor::random_uniform(&[n, d], 1.0, &mut rng),
        )
    }

    #[test]
    fn deployed_logits_match_software() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = FcnnConfig { input: 6, hidden: 5, classes: 2 };
        let mut net = build_fcnn(&cfg, ModelVariant::Split(DecoderKind::Merge), &mut rng);
        let deployed =
            DeployedFcnn::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
                .expect("deployable");
        assert_eq!(deployed.num_stages(), 2);

        let view = random_view(4, 6, 2);
        let soft = net.forward(&view, false);
        for i in 0..4 {
            let sample: Vec<Complex64> = (0..6)
                .map(|j| Complex64::new(view.re.at2(i, j) as f64, view.im.at2(i, j) as f64))
                .collect();
            let optical = deployed.forward(&sample);
            for k in 0..2 {
                let s = soft.at2(i, k) as f64;
                assert!(
                    (optical[k] - s).abs() < 1e-3,
                    "sample {i} class {k}: optical {} vs software {s}",
                    optical[k]
                );
            }
        }
    }

    #[test]
    fn deployed_accuracy_matches_software_predictions() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = FcnnConfig { input: 4, hidden: 6, classes: 3 };
        let mut net = build_fcnn(&cfg, ModelVariant::Split(DecoderKind::Merge), &mut rng);
        let deployed =
            DeployedFcnn::from_network(&net, DeployedDetection::Differential, MeshStyle::Reck)
                .expect("deployable");
        let view = random_view(8, 4, 4);
        let soft = net.forward(&view, false);
        let hard = deployed.classify(&view);
        for i in 0..8 {
            let row: Vec<f64> = (0..3).map(|k| soft.at2(i, k) as f64).collect();
            assert_eq!(hard[i], argmax(&row), "sample {i}");
        }
    }

    #[test]
    fn intensity_detection_for_conventional_onn() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = FcnnConfig { input: 4, hidden: 4, classes: 2 };
        let mut net = build_fcnn(&cfg, ModelVariant::ConventionalOnn, &mut rng);
        let deployed =
            DeployedFcnn::from_network(&net, DeployedDetection::Intensity, MeshStyle::Clements)
                .expect("deployable");
        let view = CTensor::from_re(Tensor::random_uniform(&[3, 4], 1.0, &mut rng));
        let soft = net.forward(&view, false);
        for i in 0..3 {
            let sample: Vec<Complex64> = (0..4)
                .map(|j| Complex64::new(view.re.at2(i, j) as f64, 0.0))
                .collect();
            let optical = deployed.forward(&sample);
            for k in 0..2 {
                assert!((optical[k] - soft.at2(i, k) as f64).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn phase_noise_degrades_agreement() {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = FcnnConfig { input: 6, hidden: 6, classes: 2 };
        let net = build_fcnn(&cfg, ModelVariant::Split(DecoderKind::Merge), &mut rng);
        let mut deployed =
            DeployedFcnn::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
                .expect("deployable");
        let sample: Vec<Complex64> = (0..6).map(|j| Complex64::new(0.1 * j as f64, 0.05)).collect();
        let clean = deployed.forward(&sample);
        deployed.inject_phase_noise(0.3, &mut rng);
        let noisy = deployed.forward(&sample);
        let diff: f64 = clean
            .iter()
            .zip(&noisy)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-6, "noise had no effect");
    }

    #[test]
    fn device_count_includes_bias_modes() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = FcnnConfig { input: 6, hidden: 5, classes: 2 };
        let net = build_fcnn(&cfg, ModelVariant::Split(DecoderKind::Merge), &mut rng);
        let deployed =
            DeployedFcnn::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
                .expect("deployable");
        // Stage 1: 5 x 7 (bias mode), stage 2: 4 x 6.
        let expect = oplix_photonics::mzi_count(5, 7) + oplix_photonics::mzi_count(4, 6);
        assert_eq!(deployed.device_count().mzis, expect);
    }
}
