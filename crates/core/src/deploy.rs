//! Deployment of trained networks onto the photonic simulator.
//!
//! This closes the paper's Fig. 2 loop: software parameters → SVD phase
//! mapping → split ONN → field-level inference. Dense layers become
//! [`PhotonicLayer`]s (two MZI meshes + attenuators). Conventions:
//!
//! * **Biases** ride on an extra always-on reference waveguide
//!   (homogeneous coordinates: the deployed matrix is `[W | b]` acting on
//!   `[x; 1]`), so the optical path reproduces the software layer exactly.
//! * **Hidden activations** are electro-optic: the fields are coherently
//!   detected, the split ReLU is applied electronically, and the result is
//!   re-modulated — the standard assumption for MZI-ONN nonlinearities.
//! * **Output detection** follows the trained head: differential
//!   photodiodes for the merging decoder, plain photodiodes for the
//!   conventional ONN, coherent detection for the `Re` head.

use crate::engine::argmax;
use crate::error::Error;
use oplix_linalg::{CMatrix, Complex64};
use oplix_nn::ctensor::CTensor;
use oplix_nn::functional::im2col_indices;
use oplix_nn::head::{LinearDecoderHead, UnitaryDecoderHead};
use oplix_nn::layers::{CAvgPool2d, CConv2d, CDense, CFlatten, CRelu};
use oplix_nn::network::Network;
use oplix_photonics::compiled::{gather_into, CompiledLayer, GatherSource};
use oplix_photonics::count::DeviceCount;
use oplix_photonics::loss_model::OpticalLossModel;
use oplix_photonics::svd_map::{MeshStyle, PhotonicLayer};
use rand::Rng;
use std::any::Any;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// im2col windows expanding to at least this many gathered fields
/// (`samples × positions × patch_len`) fan the gather out across the
/// persistent executor instead of running it scalar on the calling
/// (batcher) thread. Below the threshold the executor hand-off costs more
/// than the gather itself; above it, big CNN windows stop serialising on
/// one core. Both paths expand through [`gather_into`], so the output is
/// bitwise identical either way.
const PARALLEL_GATHER_MIN_FIELDS: usize = 16 * 1024;

/// Reusable field buffers for [`DeployedFcnn::forward_into`]: after the
/// first call nothing reallocates, so a serving loop is allocation-free
/// per sample. Internally a one-sample [`WindowBuffers`] — the per-sample
/// path *is* the staged window walk at window size one, which is what
/// keeps every entry point bitwise interchangeable.
#[derive(Clone, Debug, Default)]
pub struct ForwardBuffers {
    win: WindowBuffers,
}

/// Reusable field buffers for [`DeployedFcnn::forward_window_into`], the
/// windowed batch path: ping-pong buffers sized `window × stage width`
/// plus a gather scratch for conv stages. After warm-up none reallocates,
/// so a serving worker pushes whole sample windows through compiled
/// kernels allocation-free.
#[derive(Clone, Debug, Default)]
pub struct WindowBuffers {
    cur: Vec<Complex64>,
    nxt: Vec<Complex64>,
    aux: Vec<Complex64>,
}

/// Applies one detection scheme to a row of output fields, appending the
/// detected scores. Shared verbatim by the per-sample and windowed paths
/// so the two stay bitwise interchangeable.
#[inline]
fn detect(detection: DeployedDetection, fields: &[Complex64], logits: &mut Vec<f64>) {
    match detection {
        DeployedDetection::Differential => {
            let k = fields.len() / 2;
            logits.extend((0..k).map(|i| fields[i].norm_sqr() - fields[i + k].norm_sqr()));
        }
        DeployedDetection::Intensity => {
            logits.extend(fields.iter().map(|z| z.norm_sqr().sqrt()));
        }
        DeployedDetection::CoherentReal => logits.extend(fields.iter().map(|z| z.re)),
    }
}

/// How the deployed network's outputs are detected.
///
/// This is the hardware-side [`Detection`](oplix_photonics::decoder::Detection)
/// enum from `oplix-photonics`, re-exported under its historical name: for
/// the learnable decoders it is derived from the trained
/// [`DecoderKind`](oplix_photonics::decoder::DecoderKind) via
/// [`DecoderKind::detection`](oplix_photonics::decoder::DecoderKind::detection),
/// which is how the deploy stage picks it.
pub use oplix_photonics::decoder::Detection as DeployedDetection;

/// One optical stage of a deployed pipeline: a dense layer mapped onto
/// meshes, plus how fields enter it (ancilla padding for the unitary
/// decoder) and leave it (electro-optic split ReLU between body stages).
///
/// The stage carries both the *hardware description* (`layer`, with
/// mutable phases for the noise models) and the *compiled kernel*
/// (`compiled`, the precomputed-coefficient form every forward pass runs
/// through). Whenever phases are mutated the kernel is recompiled; the two
/// are bitwise interchangeable by the [`CompiledLayer`] contract.
#[derive(Clone, Debug)]
pub(crate) struct OpticalStage {
    pub(crate) layer: PhotonicLayer,
    /// The compiled form of `layer`; the serving hot path.
    compiled: CompiledLayer,
    /// Zero-pad the incoming fields up to the stage fan-in (ancilla modes
    /// of the unitary decoder).
    pad_input: bool,
    /// Apply the electro-optic split ReLU after this stage.
    relu_after: bool,
}

/// A convolution lowered onto meshes through the im2col view: a pure
/// electronic index gather (one patch row per output position, padding
/// taps dark, bias tap on the reference mode) feeds the dense
/// `[out_ch, patch_len + 1]` kernel matrix realised as the standard SVD →
/// two-mesh + attenuator [`PhotonicLayer`]. One mesh serves every output
/// position — the same weight sharing that makes conv cheap in software
/// keeps the photonic footprint at one kernel-sized mesh per layer.
#[derive(Clone, Debug)]
pub(crate) struct ConvStage {
    pub(crate) layer: PhotonicLayer,
    /// The compiled form of `layer`; the serving hot path.
    compiled: CompiledLayer,
    /// The im2col gather: `positions × (patch_len + 1)` sources.
    plan: Arc<Vec<GatherSource>>,
    /// Convolution output positions `H'·W'` (mesh rows per sample).
    positions: usize,
    /// Output channels of the convolution.
    out_ch: usize,
    /// Flattened input features `C·H·W`.
    in_features: usize,
    /// Flattened output features `out_ch·H'·W'`.
    out_features: usize,
    /// Apply the electro-optic split ReLU after this stage.
    relu_after: bool,
}

/// Electronic average pooling between optical stages: like the split
/// ReLU, the fields are coherently detected, averaged per window, and
/// re-modulated — a linear index gather, no optical devices.
#[derive(Clone, Debug)]
pub(crate) struct PoolStage {
    /// Flat input indices, `k²` per output feature, in output order.
    taps: Arc<Vec<u32>>,
    /// Window area `k²`.
    k2: usize,
    /// Flattened input features `C·H·W`.
    in_features: usize,
    /// Flattened output features `C·(H/k)·(W/k)`.
    out_features: usize,
    /// Apply the electro-optic split ReLU after this stage.
    relu_after: bool,
}

/// One stage of a deployed pipeline: a dense layer on meshes, a lowered
/// convolution (gather + mesh), or an electronic pooling step.
#[derive(Clone, Debug)]
pub(crate) enum DeployedStage {
    /// A dense layer mapped onto meshes.
    Mesh(OpticalStage),
    /// An im2col-lowered convolution.
    Conv(ConvStage),
    /// Electronic average pooling.
    Pool(PoolStage),
}

impl DeployedStage {
    /// Flattened field count one sample presents to this stage.
    fn input_width(&self) -> usize {
        match self {
            // Minus the always-on bias reference mode.
            DeployedStage::Mesh(s) => s.layer.input_dim() - 1,
            DeployedStage::Conv(s) => s.in_features,
            DeployedStage::Pool(s) => s.in_features,
        }
    }

    /// Flattened field count one sample leaves this stage with.
    fn output_width(&self) -> usize {
        match self {
            DeployedStage::Mesh(s) => s.layer.output_dim(),
            DeployedStage::Conv(s) => s.out_features,
            DeployedStage::Pool(s) => s.out_features,
        }
    }

    /// The photonic hardware of this stage, if it has any (pooling is
    /// purely electronic).
    fn optical(&self) -> Option<&PhotonicLayer> {
        match self {
            DeployedStage::Mesh(s) => Some(&s.layer),
            DeployedStage::Conv(s) => Some(&s.layer),
            DeployedStage::Pool(_) => None,
        }
    }

    fn relu_after_mut(&mut self) -> &mut bool {
        match self {
            DeployedStage::Mesh(s) => &mut s.relu_after,
            DeployedStage::Conv(s) => &mut s.relu_after,
            DeployedStage::Pool(s) => &mut s.relu_after,
        }
    }

    /// Applies this stage (trailing electro-optic ReLU included) to a
    /// staged window: `buf.cur` holds `samples × width` fields on entry
    /// and the stage's output on return; the new per-sample width is
    /// returned. This is the *one* per-stage transform in the codebase —
    /// the sequential walk ([`DeployedFcnn::forward_staged`]) and the
    /// stage-pipelined walk both call it verbatim, which is what makes
    /// the two bitwise identical by construction.
    fn apply(&self, buf: &mut WindowBuffers, width: usize, samples: usize) -> usize {
        let WindowBuffers { cur, nxt, aux } = buf;
        let (out_width, relu_after) = match self {
            DeployedStage::Mesh(st) => {
                // Re-stage: ancilla padding (unitary decoder) plus the
                // bias reference mode, exactly as the per-sample walk
                // always did.
                let fan_in = st.layer.input_dim() - 1;
                let padded = if st.pad_input {
                    width.max(fan_in)
                } else {
                    width
                };
                let in_w = padded + 1;
                nxt.clear();
                nxt.resize(samples * in_w, Complex64::ZERO);
                for s in 0..samples {
                    let src = &cur[s * width..(s + 1) * width];
                    let dst = &mut nxt[s * in_w..(s + 1) * in_w];
                    dst[..width].copy_from_slice(src);
                    dst[padded] = Complex64::ONE;
                }
                std::mem::swap(cur, nxt);
                st.compiled.forward_batch(cur, nxt, samples);
                (st.layer.output_dim(), st.relu_after)
            }
            DeployedStage::Conv(st) => {
                // im2col: gather every output position's patch (bias
                // on the reference mode) and push all patch rows of
                // the window through one compiled mesh batch. Windows
                // whose gather is large enough to amortise a fan-out
                // expand on the persistent executor instead of the
                // calling thread (bitwise identical — both paths run
                // `gather_into` per sample).
                let plan = &st.plan[..];
                let fields = samples * plan.len();
                if fields >= PARALLEL_GATHER_MIN_FIELDS && crate::pool::jobs() > 1 {
                    let src = &cur[..samples * width];
                    nxt.clear();
                    nxt.resize(fields, Complex64::ZERO);
                    let shards = crate::pool::jobs().min(samples);
                    let chunk = samples.div_ceil(shards);
                    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = nxt
                        .chunks_mut(chunk * plan.len())
                        .zip(src.chunks(chunk * width))
                        .map(|(dst, win)| {
                            Box::new(move || {
                                for (d, s) in dst.chunks_mut(plan.len()).zip(win.chunks(width)) {
                                    gather_into(plan, s, d);
                                }
                            }) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    crate::pool::run_scoped(tasks);
                    st.compiled.forward_batch(nxt, aux, samples * st.positions);
                } else {
                    st.compiled
                        .forward_gathered(&cur[..samples * width], width, plan, nxt, aux);
                }
                // Mesh rows come back position-major `[P][O]`; the
                // software conv layout is channel-major `[O, H'·W']`.
                cur.clear();
                cur.resize(samples * st.out_features, Complex64::ZERO);
                for s in 0..samples {
                    let rows = &nxt[s * st.positions * st.out_ch..][..st.positions * st.out_ch];
                    let dst = &mut cur[s * st.out_features..][..st.out_features];
                    for p in 0..st.positions {
                        for o in 0..st.out_ch {
                            dst[o * st.positions + p] = rows[p * st.out_ch + o];
                        }
                    }
                }
                (st.out_features, st.relu_after)
            }
            DeployedStage::Pool(st) => {
                // Electronic average pooling: detect, average the k²
                // taps per output feature, re-modulate.
                let inv = 1.0 / st.k2 as f64;
                nxt.clear();
                nxt.resize(samples * st.out_features, Complex64::ZERO);
                for s in 0..samples {
                    let src = &cur[s * width..(s + 1) * width];
                    let dst = &mut nxt[s * st.out_features..][..st.out_features];
                    for (f, taps) in dst.iter_mut().zip(st.taps.chunks_exact(st.k2)) {
                        let mut acc = Complex64::ZERO;
                        for &t in taps {
                            acc += src[t as usize];
                        }
                        *f = acc.scale(inv);
                    }
                }
                std::mem::swap(cur, nxt);
                (st.out_features, st.relu_after)
            }
        };
        if relu_after {
            for z in cur.iter_mut() {
                *z = Complex64::new(z.re.max(0.0), z.im.max(0.0));
            }
        }
        out_width
    }
}

/// A trained network deployed onto MZI meshes — fully connected bodies
/// and CNN bodies alike (conv layers lower through the im2col view, see
/// [`DeployedFcnn::from_network_shaped`]; the name is historical).
///
/// The stage list covers the network *body* and, for the linear and
/// unitary decoders, the decoder itself (an extra trained optical stage),
/// so field-level inference is faithful to the software head for every
/// [`DecoderKind`](oplix_photonics::decoder::DecoderKind).
///
/// Cloning copies every mesh phase and attenuator — cheap relative to
/// decomposition, which is what makes per-batch noise-injection sessions
/// (see [`crate::engine::InferenceEngine::noise_session`]) affordable.
#[derive(Clone, Debug)]
pub struct DeployedFcnn {
    stages: Vec<DeployedStage>,
    detection: DeployedDetection,
}

/// Errors from deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeployError {
    /// The network body contained a layer type that cannot be lowered
    /// (supported: dense, conv, average pooling, split ReLU, flatten).
    /// Carries the body index *and* the layer's type name so the
    /// remaining unsupported kinds (max pooling, batch norm, residual
    /// blocks, modReLU) are diagnosable from the error alone.
    UnsupportedLayer {
        /// Index of the offending layer in the network body.
        index: usize,
        /// Short type name of the offending layer (e.g. `"CMaxPool2d"`).
        kind: &'static str,
    },
    /// The network body contained no weight layers to map onto meshes.
    Empty,
    /// Differential detection pairs positive/negative diode banks, so the
    /// optical output width must be even.
    OddDifferentialOutput {
        /// The (odd) optical output width.
        width: usize,
    },
    /// The body contains conv/pool layers, which need the input image
    /// shape to build their gather plans — deploy through
    /// [`DeployedFcnn::from_network_shaped`] (the stage API passes the
    /// assigned shape automatically).
    MissingImageShape {
        /// Body index of the first layer that needed the image shape.
        index: usize,
    },
    /// A layer's geometry or placement is inconsistent with the incoming
    /// pipeline state: channel mismatch, kernel larger than the padded
    /// input, a pooling window not dividing the feature map, or an
    /// activation before any weight layer.
    Geometry {
        /// Body index of the offending layer.
        index: usize,
    },
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::UnsupportedLayer { index, kind } => {
                write!(
                    f,
                    "layer {index} ({kind}) is not deployable onto a photonic pipeline \
                     (supported: dense, conv, average pooling, split ReLU, flatten)"
                )
            }
            DeployError::Empty => write!(f, "network has no weight layers to deploy"),
            DeployError::OddDifferentialOutput { width } => write!(
                f,
                "differential detection needs an even optical output width, got {width}"
            ),
            DeployError::MissingImageShape { index } => write!(
                f,
                "layer {index} needs the input image shape to build its gather plan; \
                 deploy via from_network_shaped (or the stage API, which passes it)"
            ),
            DeployError::Geometry { index } => write!(
                f,
                "layer {index}'s geometry or placement is inconsistent with the \
                 incoming pipeline state (channel mismatch, kernel larger than the \
                 padded input, pooling window not dividing the feature map, or an \
                 activation before any weight layer)"
            ),
        }
    }
}

impl std::error::Error for DeployError {}

impl DeployedFcnn {
    /// Deploys a network body whose geometry is self-describing — dense
    /// layers, activations and reshapes. Conv/pool bodies need the input
    /// image shape: use [`DeployedFcnn::from_network_shaped`].
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] if the body contains an unsupported layer
    /// kind, a conv/pool layer (no image shape available here), or if
    /// differential detection is requested over an odd optical output
    /// width.
    pub fn from_network(
        net: &Network,
        detection: DeployedDetection,
        style: MeshStyle,
    ) -> Result<Self, DeployError> {
        Self::from_network_shaped(net, None, detection, style)
    }

    /// Deploys a trained network — FCNN *or* CNN body — onto MZI meshes.
    ///
    /// Dense layers are augmented with their bias column and mapped
    /// through SVD onto two meshes + attenuators. Conv layers lower
    /// through the **im2col view**: an electronic index gather extracts
    /// one patch per output position (padding taps are dark modes, the
    /// bias rides the always-on reference mode) and the dense
    /// `[out_ch, patch_len + 1]` kernel matrix becomes one SVD-mapped
    /// mesh serving every position. Average pooling and the split ReLU
    /// run electronically between optical stages; flatten is the identity
    /// on the flat field vector. `input_shape` is the `(C, H, W)` shape
    /// one body input sample has — required for conv/pool bodies, ignored
    /// by dense-only bodies.
    ///
    /// ```
    /// use oplixnet::deploy::{DeployedFcnn, DeployedDetection};
    /// use oplix_nn::head::MergeHead;
    /// use oplix_nn::layers::{CConv2d, CDense, CFlatten, CRelu, CSequential};
    /// use oplix_nn::network::Network;
    /// use oplix_photonics::svd_map::MeshStyle;
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let mut rng = StdRng::seed_from_u64(7);
    /// let body = CSequential::new()
    ///     .push(CConv2d::new(1, 3, 3, 1, 1, &mut rng)) // 1→3 ch, 3×3, same
    ///     .push(CRelu::new())
    ///     .push(CFlatten::new())
    ///     .push(CDense::new(3 * 4 * 4, 4, &mut rng)); // 2 classes, merged
    /// let net = Network::new(body, Box::new(MergeHead::new()));
    /// let deployed = DeployedFcnn::from_network_shaped(
    ///     &net,
    ///     Some((1, 4, 4)), // one 4×4 single-channel input image
    ///     DeployedDetection::Differential,
    ///     MeshStyle::Clements,
    /// )
    /// .expect("conv bodies lower through im2col");
    /// assert_eq!(deployed.input_dim(), 16);
    /// assert_eq!(deployed.logit_dim(), 2);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`DeployError`] if the body contains an unsupported layer
    /// kind ([`DeployError::UnsupportedLayer`] names it), a conv/pool
    /// layer appears with no image shape to lower against, the shape is
    /// inconsistent with a layer's geometry, or differential detection is
    /// requested over an odd optical output width.
    pub fn from_network_shaped(
        net: &Network,
        input_shape: Option<(usize, usize, usize)>,
        detection: DeployedDetection,
        style: MeshStyle,
    ) -> Result<Self, DeployError> {
        let mut stages: Vec<DeployedStage> = Vec::new();
        // The image shape flowing into the next layer; `None` once the
        // features are flat (or were never an image).
        let mut image = input_shape;
        for (index, layer) in net.body().layers().iter().enumerate() {
            let unsupported = DeployError::UnsupportedLayer {
                index,
                kind: layer.layer_type(),
            };
            let Some(any) = layer.as_any() else {
                return Err(unsupported);
            };
            if let Some(dense) = any.downcast_ref::<CDense>() {
                stages.push(DeployedStage::Mesh(
                    deploy_dense(dense, style).into_stage(false, false),
                ));
                image = None;
            } else if let Some(conv) = any.downcast_ref::<CConv2d>() {
                let (c, h, w) = image.ok_or(DeployError::MissingImageShape { index })?;
                let stage = deploy_conv(conv, index, c, h, w, style)?;
                let (oh, ow) = conv.output_hw(h, w);
                image = Some((conv.geometry().1, oh, ow));
                stages.push(DeployedStage::Conv(stage));
            } else if let Some(pool) = any.downcast_ref::<CAvgPool2d>() {
                let (c, h, w) = image.ok_or(DeployError::MissingImageShape { index })?;
                let k = pool.window();
                if !h.is_multiple_of(k) || !w.is_multiple_of(k) {
                    return Err(DeployError::Geometry { index });
                }
                stages.push(DeployedStage::Pool(deploy_pool(c, h, w, k)));
                image = Some((c, h / k, w / k));
            } else if any.downcast_ref::<CRelu>().is_some() {
                // The split ReLU is the electro-optic step after the
                // preceding stage; an activation before any weight layer
                // has no stage to ride on — a placement problem, not an
                // unsupported kind.
                match stages.last_mut() {
                    Some(stage) => *stage.relu_after_mut() = true,
                    None => return Err(DeployError::Geometry { index }),
                }
            } else if any.downcast_ref::<CFlatten>().is_some() {
                // Row-major `[C, H, W]` flattening is the identity on the
                // flat field vector the deployed walk already carries.
                image = None;
            } else {
                return Err(unsupported);
            }
        }
        if stages.is_empty() {
            return Err(DeployError::Empty);
        }

        // Decoder-bearing heads deploy as one more optical stage, so the
        // hardware is faithful to the trained head for every decoder kind.
        if let Some(any) = net.head().as_any() {
            if let Some(linear) = any.downcast_ref::<LinearDecoderHead>() {
                stages.push(DeployedStage::Mesh(
                    deploy_dense(linear.dense(), style).into_stage(false, false),
                ));
            } else if let Some(unitary) = any.downcast_ref::<UnitaryDecoderHead>() {
                // K class modes + K zero ancilla modes enter the 2K-wide
                // decoder array.
                stages.push(DeployedStage::Mesh(
                    deploy_dense(unitary.dense(), style).into_stage(true, false),
                ));
            }
        }
        if detection == DeployedDetection::Differential {
            let width = stages.last().expect("non-empty").output_width();
            if !width.is_multiple_of(2) {
                return Err(DeployError::OddDifferentialOutput { width });
            }
        }
        Ok(DeployedFcnn { stages, detection })
    }

    /// The complex fan-in of the deployed pipeline: the flattened field
    /// count one query sample must provide (for a mesh first stage, its
    /// width minus the always-on bias mode; for a conv/pool first stage,
    /// the flattened `C·H·W` image).
    pub fn input_dim(&self) -> usize {
        self.stages[0].input_width()
    }

    /// Width of the detected logit vector.
    pub fn logit_dim(&self) -> usize {
        let optical = self.stages[self.stages.len() - 1].output_width();
        match self.detection {
            DeployedDetection::Differential => optical / 2,
            _ => optical,
        }
    }

    /// The detection scheme the pipeline reads out through.
    pub fn detection(&self) -> DeployedDetection {
        self.detection
    }

    /// Field-level inference of one sample into caller-owned buffers:
    /// zero allocations after warm-up. `logits` is cleared and filled with
    /// the detected class scores.
    ///
    /// This is the hot path [`crate::engine::InferenceEngine`] batches
    /// over; [`DeployedFcnn::forward`] is the allocating convenience
    /// wrapper.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the input length does not match
    /// [`DeployedFcnn::input_dim`].
    pub fn forward_into(
        &self,
        input: &[Complex64],
        buf: &mut ForwardBuffers,
        logits: &mut Vec<f64>,
    ) -> Result<(), Error> {
        if input.len() != self.input_dim() {
            return Err(Error::ShapeMismatch {
                expected: self.input_dim(),
                got: input.len(),
                what: "input fields",
            });
        }
        // A one-sample staged window: the exact walk every batched entry
        // point runs, so per-sample and batched serving stay bitwise
        // interchangeable by construction.
        logits.clear();
        buf.win.cur.clear();
        buf.win.cur.extend_from_slice(input);
        self.forward_staged(&mut buf.win, 1, logits);
        Ok(())
    }

    /// Field-level inference of a *window* of rows `start..end` of a
    /// `[N, D]` complex view through the compiled kernels, into
    /// caller-owned buffers: one [`CompiledLayer::forward_batch`] call per
    /// optical stage covers the whole window, instead of re-walking the
    /// stage list per sample. `logits` is cleared and filled row-major
    /// (`(end − start) × logit_dim` detected scores).
    ///
    /// Every sample runs the exact per-sample kernel, so the window is
    /// bitwise identical to `end − start` sequential
    /// [`DeployedFcnn::forward_into`] calls — the property the engine's
    /// sharded serving tests pin.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the view is not rank 2, its
    /// sample width does not match [`DeployedFcnn::input_dim`], or the
    /// window overruns the view.
    pub fn forward_window_into(
        &self,
        inputs: &CTensor,
        start: usize,
        end: usize,
        buf: &mut WindowBuffers,
        logits: &mut Vec<f64>,
    ) -> Result<(), Error> {
        if inputs.shape().len() < 2 {
            return Err(Error::ShapeMismatch {
                expected: 2,
                got: inputs.shape().len(),
                what: "batch rank",
            });
        }
        // `[N, D]` views and `[N, C, H, W]` image views alike: samples are
        // contiguous row-major, so the trailing axes flatten for free.
        let n = inputs.shape()[0];
        let d: usize = inputs.shape()[1..].iter().product();
        if d != self.input_dim() {
            return Err(Error::ShapeMismatch {
                expected: self.input_dim(),
                got: d,
                what: "sample width",
            });
        }
        if start > end {
            // An inverted window: the start is the offending value, not
            // the (possibly in-bounds) end.
            return Err(Error::ShapeMismatch {
                expected: end,
                got: start,
                what: "batch window start",
            });
        }
        if end > n {
            return Err(Error::ShapeMismatch {
                expected: n,
                got: end,
                what: "batch window end",
            });
        }
        logits.clear();
        let samples = end - start;
        if samples == 0 {
            return Ok(());
        }

        // Stage the window: row `s` of the buffer is sample `start + s`.
        let (re, im) = (inputs.re.as_slice(), inputs.im.as_slice());
        let cur = &mut buf.cur;
        cur.clear();
        cur.reserve(samples * d);
        for s in start..end {
            cur.extend(
                re[s * d..(s + 1) * d]
                    .iter()
                    .zip(&im[s * d..(s + 1) * d])
                    .map(|(&a, &b)| Complex64::new(a as f64, b as f64)),
            );
        }
        self.forward_staged(buf, samples, logits);
        Ok(())
    }

    /// Field-level inference of `rows.len() / input_dim` samples given as
    /// one contiguous row-major complex slice — the *borrowed-batch* entry
    /// point the serving front end's micro-batcher drives: the batcher
    /// stages client samples into one flat buffer and the engine serves it
    /// directly, with no intermediate tensor copy or `f32` round trip.
    /// `logits` is cleared and filled row-major.
    ///
    /// Runs the exact staged window walk of
    /// [`DeployedFcnn::forward_window_into`], so results are bitwise
    /// identical to the per-sample and tensor-view paths.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `rows.len()` is not a multiple
    /// of [`DeployedFcnn::input_dim`].
    pub fn forward_rows_into(
        &self,
        rows: &[Complex64],
        buf: &mut WindowBuffers,
        logits: &mut Vec<f64>,
    ) -> Result<(), Error> {
        let d = self.input_dim();
        if d == 0 || !rows.len().is_multiple_of(d) {
            return Err(Error::ShapeMismatch {
                expected: d,
                got: rows.len(),
                what: "row fields",
            });
        }
        logits.clear();
        let samples = rows.len() / d;
        if samples == 0 {
            return Ok(());
        }
        buf.cur.clear();
        buf.cur.extend_from_slice(rows);
        self.forward_staged(buf, samples, logits);
        Ok(())
    }

    /// The staged window walk every entry point (batched *and*
    /// per-sample) shares: `buf.cur` holds `samples × input_dim` staged
    /// fields on entry; detected scores are appended to `logits`
    /// row-major. Each optical stage runs one compiled batch kernel
    /// across the whole window — for conv stages, across every im2col
    /// patch row of every sample in the window at once.
    fn forward_staged(&self, buf: &mut WindowBuffers, samples: usize, logits: &mut Vec<f64>) {
        let mut width = self.input_dim();
        for stage in &self.stages {
            width = stage.apply(buf, width, samples);
        }
        for row in buf.cur.chunks_exact(width.max(1)) {
            detect(self.detection, row, logits);
        }
    }

    /// Field-level inference of one sample (already complex-assigned,
    /// flattened). Returns the detected logits.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the input length does not match
    /// the first stage fan-in minus the bias mode.
    pub fn try_forward(&self, input: &[Complex64]) -> Result<Vec<f64>, Error> {
        let mut buf = ForwardBuffers::default();
        let mut logits = Vec::new();
        self.forward_into(input, &mut buf, &mut logits)?;
        Ok(logits)
    }

    /// Field-level inference of one sample (already complex-assigned,
    /// flattened). Returns the detected logits.
    ///
    /// # Panics
    ///
    /// Panics if the input length does not match the first stage fan-in
    /// minus the bias mode; see [`DeployedFcnn::try_forward`] for the
    /// fallible form.
    pub fn forward(&self, input: &[Complex64]) -> Vec<f64> {
        // Use the legacy detection math on the shared field pipeline.
        self.try_forward(input).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Classifies a batch given as a `[N, D]` complex dataset view;
    /// returns predicted class indices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the view is not rank 2 or `D`
    /// differs from [`DeployedFcnn::input_dim`].
    pub fn try_classify(&self, inputs: &CTensor) -> Result<Vec<usize>, Error> {
        if inputs.shape().len() < 2 {
            return Err(Error::ShapeMismatch {
                expected: 2,
                got: inputs.shape().len(),
                what: "batch rank",
            });
        }
        let n = inputs.shape()[0];
        let d: usize = inputs.shape()[1..].iter().product();
        let (re, im) = (inputs.re.as_slice(), inputs.im.as_slice());
        let mut buf = ForwardBuffers::default();
        let mut sample = Vec::with_capacity(d);
        let mut logits = Vec::new();
        (0..n)
            .map(|i| {
                sample.clear();
                sample.extend(
                    re[i * d..(i + 1) * d]
                        .iter()
                        .zip(&im[i * d..(i + 1) * d])
                        .map(|(&a, &b)| Complex64::new(a as f64, b as f64)),
                );
                self.forward_into(&sample, &mut buf, &mut logits)?;
                Ok(argmax(&logits))
            })
            .collect()
    }

    /// Classifies a batch given as a complex dataset view; returns
    /// predicted class indices.
    ///
    /// # Panics
    ///
    /// Panics if the sample width does not match the mesh fan-in; see
    /// [`DeployedFcnn::try_classify`] for the fallible form (and
    /// [`crate::engine::InferenceEngine::classify`] for the buffered
    /// serving path).
    pub fn classify(&self, inputs: &CTensor) -> Vec<usize> {
        self.try_classify(inputs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Classification accuracy of the deployed hardware on a labelled view.
    ///
    /// # Panics
    ///
    /// Panics if the sample width does not match the mesh fan-in (see
    /// [`DeployedFcnn::try_classify`]).
    pub fn accuracy(&self, inputs: &CTensor, labels: &[usize]) -> f64 {
        let preds = self.classify(inputs);
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        correct as f64 / labels.len() as f64
    }

    /// Total device inventory of the deployed pipeline (electronic stages
    /// — pooling, activations — contribute none).
    pub fn device_count(&self) -> DeviceCount {
        self.stages
            .iter()
            .filter_map(|s| s.optical())
            .map(|layer| layer.device_count())
            .sum()
    }

    /// Injects Gaussian phase noise into every mesh (thermal crosstalk /
    /// fabrication imprecision study) and recompiles the affected kernels
    /// so the serving path sees the perturbed phases. Electronic stages
    /// (pooling) carry no phases and are untouched.
    pub fn inject_phase_noise<R: Rng>(&mut self, sigma: f64, rng: &mut R) {
        for stage in &mut self.stages {
            let (layer, compiled) = match stage {
                DeployedStage::Mesh(st) => (&mut st.layer, &mut st.compiled),
                DeployedStage::Conv(st) => (&mut st.layer, &mut st.compiled),
                DeployedStage::Pool(_) => continue,
            };
            let (v, u) = layer.meshes_mut();
            *v = v.with_phase_noise(sigma, rng);
            *u = u.with_phase_noise(sigma, rng);
            *compiled = CompiledLayer::compile(layer);
        }
    }

    /// Applies one random-walk drift step to every mesh phase and
    /// recompiles the affected kernels. Unlike
    /// [`DeployedFcnn::inject_phase_noise`] inside a scoped session, drift
    /// *accumulates*: each call moves the deployment further from its
    /// calibrated point, and the only way back is re-deploying from clean
    /// weights (the hot-swap recalibration path). Electronic stages carry
    /// no phases and are untouched.
    pub fn drift_step(&mut self, drift: &mut oplix_photonics::PhaseDrift) {
        for stage in &mut self.stages {
            let (layer, compiled) = match stage {
                DeployedStage::Mesh(st) => (&mut st.layer, &mut st.compiled),
                DeployedStage::Conv(st) => (&mut st.layer, &mut st.compiled),
                DeployedStage::Pool(_) => continue,
            };
            let (v, u) = layer.meshes_mut();
            drift.step_mesh(v);
            drift.step_mesh(u);
            *compiled = CompiledLayer::compile(layer);
        }
    }

    /// The deployed stages, for engine-internal phase bookkeeping.
    pub(crate) fn stages_vec(&self) -> &Vec<DeployedStage> {
        &self.stages
    }

    /// Mutable deployed stages, for engine-internal phase restoration.
    pub(crate) fn stages_vec_mut(&mut self) -> &mut Vec<DeployedStage> {
        &mut self.stages
    }

    /// Number of deployed stages (mesh, conv and pooling stages alike).
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Number of stages carrying photonic hardware (dense meshes and
    /// lowered convolutions; pooling is electronic) — also the number of
    /// SVD decompositions a cold deployment performs, which is what the
    /// deployment-cache tests count hits against.
    pub fn num_optical_stages(&self) -> usize {
        self.stages.iter().filter(|s| s.optical().is_some()).count()
    }

    /// Total static heater power over every programmable phase of every
    /// mesh, in milliwatts, plus the number of phases (see
    /// [`oplix_photonics::power`]).
    pub fn static_power_mw(&self, max_mw: f64) -> (f64, usize) {
        use oplix_photonics::power::mesh_static_power_mw;
        let mut total = 0.0;
        let mut phases = 0usize;
        for layer in self.stages.iter().filter_map(|s| s.optical()) {
            for mesh in [layer.v_mesh(), layer.u_mesh()] {
                total += mesh_static_power_mw(mesh, max_mw);
                phases += mesh.phases().len();
            }
        }
        (total, phases)
    }

    /// Per-chip physical budget report of the deployed pipeline, one entry
    /// per stage in stage order, under the silicon platform defaults
    /// ([`OpticalLossModel::silicon_defaults`]). Each optical stage is one
    /// physical chip (two MZI meshes plus attenuators); its worst-path
    /// insertion loss and time-of-flight latency are the sums over both
    /// meshes. Electronic stages (pooling) report zeros.
    pub fn chip_reports(&self) -> Vec<ChipReport> {
        self.chip_reports_with(&OpticalLossModel::silicon_defaults())
    }

    /// [`DeployedFcnn::chip_reports`] under an explicit platform model.
    pub fn chip_reports_with(&self, model: &OpticalLossModel) -> Vec<ChipReport> {
        self.stages
            .iter()
            .enumerate()
            .map(|(i, stage)| {
                let mut report = ChipReport {
                    stage: i,
                    optical: false,
                    input_width: stage.input_width(),
                    output_width: stage.output_width(),
                    mesh_depth: 0,
                    insertion_loss_db: 0.0,
                    latency_ps: 0.0,
                };
                if let Some(layer) = stage.optical() {
                    report.optical = true;
                    for mesh in [layer.v_mesh(), layer.u_mesh()] {
                        report.mesh_depth += mesh.depth();
                        report.insertion_loss_db += model.worst_path_loss_db(mesh);
                        report.latency_ps += model.latency_ps(mesh);
                    }
                }
                report
            })
            .collect()
    }

    /// The stage-pipelined counterpart of the sequential windowed walk:
    /// the span's `total` rows are cut into windows of at most `window`
    /// samples, the stage chain is partitioned into `helpers + 1`
    /// contiguous segments (each deployed stage — physically one chip —
    /// belongs to exactly one segment), and windows stream through the
    /// segments concurrently over bounded rings of
    /// [`STAGE_RING_WINDOWS`] windows each.
    ///
    /// The calling thread stages each window via `fill(lo, hi, buffer)`
    /// (span-relative row range) and runs segment 0; each helper thread
    /// runs one further segment; the last segment detects and collects
    /// logits. Rings are FIFO with a single producer and consumer per
    /// ring, so windows reach detection in submission order — the
    /// returned logits are row-major over the span exactly like the
    /// sequential walk's. Every segment applies [`DeployedStage::apply`]
    /// to whole windows at the same window boundaries the sequential walk
    /// uses, so the result is **bitwise identical** to
    /// [`DeployedFcnn::forward_rows_into`] over the same rows at any
    /// helper count.
    ///
    /// Also returns per-stage occupancy (windows seen, busy nanoseconds)
    /// in stage order — the dynamic half of the multi-chip report whose
    /// static half is [`DeployedFcnn::chip_reports`].
    ///
    /// Callers must hold a [`crate::pool`] pipeline reservation covering
    /// the caller plus `helpers` threads; `helpers` must be ≥ 1 (with no
    /// helper budget, fall back to the sequential walk) and the pipeline
    /// must have at least 2 stages.
    pub(crate) fn forward_windows_pipelined(
        &self,
        total: usize,
        window: usize,
        helpers: usize,
        fill: &mut dyn FnMut(usize, usize, &mut Vec<Complex64>),
    ) -> (Vec<f64>, Vec<StageOccupancy>) {
        debug_assert!(helpers >= 1 && self.stages.len() >= 2 && window >= 1);
        let stages = &self.stages[..];
        let nseg = (helpers + 1).min(stages.len());
        // Segment `s` covers stages `bounds[s]..bounds[s + 1]`: contiguous,
        // balanced by stage count, every stage in exactly one segment.
        let bounds: Vec<usize> = (0..=nseg).map(|s| s * stages.len() / nseg).collect();
        let windows = total.div_ceil(window);
        let rings: Vec<StageRing> = (0..nseg - 1).map(|_| StageRing::new()).collect();
        // Spent window allocations flow back from the sink for reuse, so a
        // long span settles into a fixed set of buffers.
        let spares: Mutex<Vec<Vec<Complex64>>> = Mutex::new(Vec::new());
        let input_width = self.input_dim();
        let detection = self.detection;

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nseg - 1);
            for seg in 1..nseg {
                let ring_in = &rings[seg - 1];
                let ring_out = rings.get(seg);
                let seg_stages = &stages[bounds[seg]..bounds[seg + 1]];
                let (rings, spares) = (&rings[..], &spares);
                handles.push(scope.spawn(move || {
                    let run = || {
                        let mut buf = WindowBuffers::default();
                        let mut occ = vec![StageOccupancy::default(); seg_stages.len()];
                        let mut sunk: Vec<Vec<f64>> = Vec::new();
                        while let Some(mut msg) = ring_in.pop() {
                            std::mem::swap(&mut buf.cur, &mut msg.fields);
                            let mut width = msg.width;
                            for (i, st) in seg_stages.iter().enumerate() {
                                let clock = Instant::now();
                                width = st.apply(&mut buf, width, msg.samples);
                                occ[i].windows += 1;
                                occ[i].busy_nanos += clock.elapsed().as_nanos() as u64;
                            }
                            std::mem::swap(&mut buf.cur, &mut msg.fields);
                            msg.width = width;
                            match ring_out {
                                Some(ring) => {
                                    if !ring.push(msg) {
                                        break; // pipeline aborted downstream
                                    }
                                }
                                None => {
                                    // The sink: detect in arrival (= submission)
                                    // order, recycle the window allocation.
                                    let mut logits = Vec::new();
                                    for row in msg.fields.chunks_exact(width.max(1)) {
                                        detect(detection, row, &mut logits);
                                    }
                                    sunk.push(logits);
                                    let mut fields = msg.fields;
                                    fields.clear();
                                    spares.lock().expect("pipeline spares").push(fields);
                                }
                            }
                        }
                        if let Some(ring) = ring_out {
                            ring.close();
                        }
                        (occ, sunk)
                    };
                    match catch_unwind(AssertUnwindSafe(run)) {
                        Ok(v) => v,
                        Err(payload) => {
                            // Wake every blocked neighbour before re-raising,
                            // so the scope join cannot deadlock on a ring.
                            for ring in rings {
                                ring.abort();
                            }
                            resume_unwind(payload);
                        }
                    }
                }));
            }

            // The calling thread is the source plus segment 0.
            let feed = &mut |fill: &mut dyn FnMut(usize, usize, &mut Vec<Complex64>)| {
                let mut buf = WindowBuffers::default();
                let mut occ = vec![StageOccupancy::default(); bounds[1]];
                for w in 0..windows {
                    let lo = w * window;
                    let hi = ((w + 1) * window).min(total);
                    let mut fields = spares
                        .lock()
                        .expect("pipeline spares")
                        .pop()
                        .unwrap_or_default();
                    fill(lo, hi, &mut fields);
                    std::mem::swap(&mut buf.cur, &mut fields);
                    let mut width = input_width;
                    for (i, st) in stages[..bounds[1]].iter().enumerate() {
                        let clock = Instant::now();
                        width = st.apply(&mut buf, width, hi - lo);
                        occ[i].windows += 1;
                        occ[i].busy_nanos += clock.elapsed().as_nanos() as u64;
                    }
                    std::mem::swap(&mut buf.cur, &mut fields);
                    let msg = WindowMsg {
                        samples: hi - lo,
                        width,
                        fields,
                    };
                    if !rings[0].push(msg) {
                        break; // pipeline aborted; the panic surfaces at join
                    }
                }
                occ
            };
            let fed = catch_unwind(AssertUnwindSafe(|| feed(fill)));
            match &fed {
                Ok(_) => rings[0].close(),
                Err(_) => {
                    for ring in &rings {
                        ring.abort();
                    }
                }
            }

            let mut occupancy: Vec<StageOccupancy> = match &fed {
                Ok(occ) => occ.clone(),
                Err(_) => vec![StageOccupancy::default(); bounds[1]],
            };
            let mut flat = Vec::new();
            let mut panicked: Option<Box<dyn Any + Send>> = None;
            for handle in handles {
                match handle.join() {
                    Ok((occ, sunk)) => {
                        occupancy.extend(occ);
                        for logits in sunk {
                            flat.extend_from_slice(&logits);
                        }
                    }
                    Err(payload) => {
                        if panicked.is_none() {
                            panicked = Some(payload);
                        }
                    }
                }
            }
            if let Err(payload) = fed {
                resume_unwind(payload);
            }
            if let Some(payload) = panicked {
                resume_unwind(payload);
            }
            (flat, occupancy)
        })
    }
}

/// Capacity, in staged sample windows, of each bounded ring buffer
/// between two pipeline segments of the stage-pipelined window walk
/// (`DeployedFcnn::forward_windows_pipelined`). Small on purpose: one
/// window in flight plus one of slack keeps every chip busy while
/// bounding the staged-field memory at `stages × windows × width`
/// instead of the whole span.
pub const STAGE_RING_WINDOWS: usize = 2;

/// Dynamic per-stage counters of the stage-pipelined walk: how many
/// windows a stage (chip) processed and how long it was busy. The
/// *occupancy* half of the multi-chip report; the static physics half is
/// [`ChipReport`]. Sequential walks leave these at zero — occupancy is a
/// pipeline metric.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageOccupancy {
    /// Sample windows this stage processed.
    pub windows: u64,
    /// Nanoseconds this stage spent transforming windows.
    pub busy_nanos: u64,
}

/// Static per-chip physical budget of one deployed stage under an
/// [`OpticalLossModel`]: worst-path insertion loss and time-of-flight
/// latency summed over the stage's two MZI meshes (V then U), plus its
/// geometry. Electronic stages (pooling) are listed with `optical:
/// false` and zero optical figures, so the report covers the whole
/// pipeline in stage order.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChipReport {
    /// Stage index in the deployed pipeline.
    pub stage: usize,
    /// Whether this stage carries photonic hardware.
    pub optical: bool,
    /// Flattened field count a sample presents to this stage.
    pub input_width: usize,
    /// Flattened field count a sample leaves this stage with.
    pub output_width: usize,
    /// MZI columns light traverses, summed over both meshes.
    pub mesh_depth: usize,
    /// Worst-path insertion loss in dB, summed over both meshes.
    pub insertion_loss_db: f64,
    /// Time-of-flight latency in picoseconds, summed over both meshes.
    pub latency_ps: f64,
}

/// One staged sample window travelling between pipeline segments: the
/// flat fields plus the per-sample width they are currently at. Windows
/// are pushed in submission order and every ring is FIFO with one
/// producer and one consumer, so order is preserved end to end.
struct WindowMsg {
    samples: usize,
    width: usize,
    fields: Vec<Complex64>,
}

struct RingState {
    queue: VecDeque<WindowMsg>,
    /// End of stream: no more windows will be pushed.
    closed: bool,
    /// Pipeline failure: a segment panicked; everyone stops immediately.
    aborted: bool,
}

/// A bounded FIFO ring between two adjacent pipeline segments, capacity
/// [`STAGE_RING_WINDOWS`]. `push` blocks while full (backpressure on the
/// upstream chip), `pop` blocks while empty; `close` ends the stream
/// after draining, `abort` wakes everyone for unwinding.
struct StageRing {
    state: Mutex<RingState>,
    space: Condvar,
    ready: Condvar,
}

impl StageRing {
    fn new() -> Self {
        StageRing {
            state: Mutex::new(RingState {
                queue: VecDeque::with_capacity(STAGE_RING_WINDOWS),
                closed: false,
                aborted: false,
            }),
            space: Condvar::new(),
            ready: Condvar::new(),
        }
    }

    /// Blocks until the ring has space; returns `false` (dropping the
    /// window) if the pipeline aborted, telling the producer to stop.
    fn push(&self, msg: WindowMsg) -> bool {
        let mut st = self.state.lock().expect("stage ring");
        loop {
            if st.aborted {
                return false;
            }
            if st.queue.len() < STAGE_RING_WINDOWS {
                st.queue.push_back(msg);
                drop(st);
                self.ready.notify_one();
                return true;
            }
            st = self.space.wait(st).expect("stage ring");
        }
    }

    /// Blocks until a window arrives; `None` once the stream is closed
    /// and drained (or aborted).
    fn pop(&self) -> Option<WindowMsg> {
        let mut st = self.state.lock().expect("stage ring");
        loop {
            if st.aborted {
                return None;
            }
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.space.notify_one();
                return Some(msg);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).expect("stage ring");
        }
    }

    fn close(&self) {
        let mut st = self.state.lock().expect("stage ring");
        st.closed = true;
        drop(st);
        self.ready.notify_all();
    }

    fn abort(&self) {
        let mut st = self.state.lock().expect("stage ring");
        st.aborted = true;
        st.closed = true;
        st.queue.clear();
        drop(st);
        self.ready.notify_all();
        self.space.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Deployment cache
// ---------------------------------------------------------------------------

/// Which layer kind a cached decomposition belongs to. Dense and conv
/// entries are keyed apart even when their augmented matrices carry
/// identical bits, so the two families can never share (or evict through)
/// one another's cache slots by bit coincidence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum KeyKind {
    /// A dense layer's `[out, in + 1]` augmented weight.
    Dense,
    /// A conv layer's `[out_ch, patch_len + 1]` im2col kernel matrix.
    Conv,
}

/// Cache key of one SVD decomposition: layer kind + architecture
/// (dimensions + mesh style) plus the *exact* bit pattern of every
/// augmented weight. Keying on the full bits — not a digest — makes false
/// hits impossible: equal keys imply equal matrices imply an identical
/// decomposition.
#[derive(PartialEq, Eq, Hash)]
struct DecompositionKey {
    kind: KeyKind,
    rows: usize,
    cols: usize,
    style: u8,
    weight_bits: Vec<(u64, u64)>,
}

impl DecompositionKey {
    fn new(w: &CMatrix, style: MeshStyle, kind: KeyKind) -> Self {
        let mut weight_bits = Vec::with_capacity(w.rows() * w.cols());
        for i in 0..w.rows() {
            for j in 0..w.cols() {
                let z = w[(i, j)];
                weight_bits.push((z.re.to_bits(), z.im.to_bits()));
            }
        }
        DecompositionKey {
            kind,
            rows: w.rows(),
            cols: w.cols(),
            style: match style {
                MeshStyle::Clements => 0,
                MeshStyle::Reck => 1,
            },
            weight_bits,
        }
    }

    /// Approximate resident size of the key itself (dominated by the
    /// exact weight bits).
    fn approx_bytes(&self) -> usize {
        self.weight_bits.len() * std::mem::size_of::<(u64, u64)>() + std::mem::size_of::<Self>()
    }
}

/// What the deployment cache stores per decomposition: the hardware
/// description (meshes + attenuators) *and* its compiled kernel, so a
/// cache hit skips both the SVD decomposition and the coefficient bake.
#[derive(Clone, Debug)]
struct DeployedKernels {
    layer: PhotonicLayer,
    compiled: CompiledLayer,
}

impl DeployedKernels {
    fn decompose(w: &CMatrix, style: MeshStyle) -> Self {
        let layer = PhotonicLayer::from_matrix(w, style);
        let compiled = CompiledLayer::compile(&layer);
        DeployedKernels { layer, compiled }
    }

    fn into_stage(self, pad_input: bool, relu_after: bool) -> OpticalStage {
        OpticalStage {
            layer: self.layer,
            compiled: self.compiled,
            pad_input,
            relu_after,
        }
    }

    /// Approximate resident size: meshes (phases dominate) plus the
    /// compiled coefficient arrays.
    fn approx_bytes(&self) -> usize {
        let mesh_bytes = |m: &oplix_photonics::mesh::MziMesh| {
            m.mzi_count() * std::mem::size_of::<oplix_photonics::devices::Mzi>()
                + m.n() * std::mem::size_of::<f64>()
        };
        mesh_bytes(self.layer.v_mesh())
            + mesh_bytes(self.layer.u_mesh())
            + self.layer.attenuators().len() * std::mem::size_of::<f64>()
            + self.compiled.approx_bytes()
            + std::mem::size_of::<Self>()
    }
}

/// Hit/miss/occupancy counters of the process-wide deployment cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeployCacheStats {
    /// Decompositions served from the cache.
    pub hits: u64,
    /// Decompositions computed fresh (and, once admitted, inserted).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Entries evicted by the LRU policy since process start (survives
    /// [`clear_deploy_cache`]).
    pub evictions: u64,
    /// Approximate bytes currently resident (keys + meshes + compiled
    /// kernels).
    pub resident_bytes: usize,
}

/// Memory budget of the deployment cache. Least-recently-used entries are
/// evicted once the *approximate* resident footprint (keys, meshes and
/// compiled kernels) exceeds this, so unbounded architecture sweeps see a
/// bounded cache instead of the old hard insertion cutoff.
const DEPLOY_CACHE_MAX_BYTES: usize = 64 << 20;

/// Doorkeeper saturation: past this many one-sight fingerprints the
/// filter stops admitting-by-history (every key admits on first sight)
/// rather than silently disabling admission — the LRU budget still bounds
/// memory.
const DEPLOY_SEEN_CAP: usize = 8192;

/// The LRU deployment cache: a hash map for lookups plus a recency index
/// (monotonic tick → key) for eviction order, with per-entry byte
/// accounting. Kept as a plain struct (not the global) so the eviction
/// policy is unit-testable without racing the process-wide instance.
struct LruDeployCache {
    budget_bytes: usize,
    map: HashMap<Arc<DecompositionKey>, CacheSlot>,
    recency: BTreeMap<u64, Arc<DecompositionKey>>,
    tick: u64,
    resident_bytes: usize,
    evictions: u64,
}

struct CacheSlot {
    value: Arc<DeployedKernels>,
    bytes: usize,
    tick: u64,
}

impl LruDeployCache {
    fn new(budget_bytes: usize) -> Self {
        LruDeployCache {
            budget_bytes,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            resident_bytes: 0,
            evictions: 0,
        }
    }

    /// Looks up a key and, on a hit, marks it most-recently-used.
    fn get(&mut self, key: &DecompositionKey) -> Option<Arc<DeployedKernels>> {
        let shared_key = Arc::clone(self.map.get_key_value(key)?.0);
        self.tick += 1;
        let tick = self.tick;
        let slot = self.map.get_mut(&shared_key).expect("present");
        self.recency.remove(&slot.tick);
        slot.tick = tick;
        self.recency.insert(tick, shared_key);
        Some(Arc::clone(&slot.value))
    }

    /// Inserts an entry (idempotent), charging its approximate bytes and
    /// evicting least-recently-used entries until the budget holds. An
    /// entry larger than the whole budget is not cached at all.
    fn insert(&mut self, key: DecompositionKey, value: Arc<DeployedKernels>) {
        if self.map.contains_key(&key) {
            return; // a concurrent deployment inserted it first
        }
        let bytes = key.approx_bytes() + value.approx_bytes();
        if bytes > self.budget_bytes {
            return;
        }
        while self.resident_bytes + bytes > self.budget_bytes {
            if !self.evict_lru() {
                break;
            }
        }
        self.tick += 1;
        let key = Arc::new(key);
        self.recency.insert(self.tick, Arc::clone(&key));
        self.map.insert(
            key,
            CacheSlot {
                value,
                bytes,
                tick: self.tick,
            },
        );
        self.resident_bytes += bytes;
    }

    /// Evicts the least-recently-used entry; false when empty.
    fn evict_lru(&mut self) -> bool {
        let Some((_, key)) = self.recency.pop_first() else {
            return false;
        };
        let slot = self.map.remove(&key).expect("recency tracks map");
        self.resident_bytes -= slot.bytes;
        self.evictions += 1;
        true
    }

    /// Drops every entry (the eviction counter keeps running — clearing
    /// is not evicting).
    fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
        self.resident_bytes = 0;
    }
}

static DEPLOY_CACHE: OnceLock<Mutex<LruDeployCache>> = OnceLock::new();
/// Admission doorkeeper: 8-byte fingerprints of keys decomposed exactly
/// once. A full (weights + meshes + compiled kernel) entry is only
/// inserted when the same key is decomposed a *second* time, so one-shot
/// deployments — an experiment grid where every trained arm has unique
/// weights — retain 8 bytes per architecture instead of a full entry. A
/// fingerprint collision merely admits an entry one sight early;
/// correctness never depends on the fingerprint.
static DEPLOY_SEEN: OnceLock<Mutex<HashSet<u64>>> = OnceLock::new();
static DEPLOY_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static DEPLOY_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_CACHE_HITS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    static THREAD_CACHE_MISSES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Deploy-cache (hits, misses) as observed *from the calling thread*.
/// The router's register path brackets a deployment with this to decide
/// whether the registration was served entirely from cache — the global
/// counters race with concurrent deployments on other threads, this
/// probe cannot.
pub(crate) fn thread_cache_counts() -> (u64, u64) {
    (THREAD_CACHE_HITS.get(), THREAD_CACHE_MISSES.get())
}

fn deploy_cache() -> &'static Mutex<LruDeployCache> {
    DEPLOY_CACHE.get_or_init(|| Mutex::new(LruDeployCache::new(DEPLOY_CACHE_MAX_BYTES)))
}

fn deploy_seen() -> &'static Mutex<HashSet<u64>> {
    DEPLOY_SEEN.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Marks a key as seen; returns whether the full cache should admit it.
fn seen_before(key: &DecompositionKey) -> bool {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    let fp = h.finish();
    let mut seen = deploy_seen().lock().expect("deploy doorkeeper");
    if seen.contains(&fp) {
        true
    } else if seen.len() < DEPLOY_SEEN_CAP {
        seen.insert(fp);
        false
    } else {
        true
    }
}

/// Current counters of the process-wide deployment cache.
pub fn deploy_cache_stats() -> DeployCacheStats {
    let cache = deploy_cache().lock().expect("deploy cache");
    DeployCacheStats {
        hits: DEPLOY_CACHE_HITS.load(Ordering::Relaxed),
        misses: DEPLOY_CACHE_MISSES.load(Ordering::Relaxed),
        entries: cache.map.len(),
        evictions: cache.evictions,
        resident_bytes: cache.resident_bytes,
    }
}

/// Drops every cached decomposition and the admission doorkeeper
/// (counters keep running). Useful for benchmarks that want to measure
/// the cold path.
pub fn clear_deploy_cache() {
    deploy_cache().lock().expect("deploy cache").clear();
    deploy_seen().lock().expect("deploy doorkeeper").clear();
}

/// The memoised front door to SVD decomposition + kernel compilation:
/// repeated deployments of the same weights (grid sweeps, repeated
/// `DeployStage` runs on one trained body) skip both the decomposition
/// and the coefficient bake and clone the cached kernels instead —
/// cloning phase/coefficient arrays is orders of magnitude cheaper than
/// decomposing. Admission is second-sight (see [`DEPLOY_SEEN`]): the
/// first decomposition of a key records only a fingerprint, the second
/// inserts the full entry, the third and later are hits. Residency is
/// bounded by [`DEPLOY_CACHE_MAX_BYTES`] with LRU eviction.
fn decompose_cached(w: &CMatrix, style: MeshStyle, kind: KeyKind) -> DeployedKernels {
    let key = DecompositionKey::new(w, style, kind);
    // Values are `Arc`ed so the critical section is a refcount bump plus
    // a recency touch; the (cheap-but-not-free) coefficient-array clone
    // happens outside the lock and concurrent grid-arm deployments never
    // serialise behind it.
    let hit = deploy_cache().lock().expect("deploy cache").get(&key);
    if let Some(kernels) = hit {
        DEPLOY_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        THREAD_CACHE_HITS.set(THREAD_CACHE_HITS.get() + 1);
        return (*kernels).clone();
    }
    // Decompose outside the lock: a miss is the expensive path, and other
    // deployments should not serialise behind it.
    let kernels = DeployedKernels::decompose(w, style);
    DEPLOY_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    THREAD_CACHE_MISSES.set(THREAD_CACHE_MISSES.get() + 1);
    if seen_before(&key) {
        // Clone outside the lock, like the hit path: holding the global
        // mutex across a mesh deep-clone would serialise concurrent
        // deployments behind this insert.
        let entry = Arc::new(kernels.clone());
        deploy_cache()
            .lock()
            .expect("deploy cache")
            .insert(key, entry);
    }
    kernels
}

fn deploy_dense(dense: &CDense, style: MeshStyle) -> DeployedKernels {
    let (w_re, w_im) = dense.weight();
    let (b_re, b_im) = dense.bias();
    let (m, n) = (dense.n_out(), dense.n_in());
    // Homogeneous augmentation: last column is the bias.
    let aug = CMatrix::from_fn(m, n + 1, |i, j| {
        if j < n {
            Complex64::new(w_re.at2(i, j) as f64, w_im.at2(i, j) as f64)
        } else {
            Complex64::new(b_re.as_slice()[i] as f64, b_im.as_slice()[i] as f64)
        }
    });
    decompose_cached(&aug, style, KeyKind::Dense)
}

/// Lowers one convolution onto a mesh through the im2col view: the
/// `[out_ch, C·k·k + 1]` kernel matrix (bias in the last column) maps
/// through the cached SVD path exactly like a dense layer, and the gather
/// plan pairs every output position's patch taps with the mesh's input
/// modes (padding taps dark, bias tap on the reference mode).
fn deploy_conv(
    conv: &CConv2d,
    index: usize,
    c: usize,
    h: usize,
    w: usize,
    style: MeshStyle,
) -> Result<ConvStage, DeployError> {
    let (in_ch, out_ch, kernel, stride, pad) = conv.geometry();
    if c != in_ch || h + 2 * pad < kernel || w + 2 * pad < kernel {
        return Err(DeployError::Geometry { index });
    }
    let patch = conv.patch_len();
    let (w_re, w_im) = conv.weight();
    let (b_re, b_im) = conv.bias();
    let (ws_re, ws_im) = (w_re.as_slice(), w_im.as_slice());
    // The kernel's `[O, C, k, k]` storage is row-major, so row `o` of the
    // im2col kernel matrix is the contiguous slice `ws[o·patch ..]` in the
    // same `(c, ky, kx)` slot order the gather plan produces.
    let aug = CMatrix::from_fn(out_ch, patch + 1, |o, q| {
        if q < patch {
            Complex64::new(ws_re[o * patch + q] as f64, ws_im[o * patch + q] as f64)
        } else {
            Complex64::new(b_re.as_slice()[o] as f64, b_im.as_slice()[o] as f64)
        }
    });
    let kernels = decompose_cached(&aug, style, KeyKind::Conv);
    let (indices, (oh, ow)) = im2col_indices(c, h, w, kernel, stride, pad);
    let positions = oh * ow;
    let mut plan = Vec::with_capacity(positions * (patch + 1));
    for taps in indices.chunks_exact(patch) {
        plan.extend(taps.iter().map(|&ix| {
            if ix >= 0 {
                GatherSource::Input(ix as u32)
            } else {
                GatherSource::Dark
            }
        }));
        plan.push(GatherSource::Reference);
    }
    Ok(ConvStage {
        layer: kernels.layer,
        compiled: kernels.compiled,
        plan: Arc::new(plan),
        positions,
        out_ch,
        in_features: c * h * w,
        out_features: out_ch * positions,
        relu_after: false,
    })
}

/// Builds the electronic average-pooling stage: `k²` flat input taps per
/// output feature, in the software layer's `(c, oy, ox)` output order.
fn deploy_pool(c: usize, h: usize, w: usize, k: usize) -> PoolStage {
    let (ho, wo) = (h / k, w / k);
    let mut taps = Vec::with_capacity(c * ho * wo * k * k);
    for ch in 0..c {
        for oy in 0..ho {
            for ox in 0..wo {
                for dy in 0..k {
                    for dx in 0..k {
                        taps.push(((ch * h + oy * k + dy) * w + ox * k + dx) as u32);
                    }
                }
            }
        }
    }
    PoolStage {
        taps: Arc::new(taps),
        k2: k * k,
        in_features: c * h * w,
        out_features: c * ho * wo,
        relu_after: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{build_fcnn, FcnnConfig, ModelVariant};
    use oplix_nn::tensor::Tensor;
    use oplix_photonics::decoder::DecoderKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_view(n: usize, d: usize, seed: u64) -> CTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        CTensor::new(
            Tensor::random_uniform(&[n, d], 1.0, &mut rng),
            Tensor::random_uniform(&[n, d], 1.0, &mut rng),
        )
    }

    #[test]
    fn deployed_logits_match_software() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = FcnnConfig {
            input: 6,
            hidden: 5,
            classes: 2,
        };
        let mut net = build_fcnn(&cfg, ModelVariant::Split(DecoderKind::Merge), &mut rng);
        let deployed =
            DeployedFcnn::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
                .expect("deployable");
        assert_eq!(deployed.num_stages(), 2);

        let view = random_view(4, 6, 2);
        let soft = net.forward(&view, false);
        for i in 0..4 {
            let sample: Vec<Complex64> = (0..6)
                .map(|j| Complex64::new(view.re.at2(i, j) as f64, view.im.at2(i, j) as f64))
                .collect();
            let optical = deployed.forward(&sample);
            for k in 0..2 {
                let s = soft.at2(i, k) as f64;
                assert!(
                    (optical[k] - s).abs() < 1e-3,
                    "sample {i} class {k}: optical {} vs software {s}",
                    optical[k]
                );
            }
        }
    }

    #[test]
    fn deployed_accuracy_matches_software_predictions() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = FcnnConfig {
            input: 4,
            hidden: 6,
            classes: 3,
        };
        let mut net = build_fcnn(&cfg, ModelVariant::Split(DecoderKind::Merge), &mut rng);
        let deployed =
            DeployedFcnn::from_network(&net, DeployedDetection::Differential, MeshStyle::Reck)
                .expect("deployable");
        let view = random_view(8, 4, 4);
        let soft = net.forward(&view, false);
        let hard = deployed.classify(&view);
        for i in 0..8 {
            let row: Vec<f64> = (0..3).map(|k| soft.at2(i, k) as f64).collect();
            assert_eq!(hard[i], argmax(&row), "sample {i}");
        }
    }

    #[test]
    fn intensity_detection_for_conventional_onn() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = FcnnConfig {
            input: 4,
            hidden: 4,
            classes: 2,
        };
        let mut net = build_fcnn(&cfg, ModelVariant::ConventionalOnn, &mut rng);
        let deployed =
            DeployedFcnn::from_network(&net, DeployedDetection::Intensity, MeshStyle::Clements)
                .expect("deployable");
        let view = CTensor::from_re(Tensor::random_uniform(&[3, 4], 1.0, &mut rng));
        let soft = net.forward(&view, false);
        for i in 0..3 {
            let sample: Vec<Complex64> = (0..4)
                .map(|j| Complex64::new(view.re.at2(i, j) as f64, 0.0))
                .collect();
            let optical = deployed.forward(&sample);
            for k in 0..2 {
                assert!((optical[k] - soft.at2(i, k) as f64).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn pipelined_windows_match_sequential_walk_bitwise() {
        let mut rng = StdRng::seed_from_u64(21);
        let cfg = FcnnConfig {
            input: 6,
            hidden: 7,
            classes: 2,
        };
        let net = build_fcnn(&cfg, ModelVariant::Split(DecoderKind::Merge), &mut rng);
        let deployed =
            DeployedFcnn::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
                .expect("deployable");
        assert!(deployed.num_stages() >= 2);

        // A small window against many samples keeps several windows in
        // flight at once, so the bounded rings exercise backpressure
        // (ring capacity is STAGE_RING_WINDOWS windows).
        let (total, window, d) = (37usize, 4usize, 6usize);
        let view = random_view(total, d, 22);
        let mut rows: Vec<Complex64> = Vec::with_capacity(total * d);
        for i in 0..total {
            for j in 0..d {
                rows.push(Complex64::new(
                    view.re.at2(i, j) as f64,
                    view.im.at2(i, j) as f64,
                ));
            }
        }

        // The sequential reference at identical window boundaries.
        let mut buf = WindowBuffers::default();
        let mut logits = Vec::new();
        let mut want = Vec::new();
        for lo in (0..total).step_by(window) {
            let hi = (lo + window).min(total);
            deployed
                .forward_rows_into(&rows[lo * d..hi * d], &mut buf, &mut logits)
                .expect("sequential walk");
            want.extend_from_slice(&logits);
        }

        for helpers in [1usize, 2, 7] {
            let mut fill = |lo: usize, hi: usize, fields: &mut Vec<Complex64>| {
                fields.clear();
                fields.extend_from_slice(&rows[lo * d..hi * d]);
            };
            let (got, occ) = deployed.forward_windows_pipelined(total, window, helpers, &mut fill);
            assert_eq!(got, want, "helpers {helpers}: pipelined walk diverged");
            assert_eq!(occ.len(), deployed.num_stages(), "helpers {helpers}");
            let seen: u64 = occ.iter().map(|o| o.windows).sum();
            assert_eq!(
                seen as usize,
                deployed.num_stages() * total.div_ceil(window),
                "helpers {helpers}: every stage sees every window exactly once"
            );
        }
    }

    #[test]
    fn chip_reports_sum_losses_over_optical_stages() {
        let mut rng = StdRng::seed_from_u64(23);
        let cfg = FcnnConfig {
            input: 6,
            hidden: 5,
            classes: 2,
        };
        let net = build_fcnn(&cfg, ModelVariant::Split(DecoderKind::Merge), &mut rng);
        let deployed =
            DeployedFcnn::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
                .expect("deployable");
        let reports = deployed.chip_reports();
        assert_eq!(reports.len(), deployed.num_stages());
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.stage, i);
            if r.optical {
                assert!(r.mesh_depth > 0, "stage {i}: a mesh has depth");
                assert!(r.insertion_loss_db > 0.0, "stage {i}: loss budget");
                assert!(r.latency_ps > 0.0, "stage {i}: optical latency");
            } else {
                assert_eq!(r.insertion_loss_db, 0.0, "stage {i} is electronic");
            }
        }
        // The default platform is the silicon one; an explicit lossier
        // platform scales every optical budget up.
        let lossier = OpticalLossModel {
            mzi_loss_db: 1.0,
            ..OpticalLossModel::silicon_defaults()
        };
        let worse = deployed.chip_reports_with(&lossier);
        for (a, b) in reports.iter().zip(&worse) {
            if a.optical {
                assert!(b.insertion_loss_db > a.insertion_loss_db);
            }
        }
    }

    #[test]
    fn phase_noise_degrades_agreement() {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = FcnnConfig {
            input: 6,
            hidden: 6,
            classes: 2,
        };
        let net = build_fcnn(&cfg, ModelVariant::Split(DecoderKind::Merge), &mut rng);
        let mut deployed =
            DeployedFcnn::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
                .expect("deployable");
        let sample: Vec<Complex64> = (0..6)
            .map(|j| Complex64::new(0.1 * j as f64, 0.05))
            .collect();
        let clean = deployed.forward(&sample);
        deployed.inject_phase_noise(0.3, &mut rng);
        let noisy = deployed.forward(&sample);
        let diff: f64 = clean.iter().zip(&noisy).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1e-6, "noise had no effect");
    }

    #[test]
    fn odd_differential_output_is_rejected() {
        // 5 classes through a ConventionalOnn body: the optical output is
        // 5 wide, which differential detection cannot pair.
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = FcnnConfig {
            input: 4,
            hidden: 4,
            classes: 5,
        };
        let net = build_fcnn(&cfg, ModelVariant::ConventionalOnn, &mut rng);
        let err =
            DeployedFcnn::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
                .expect_err("odd width must not deploy differentially");
        assert_eq!(err, DeployError::OddDifferentialOutput { width: 5 });
        // The correct detection for this family still deploys.
        assert!(DeployedFcnn::from_network(
            &net,
            DeployedDetection::Intensity,
            MeshStyle::Clements
        )
        .is_ok());
    }

    #[test]
    fn deployment_cache_hit_equals_fresh_decomposition() {
        let mut rng = StdRng::seed_from_u64(90_001); // weights unique to this test
        let w = CMatrix::from_fn(5, 4, |_, _| {
            use rand::Rng;
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let before = deploy_cache_stats();
        let fresh = decompose_cached(&w, MeshStyle::Clements, KeyKind::Dense);
        let admitted = decompose_cached(&w, MeshStyle::Clements, KeyKind::Dense); // second sight: inserts
        let cached = decompose_cached(&w, MeshStyle::Clements, KeyKind::Dense); // third: a hit
        let after = deploy_cache_stats();
        // Counters are process-global (other tests run concurrently), so
        // assert deltas as lower bounds.
        assert!(after.misses > before.misses, "first two calls must miss");
        assert!(after.hits > before.hits, "third call must hit");
        assert_eq!(
            fresh.layer.matrix().max_abs_diff(&admitted.layer.matrix()),
            0.0
        );
        // The cached kernels must be *equal* to a fresh decomposition:
        // same implemented matrix, bitwise-identical forward fields,
        // interpreted or compiled.
        assert_eq!(
            fresh.layer.matrix().max_abs_diff(&cached.layer.matrix()),
            0.0
        );
        let x: Vec<Complex64> = (0..4)
            .map(|j| Complex64::new(0.3 * j as f64, -0.1))
            .collect();
        assert_eq!(fresh.layer.forward(&x), cached.layer.forward(&x));
        let mut compiled_out = x.clone();
        let mut tmp = Vec::new();
        cached.compiled.forward_into(&mut compiled_out, &mut tmp);
        assert_eq!(compiled_out, cached.layer.forward(&x));
    }

    #[test]
    fn deployment_cache_distinguishes_style_and_weights() {
        let mut rng = StdRng::seed_from_u64(90_002);
        let w = CMatrix::from_fn(3, 3, |_, _| {
            use rand::Rng;
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let before = deploy_cache_stats();
        let _ = decompose_cached(&w, MeshStyle::Clements, KeyKind::Dense);
        let _ = decompose_cached(&w, MeshStyle::Reck, KeyKind::Dense); // different style: miss
        let bumped = w.scale(Complex64::from_real(1.0 + 1e-12));
        let _ = decompose_cached(&bumped, MeshStyle::Clements, KeyKind::Dense); // different bits: miss
        let after = deploy_cache_stats();
        assert!(after.misses >= before.misses + 3, "all three must miss");
    }

    #[test]
    fn repeated_from_network_reuses_decompositions() {
        let mut rng = StdRng::seed_from_u64(90_003);
        let cfg = FcnnConfig {
            input: 6,
            hidden: 5,
            classes: 2,
        };
        let net = build_fcnn(&cfg, ModelVariant::Split(DecoderKind::Merge), &mut rng);
        let first =
            DeployedFcnn::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
                .expect("deployable");
        // Second-sight admission: the repeat deployment populates the
        // cache, the one after that is served from it.
        let _admit =
            DeployedFcnn::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
                .expect("deployable");
        let before = deploy_cache_stats();
        let second =
            DeployedFcnn::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
                .expect("deployable");
        let after = deploy_cache_stats();
        assert!(
            after.hits >= before.hits + first.num_stages() as u64,
            "every stage of the third deployment must be a cache hit"
        );
        // Both deployments classify identically.
        let view = random_view(6, 6, 90_004);
        assert_eq!(first.classify(&view), second.classify(&view));
    }

    #[test]
    fn device_count_includes_bias_modes() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = FcnnConfig {
            input: 6,
            hidden: 5,
            classes: 2,
        };
        let net = build_fcnn(&cfg, ModelVariant::Split(DecoderKind::Merge), &mut rng);
        let deployed =
            DeployedFcnn::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
                .expect("deployable");
        // Stage 1: 5 x 7 (bias mode), stage 2: 4 x 6.
        let expect = oplix_photonics::mzi_count(5, 7) + oplix_photonics::mzi_count(4, 6);
        assert_eq!(deployed.device_count().mzis, expect);
    }

    #[test]
    fn forward_window_matches_per_sample_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(90_010);
        let cfg = FcnnConfig {
            input: 6,
            hidden: 5,
            classes: 2,
        };
        let net = build_fcnn(&cfg, ModelVariant::Split(DecoderKind::Merge), &mut rng);
        let deployed =
            DeployedFcnn::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
                .expect("deployable");
        let view = random_view(9, 6, 90_011);
        let mut window = WindowBuffers::default();
        let mut window_logits = Vec::new();
        deployed
            .forward_window_into(&view, 2, 8, &mut window, &mut window_logits)
            .expect("window");
        let k = deployed.logit_dim();
        assert_eq!(window_logits.len(), 6 * k);
        for (r, row) in window_logits.chunks_exact(k).enumerate() {
            let i = 2 + r;
            let sample: Vec<Complex64> = (0..6)
                .map(|j| Complex64::new(view.re.at2(i, j) as f64, view.im.at2(i, j) as f64))
                .collect();
            assert_eq!(row, deployed.forward(&sample).as_slice(), "row {i}");
        }
        // Empty windows and overruns behave like the sequential path.
        deployed
            .forward_window_into(&view, 3, 3, &mut window, &mut window_logits)
            .expect("empty window is fine");
        assert!(window_logits.is_empty());
        assert!(deployed
            .forward_window_into(&view, 5, 10, &mut window, &mut window_logits)
            .is_err());
    }

    fn tiny_kernels(seed: u64) -> (DecompositionKey, Arc<DeployedKernels>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = CMatrix::from_fn(2, 2, |_, _| {
            use rand::Rng;
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        (
            DecompositionKey::new(&w, MeshStyle::Clements, KeyKind::Dense),
            Arc::new(DeployedKernels::decompose(&w, MeshStyle::Clements)),
        )
    }

    #[test]
    fn lru_cache_evicts_least_recently_used_within_byte_budget() {
        let (key0, val0) = tiny_kernels(91_000);
        let entry_bytes = key0.approx_bytes() + val0.approx_bytes();
        // Room for exactly three entries.
        let mut cache = LruDeployCache::new(3 * entry_bytes + entry_bytes / 2);
        let (key1, val1) = tiny_kernels(91_001);
        let (key2, val2) = tiny_kernels(91_002);
        let (key3, val3) = tiny_kernels(91_003);
        cache.insert(key0, val0);
        cache.insert(key1, val1);
        cache.insert(key2, val2);
        assert_eq!(cache.map.len(), 3);
        assert_eq!(cache.evictions, 0);
        assert!(cache.resident_bytes > 0 && cache.resident_bytes <= cache.budget_bytes);

        // Touch entry 0 so entry 1 becomes the LRU, then overflow.
        let (probe0, _) = tiny_kernels(91_000);
        assert!(
            cache.get(&probe0).is_some(),
            "entry 0 must still be resident"
        );
        cache.insert(key3, val3);
        assert_eq!(cache.evictions, 1, "the fourth insert must evict one entry");
        assert_eq!(cache.map.len(), 3);
        let (probe1, _) = tiny_kernels(91_001);
        assert!(
            cache.get(&probe1).is_none(),
            "the least-recently-used entry (1) must be the one evicted"
        );
        assert!(
            cache.get(&probe0).is_some(),
            "recently-touched entry survives"
        );
        assert!(
            cache.resident_bytes <= cache.budget_bytes,
            "byte accounting must stay within budget"
        );
    }

    #[test]
    fn lru_cache_refuses_oversized_entries_and_survives_clear() {
        let (key, val) = tiny_kernels(91_010);
        let mut cache = LruDeployCache::new(1); // budget smaller than any entry
        cache.insert(key, val);
        assert!(cache.map.is_empty(), "oversized entries are not cached");

        let (key, val) = tiny_kernels(91_011);
        let bytes = key.approx_bytes() + val.approx_bytes();
        let mut cache = LruDeployCache::new(8 * bytes);
        cache.insert(key, val);
        assert_eq!(cache.resident_bytes, bytes);
        cache.clear();
        assert_eq!(cache.resident_bytes, 0);
        assert_eq!(cache.map.len(), 0);
        assert_eq!(cache.recency.len(), 0);
    }

    /// A small pool-free CNN body: conv(1→2, 3×3, same) → ReLU → flatten
    /// → dense classifier, with the merge head (2 classes).
    fn tiny_cnn(seed: u64) -> Network {
        use oplix_nn::head::MergeHead;
        use oplix_nn::layers::{CConv2d, CFlatten, CRelu, CSequential};
        let mut rng = StdRng::seed_from_u64(seed);
        let body = CSequential::new()
            .push(CConv2d::new(1, 2, 3, 1, 1, &mut rng))
            .push(CRelu::new())
            .push(CFlatten::new())
            .push(oplix_nn::layers::CDense::new(2 * 4 * 4, 4, &mut rng));
        Network::new(body, Box::new(MergeHead::new()))
    }

    #[test]
    fn conv_body_deploys_and_matches_software_logits() {
        let mut net = tiny_cnn(95_001);
        let deployed = DeployedFcnn::from_network_shaped(
            &net,
            Some((1, 4, 4)),
            DeployedDetection::Differential,
            MeshStyle::Clements,
        )
        .expect("conv bodies lower through im2col");
        assert_eq!(deployed.input_dim(), 16);
        assert_eq!(deployed.logit_dim(), 2);
        assert_eq!(deployed.num_stages(), 2);
        assert_eq!(deployed.num_optical_stages(), 2);

        let mut rng = StdRng::seed_from_u64(95_002);
        let view = CTensor::new(
            Tensor::random_uniform(&[3, 1, 4, 4], 1.0, &mut rng),
            Tensor::random_uniform(&[3, 1, 4, 4], 1.0, &mut rng),
        );
        let soft = net.forward(&view, false);
        let (re, im) = (view.re.as_slice(), view.im.as_slice());
        for i in 0..3 {
            let sample: Vec<Complex64> = (0..16)
                .map(|j| Complex64::new(re[i * 16 + j] as f64, im[i * 16 + j] as f64))
                .collect();
            let optical = deployed.forward(&sample);
            for k in 0..2 {
                let s = soft.at2(i, k) as f64;
                assert!(
                    (optical[k] - s).abs() < 1e-3,
                    "sample {i} class {k}: optical {} vs software {s}",
                    optical[k]
                );
            }
        }
    }

    #[test]
    fn conv_body_without_shape_is_a_typed_error() {
        let net = tiny_cnn(95_003);
        let err =
            DeployedFcnn::from_network(&net, DeployedDetection::Differential, MeshStyle::Clements)
                .expect_err("conv bodies need the image shape");
        assert_eq!(err, DeployError::MissingImageShape { index: 0 });
        assert!(err.to_string().contains("from_network_shaped"), "{err}");
        // An inconsistent shape is diagnosed too (channel mismatch).
        let err = DeployedFcnn::from_network_shaped(
            &net,
            Some((3, 4, 4)),
            DeployedDetection::Differential,
            MeshStyle::Clements,
        )
        .expect_err("channel mismatch must not deploy");
        assert_eq!(err, DeployError::Geometry { index: 0 });
    }

    #[test]
    fn unsupported_layer_error_names_the_layer_kind() {
        use oplix_nn::head::MergeHead;
        use oplix_nn::layers::{CConv2d, CMaxPool2d, CSequential};
        let mut rng = StdRng::seed_from_u64(95_004);
        let body = CSequential::new()
            .push(CConv2d::new(1, 2, 3, 1, 1, &mut rng))
            .push(CMaxPool2d::new(2));
        let net = Network::new(body, Box::new(MergeHead::new()));
        let err = DeployedFcnn::from_network_shaped(
            &net,
            Some((1, 4, 4)),
            DeployedDetection::Differential,
            MeshStyle::Clements,
        )
        .expect_err("max pooling has no photonic lowering");
        assert_eq!(
            err,
            DeployError::UnsupportedLayer {
                index: 1,
                kind: "CMaxPool2d"
            }
        );
        let message = err.to_string();
        assert!(message.contains("layer 1"), "{message}");
        assert!(message.contains("CMaxPool2d"), "{message}");
    }

    #[test]
    fn conv_and_dense_cache_keys_never_collide() {
        // Identical augmented matrices, bit for bit — the kind
        // discriminator must still keep the entries apart.
        let mut rng = StdRng::seed_from_u64(95_005);
        let w = CMatrix::from_fn(2, 5, |_, _| {
            use rand::Rng;
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let dense_key = DecompositionKey::new(&w, MeshStyle::Clements, KeyKind::Dense);
        let conv_key = DecompositionKey::new(&w, MeshStyle::Clements, KeyKind::Conv);
        assert!(dense_key != conv_key, "kinds must separate identical bits");

        // And a cache holding one kind does not answer for the other.
        let value = Arc::new(DeployedKernels::decompose(&w, MeshStyle::Clements));
        let bytes = dense_key.approx_bytes() + value.approx_bytes();
        let mut cache = LruDeployCache::new(8 * bytes);
        cache.insert(dense_key, Arc::clone(&value));
        assert!(cache
            .get(&DecompositionKey::new(
                &w,
                MeshStyle::Clements,
                KeyKind::Conv
            ))
            .is_none());
        cache.insert(conv_key, value);
        assert_eq!(cache.map.len(), 2, "both kinds must be resident at once");
    }

    #[test]
    fn identical_cnn_deployments_share_one_cache_entry() {
        let net = tiny_cnn(95_006);
        let deploy = || {
            DeployedFcnn::from_network_shaped(
                &net,
                Some((1, 4, 4)),
                DeployedDetection::Differential,
                MeshStyle::Clements,
            )
            .expect("deploys")
        };
        // First sight records fingerprints, second sight inserts the full
        // entries; from the third deployment on the cache must serve every
        // optical stage with a flat resident footprint.
        let first = deploy();
        let optical = first.num_optical_stages() as u64;
        let _admit = deploy();
        let before = deploy_cache_stats();
        let third = deploy();
        let after = deploy_cache_stats();
        assert!(
            after.hits >= before.hits + optical,
            "every optical stage of a repeat CNN deployment must hit \
             (hits {} -> {}, needed +{optical})",
            before.hits,
            after.hits
        );
        assert_eq!(
            after.resident_bytes, before.resident_bytes,
            "repeat CNN deployments must not grow the cache"
        );
        // And the cached deployment serves identical classifications.
        let mut rng = StdRng::seed_from_u64(95_007);
        let view = CTensor::new(
            Tensor::random_uniform(&[5, 1, 4, 4], 1.0, &mut rng),
            Tensor::random_uniform(&[5, 1, 4, 4], 1.0, &mut rng),
        );
        assert_eq!(first.classify(&view), third.classify(&view));
    }

    #[test]
    fn global_cache_reports_resident_bytes() {
        // Admit one entry (second sight), then the stats must account for
        // its bytes. Other tests share the process-wide cache, so assert
        // monotone lower bounds only.
        let mut rng = StdRng::seed_from_u64(92_000);
        let w = CMatrix::from_fn(4, 3, |_, _| {
            use rand::Rng;
            Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        });
        let _ = decompose_cached(&w, MeshStyle::Clements, KeyKind::Dense);
        let _ = decompose_cached(&w, MeshStyle::Clements, KeyKind::Dense); // second sight inserts
        let stats = deploy_cache_stats();
        assert!(stats.entries >= 1);
        assert!(stats.resident_bytes > 0);
    }
}
