//! Composable, trait-driven pipeline stages.
//!
//! The paper's Fig. 2 workflow decomposes into four typed stages:
//!
//! ```text
//! DatasetPair ──AssignStage──▶ AssignedData ──TrainStage──▶ TrainedModel
//!      ──DeployStage──▶ DeployedModel ──EvaluateStage──▶ Evaluation
//! ```
//!
//! Each stage is a [`Stage`] implementation with typed input and output
//! artifacts, so new workloads — conv bodies, the OFFT baseline, alternate
//! decoders — plug in by swapping one boxed stage instead of editing a
//! monolithic driver. [`Pipeline`] holds the four stages as trait objects
//! and runs them end to end; [`StageExt::then`] chains any two compatible
//! stages into a new one for bespoke flows.
//!
//! Errors are typed ([`Error`]) end to end: bad dataset geometry, an
//! undeployable body, or a query/mesh shape mismatch surface as values,
//! not panics.

use crate::deploy::DeployedDetection;
use crate::engine::{Confidence, InferenceEngine};
use crate::error::Error;
use crate::serve::{Prediction, Server};
use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::RealDataset;
use oplix_nn::mutual::{mutual_fit, MutualConfig};
use oplix_nn::network::Network;
use oplix_nn::optim::Sgd;
use oplix_nn::trainer::{fit_with, CDataset, EpochStats};
use oplix_photonics::svd_map::MeshStyle;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::experiments::TrainSetup;

/// One typed pipeline stage: consumes its input artifact, produces the
/// next one, or fails with a typed [`Error`].
///
/// Implement it to slot custom behaviour into a [`Pipeline`] — any type
/// with the right input/output artifacts works, including closures
/// wrapped in a unit struct:
///
/// ```
/// use oplixnet::stage::{Stage, StageExt};
/// use oplixnet::error::Error;
///
/// /// Doubles its input; any `Input -> Output` pair is a valid stage.
/// struct Doubler;
///
/// impl Stage for Doubler {
///     type Input = u32;
///     type Output = u32;
///     fn name(&self) -> &'static str { "doubler" }
///     fn run(&self, x: u32) -> Result<u32, Error> { Ok(2 * x) }
/// }
///
/// // `then` chains compatible stages into one.
/// let quadrupler = Doubler.then(Doubler);
/// assert_eq!(quadrupler.run(3).unwrap(), 12);
/// ```
pub trait Stage {
    /// The artifact this stage consumes.
    type Input;
    /// The artifact this stage produces.
    type Output;

    /// Stable stage name, used in error reporting and logs.
    fn name(&self) -> &'static str;

    /// Runs the stage.
    fn run(&self, input: Self::Input) -> Result<Self::Output, Error>;
}

/// Chains two stages into one (see [`StageExt::then`]).
pub struct Chain<A, B> {
    first: A,
    second: B,
}

impl<A, B> Stage for Chain<A, B>
where
    A: Stage,
    B: Stage<Input = A::Output>,
{
    type Input = A::Input;
    type Output = B::Output;

    fn name(&self) -> &'static str {
        self.second.name()
    }

    fn run(&self, input: A::Input) -> Result<B::Output, Error> {
        self.second.run(self.first.run(input)?)
    }
}

/// Combinators available on every stage.
pub trait StageExt: Stage + Sized {
    /// Feeds this stage's output into `next`, producing a single composed
    /// stage.
    fn then<B: Stage<Input = Self::Output>>(self, next: B) -> Chain<Self, B> {
        Chain {
            first: self,
            second: next,
        }
    }
}

impl<S: Stage> StageExt for S {}

// ---------------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------------

/// The raw input to a pipeline: matching train/test datasets.
#[derive(Clone, Debug)]
pub struct DatasetPair {
    /// Training split.
    pub train: RealDataset,
    /// Held-out test split.
    pub test: RealDataset,
}

impl DatasetPair {
    /// Bundles the two splits.
    pub fn new(train: RealDataset, test: RealDataset) -> Self {
        DatasetPair { train, test }
    }
}

/// How assigned samples are laid out for the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataLayout {
    /// Each sample flattened to a vector (FCNN workloads).
    Flat,
    /// Image layout `[C, H, W]` preserved (conv workloads).
    Image,
}

/// Output of [`AssignStage`]: complex dataset views plus the geometry
/// model factories need.
#[derive(Clone, Debug)]
pub struct AssignedData {
    /// Complex training view under the configured assignment.
    pub train: CDataset,
    /// Complex test view under the configured assignment.
    pub test: CDataset,
    /// Conventional (amplitude-only) training view for a mutual-learning
    /// teacher; present iff the stage was configured with `teacher_view`.
    pub teacher_train: Option<CDataset>,
    /// Number of classes.
    pub classes: usize,
    /// Original image shape `(C, H, W)` before assignment.
    pub raw_shape: (usize, usize, usize),
    /// Image shape `(C, H, W)` after assignment.
    pub assigned_shape: (usize, usize, usize),
}

impl AssignedData {
    /// Flattened feature count of one assigned sample.
    pub fn assigned_features(&self) -> usize {
        let (c, h, w) = self.assigned_shape;
        c * h * w
    }

    /// Flattened feature count of one raw (conventional-view) sample.
    pub fn raw_features(&self) -> usize {
        let (c, h, w) = self.raw_shape;
        c * h * w
    }
}

/// Output of [`TrainStage`]: the trained network and its test accuracy,
/// with the data views threaded through for the downstream stages.
#[derive(Debug)]
pub struct TrainedModel {
    /// The trained student network (software form).
    pub network: Network,
    /// Final test accuracy reported by the trainer.
    pub accuracy: f64,
    /// The assigned data views (ownership flows down the pipeline).
    pub data: AssignedData,
}

/// Output of [`DeployStage`]: the software network plus a serving engine
/// over its photonic deployment.
#[derive(Debug)]
pub struct DeployedModel {
    /// The trained network (kept for software-side comparisons).
    pub network: Network,
    /// Batched inference engine over the deployed meshes.
    pub engine: InferenceEngine,
    /// Software test accuracy carried over from training.
    pub software_accuracy: f64,
    /// The assigned data views.
    pub data: AssignedData,
}

/// Output of [`EvaluateStage`]: software and hardware test accuracy plus
/// the reusable engine.
#[derive(Debug)]
pub struct Evaluation {
    /// The trained network.
    pub network: Network,
    /// The serving engine (reusable for further queries).
    pub engine: InferenceEngine,
    /// Software test accuracy.
    pub software_accuracy: f64,
    /// Deployed (field-level) hardware test accuracy. When the evaluate
    /// stage carried a [`Confidence`] policy this is the *selective*
    /// accuracy over the accepted samples.
    pub hardware_accuracy: f64,
    /// Test samples the confidence policy abstained on (0 without a
    /// policy).
    pub hardware_abstained: usize,
}

impl Evaluation {
    /// Agreement between software and hardware accuracy.
    pub fn hardware_gap(&self) -> f64 {
        (self.software_accuracy - self.hardware_accuracy).abs()
    }
}

// ---------------------------------------------------------------------------
// Assign
// ---------------------------------------------------------------------------

/// Applies a real-to-complex assignment to both dataset splits.
#[derive(Clone, Copy, Debug)]
pub struct AssignStage {
    /// The assignment scheme.
    pub assignment: AssignmentKind,
    /// Sample layout handed to the trainer.
    pub layout: DataLayout,
    /// Also produce the conventional training view for a mutual-learning
    /// teacher.
    pub teacher_view: bool,
}

impl AssignStage {
    /// Flat (FCNN) assignment without a teacher view.
    pub fn flat(assignment: AssignmentKind) -> Self {
        AssignStage {
            assignment,
            layout: DataLayout::Flat,
            teacher_view: false,
        }
    }

    /// Image-layout (conv) assignment without a teacher view.
    pub fn image(assignment: AssignmentKind) -> Self {
        AssignStage {
            assignment,
            layout: DataLayout::Image,
            teacher_view: false,
        }
    }

    /// Enables the conventional teacher view.
    pub fn with_teacher_view(mut self) -> Self {
        self.teacher_view = true;
        self
    }

    fn apply(&self, kind: AssignmentKind, data: &RealDataset) -> Result<CDataset, Error> {
        Ok(match self.layout {
            DataLayout::Flat => kind.try_apply_dataset_flat(data)?,
            DataLayout::Image => kind.try_apply_dataset(data)?,
        })
    }
}

impl Stage for AssignStage {
    type Input = DatasetPair;
    type Output = AssignedData;

    fn name(&self) -> &'static str {
        "assign"
    }

    fn run(&self, input: DatasetPair) -> Result<AssignedData, Error> {
        if input.train.is_empty() || input.test.is_empty() {
            return Err(Error::EmptyInput { stage: self.name() });
        }
        let raw_shape = input.train.image_shape();
        let (c, h, w) = raw_shape;
        let assigned_shape = self.assignment.try_output_shape(c, h, w)?;
        let train = self.apply(self.assignment, &input.train)?;
        let test = self.apply(self.assignment, &input.test)?;
        let teacher_train = if self.teacher_view {
            Some(self.apply(AssignmentKind::Conventional, &input.train)?)
        } else {
            None
        };
        Ok(AssignedData {
            train,
            test,
            teacher_train,
            classes: input.train.num_classes,
            raw_shape,
            assigned_shape,
        })
    }
}

// ---------------------------------------------------------------------------
// Train
// ---------------------------------------------------------------------------

/// Builds a network for the data geometry a pipeline produced. Implemented
/// for plain closures, so workloads plug in without a named type:
///
/// ```ignore
/// let factory = |data: &AssignedData, rng: &mut StdRng| {
///     Ok(build_fcnn(&FcnnConfig { input: data.assigned_features(), .. }, variant, rng))
/// };
/// ```
pub trait ModelFactory {
    /// Builds the (untrained) network.
    fn build(&self, data: &AssignedData, rng: &mut StdRng) -> Result<Network, Error>;
}

impl<F> ModelFactory for F
where
    F: Fn(&AssignedData, &mut StdRng) -> Result<Network, Error>,
{
    fn build(&self, data: &AssignedData, rng: &mut StdRng) -> Result<Network, Error> {
        self(data, rng)
    }
}

/// Mutual-learning configuration of a [`TrainStage`]: a factory for the
/// CVNN teacher plus the distillation settings.
pub struct MutualLearning {
    /// Builds the teacher network (trained on the conventional view).
    pub teacher: Box<dyn ModelFactory>,
    /// Distillation mixing factor α.
    pub alpha: f32,
    /// Softmax temperature of the KL terms.
    pub temperature: f32,
}

/// Trains a student network — alone or in SCVNN–CVNN mutual learning —
/// with the shared hyper-parameters.
pub struct TrainStage {
    /// Builds the student network.
    pub student: Box<dyn ModelFactory>,
    /// Optional mutual learning (teacher + distillation settings).
    pub mutual: Option<MutualLearning>,
    /// Shared training hyper-parameters.
    pub setup: TrainSetup,
    /// Seed for weight init and batch shuffling.
    pub seed: u64,
    /// Per-epoch progress logging to stderr.
    pub verbose: bool,
}

impl TrainStage {
    /// A plain (no mutual learning) training stage.
    pub fn new(student: Box<dyn ModelFactory>, setup: TrainSetup, seed: u64) -> Self {
        TrainStage {
            student,
            mutual: None,
            setup,
            seed,
            verbose: false,
        }
    }

    /// Adds a mutual-learning teacher.
    pub fn with_mutual(mut self, mutual: MutualLearning) -> Self {
        self.mutual = Some(mutual);
        self
    }

    fn clipped_sgd(&self) -> Sgd {
        let mut opt =
            Sgd::with_momentum(self.setup.lr, self.setup.momentum, self.setup.weight_decay);
        opt.clip = Some(1.0);
        opt
    }
}

impl Stage for TrainStage {
    type Input = AssignedData;
    type Output = TrainedModel;

    fn name(&self) -> &'static str {
        "train"
    }

    fn run(&self, data: AssignedData) -> Result<TrainedModel, Error> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut student = self.student.build(&data, &mut rng)?;

        // The trainer's return value *is* the reported accuracy — no
        // recompute pass.
        let accuracy = match &self.mutual {
            Some(ml) => {
                let teacher_train = data.teacher_train.as_ref().ok_or(Error::Stage {
                    stage: "train",
                    message: "mutual learning needs the assign stage's teacher view \
                              (AssignStage::with_teacher_view)"
                        .to_string(),
                })?;
                let mut teacher = ml.teacher.build(&data, &mut rng)?;
                let cfg = MutualConfig {
                    alpha: ml.alpha,
                    temperature: ml.temperature,
                    batch_size: self.setup.batch,
                };
                let mut opt_s = self.clipped_sgd();
                let mut opt_t = self.clipped_sgd();
                mutual_fit(
                    &mut student,
                    &mut teacher,
                    &data.train,
                    teacher_train,
                    &data.test,
                    self.setup.epochs,
                    &cfg,
                    &mut opt_s,
                    &mut opt_t,
                    &mut rng,
                )
            }
            None => {
                let mut opt = self.clipped_sgd();
                let verbose = self.verbose;
                fit_with(
                    &mut student,
                    &data.train,
                    &data.test,
                    self.setup.epochs,
                    self.setup.batch,
                    &mut opt,
                    &mut rng,
                    |stats: &EpochStats| {
                        if verbose {
                            eprintln!(
                                "epoch {:>3}/{}: loss {:.4} (lr {:.4})",
                                stats.epoch + 1,
                                stats.epochs,
                                stats.mean_loss,
                                stats.lr
                            );
                        }
                    },
                )
            }
        };

        Ok(TrainedModel {
            network: student,
            accuracy,
            data,
        })
    }
}

// ---------------------------------------------------------------------------
// Deploy
// ---------------------------------------------------------------------------

/// Maps the trained network onto MZI meshes and wraps it in an
/// [`InferenceEngine`]. FCNN and CNN bodies alike: dense layers map
/// through SVD onto meshes, conv layers lower through the im2col view
/// (the assigned `(C, H, W)` image shape is threaded through from
/// [`AssignedData`] automatically — see
/// [`DeployedFcnn::from_network_shaped`](crate::deploy::DeployedFcnn::from_network_shaped)).
#[derive(Clone, Copy, Debug)]
pub struct DeployStage {
    /// Output detection scheme (derive it from the trained decoder via
    /// [`DecoderKind::detection`](oplix_photonics::decoder::DecoderKind::detection)
    /// or [`crate::zoo::ModelVariant::detection`]).
    pub detection: DeployedDetection,
    /// Mesh decomposition layout.
    pub mesh_style: MeshStyle,
    /// Worker count of the produced engine: batched queries (including
    /// the downstream [`EvaluateStage`] windows) shard across this many
    /// worker slots. `1` is sequential; `0` resolves to the shared
    /// [`crate::pool::jobs`] budget.
    pub num_workers: usize,
}

impl DeployStage {
    /// A deploy stage with the given detection, the default Clements
    /// layout, and a sequential (one-worker) engine.
    pub fn new(detection: DeployedDetection) -> Self {
        DeployStage {
            detection,
            mesh_style: MeshStyle::Clements,
            num_workers: 1,
        }
    }

    /// Overrides the mesh layout.
    pub fn mesh_style(mut self, style: MeshStyle) -> Self {
        self.mesh_style = style;
        self
    }

    /// Shards the produced engine's batched queries across `n` workers
    /// (see [`InferenceEngine::with_num_workers`]; `0` = shared pool
    /// budget).
    pub fn with_num_workers(mut self, n: usize) -> Self {
        self.num_workers = n;
        self
    }
}

impl Stage for DeployStage {
    type Input = TrainedModel;
    type Output = DeployedModel;

    fn name(&self) -> &'static str {
        "deploy"
    }

    fn run(&self, input: TrainedModel) -> Result<DeployedModel, Error> {
        // The assigned image shape rides along so CNN bodies can lower
        // their conv/pool layers (im2col gather plans need the geometry);
        // FCNN bodies ignore it.
        let engine = InferenceEngine::from_network_shaped(
            &input.network,
            Some(input.data.assigned_shape),
            self.detection,
            self.mesh_style,
        )?
        .with_num_workers(self.num_workers);
        Ok(DeployedModel {
            network: input.network,
            engine,
            software_accuracy: input.accuracy,
            data: input.data,
        })
    }
}

// ---------------------------------------------------------------------------
// Evaluate
// ---------------------------------------------------------------------------

/// Verifies the deployed hardware against the held-out test view —
/// flat `[N, D]` or image `[N, C, H, W]` (CNN workloads) — by
/// *streaming* it through the engine's batched path in bounded windows
/// ([`InferenceEngine::accuracy_streaming`]), so evaluation memory is
/// proportional to the window, not the test set — the serving posture for
/// production-sized datasets. Each window shards across the engine's
/// worker slots when the upstream [`DeployStage::with_num_workers`]
/// configured more than one (the default engine is sequential).
///
/// Engine failures are re-surfaced with the offending window: a poisoned
/// test sample reports its absolute index *and* which evaluation window it
/// fell in, and a geometry mismatch names the expected/actual widths,
/// instead of the bare error variant.
///
/// Two optional serving-posture knobs ride on top:
///
/// * `confidence` — an early-exit [`Confidence`] policy: low-confidence
///   test samples are counted as abstentions
///   ([`Evaluation::hardware_abstained`]) and `hardware_accuracy` becomes
///   the selective accuracy over the accepted samples;
/// * `concurrent_clients` — when > 1, evaluation exercises the
///   [`crate::serve`] front end instead of the in-process streaming path:
///   the engine moves behind a [`Server`], that many client threads
///   submit their share of the test set through the bounded queue, and
///   the micro-batcher re-forms batches. Results are bitwise identical to
///   the streaming path (the serving-layer contract), so this mode is an
///   end-to-end exercise of the queue → batcher → shards dataflow.
#[derive(Clone, Copy, Debug)]
pub struct EvaluateStage {
    /// Upper bound on test samples in flight per evaluation window (also
    /// the serve-mode `max_batch`).
    pub batch_size: usize,
    /// Client threads to evaluate through the serving front end with
    /// (0 or 1 = the in-process streaming path).
    pub concurrent_clients: usize,
    /// Optional early-exit confidence policy.
    pub confidence: Option<Confidence>,
}

impl Default for EvaluateStage {
    /// A 256-sample window: big enough to amortise engine dispatch (and,
    /// when the upstream [`DeployStage::with_num_workers`] configured a
    /// sharded engine, to split across its workers), small enough to keep
    /// evaluation memory flat. In-process streaming, no confidence policy.
    fn default() -> Self {
        EvaluateStage {
            batch_size: 256,
            concurrent_clients: 1,
            confidence: None,
        }
    }
}

impl EvaluateStage {
    /// An evaluate stage with a custom window size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn with_batch_size(batch_size: usize) -> Self {
        assert!(batch_size > 0, "evaluation window must be positive");
        EvaluateStage {
            batch_size,
            ..Default::default()
        }
    }

    /// Evaluates through the [`crate::serve`] front end with `n` client
    /// threads (values ≤ 1 keep the in-process streaming path).
    pub fn with_concurrent_clients(mut self, n: usize) -> Self {
        self.concurrent_clients = n;
        self
    }

    /// Installs an early-exit confidence policy.
    pub fn with_confidence(mut self, confidence: Confidence) -> Self {
        self.confidence = Some(confidence);
        self
    }

    /// The serve-mode evaluation: move the engine behind a [`Server`],
    /// fan the test view out over `clients` submitting threads, and fold
    /// the tickets back into (correct, abstained) counts.
    fn run_concurrent(
        &self,
        engine: InferenceEngine,
        data: &AssignedData,
        clients: usize,
    ) -> Result<(InferenceEngine, usize, usize), Error> {
        let n = data.test.inputs.shape()[0];
        let mut builder = Server::builder()
            .max_batch(self.batch_size)
            .max_wait(std::time::Duration::from_micros(500))
            .queue_cap((2 * self.batch_size).max(clients));
        if let Some(c) = self.confidence {
            builder = builder.confidence(c);
        }
        let server = builder.serve_engine(engine);
        let spans: Vec<(usize, usize)> = {
            let per = n.div_ceil(clients);
            (0..clients)
                .map(|c| (c * per, ((c + 1) * per).min(n)))
                .filter(|(lo, hi)| lo < hi)
                .collect()
        };
        let outcomes: Vec<Result<(usize, usize), Error>> = std::thread::scope(|scope| {
            let handles: Vec<_> = spans
                .iter()
                .map(|&(lo, hi)| {
                    let client = server.client();
                    let test = &data.test;
                    scope.spawn(move || {
                        let tickets: Vec<crate::serve::Ticket> = (lo..hi)
                            .map(|i| client.submit(crate::serve::sample_row(&test.inputs, i)))
                            .collect::<Result<_, Error>>()?;
                        let mut correct = 0usize;
                        let mut abstained = 0usize;
                        for (ticket, label) in tickets.into_iter().zip(&test.labels[lo..hi]) {
                            match ticket.wait()? {
                                Prediction::Class(c) if c == *label => correct += 1,
                                Prediction::Class(_) => {}
                                Prediction::Abstain { .. } => abstained += 1,
                            }
                        }
                        Ok((correct, abstained))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("evaluation client thread panicked"))
                .collect()
        });
        let engine = server.shutdown();
        let mut correct = 0usize;
        let mut abstained = 0usize;
        for outcome in outcomes {
            let (c, a) = outcome?;
            correct += c;
            abstained += a;
        }
        Ok((engine, correct, abstained))
    }
}

impl Stage for EvaluateStage {
    type Input = DeployedModel;
    type Output = Evaluation;

    fn name(&self) -> &'static str {
        "evaluate"
    }

    fn run(&self, input: DeployedModel) -> Result<Evaluation, Error> {
        // The field is public (struct-literal construction is allowed), so
        // a zero window must stay a typed error, not reach the engine's
        // assert.
        if self.batch_size == 0 {
            return Err(Error::Stage {
                stage: "evaluate",
                message: "evaluation window (batch_size) must be positive".to_string(),
            });
        }
        let DeployedModel {
            network,
            mut engine,
            software_accuracy,
            data,
        } = input;
        let contextualise = |e: Error| match e {
            Error::NonFiniteLogits { sample } => Error::Stage {
                stage: "evaluate",
                message: format!(
                    "test sample {sample} (evaluation window {} at batch size {}) \
                     produced non-finite logits on the deployed hardware",
                    sample / self.batch_size,
                    self.batch_size
                ),
            },
            Error::EmptyInput { .. } => Error::Stage {
                stage: "evaluate",
                message: "test view has no samples to evaluate".to_string(),
            },
            Error::ShapeMismatch { .. } => Error::Stage {
                stage: "evaluate",
                message: format!("test view rejected by the deployed mesh: {e}"),
            },
            other => other,
        };
        let (engine, hardware_accuracy, hardware_abstained) = if self.concurrent_clients > 1 {
            if data.test.inputs.shape().len() < 2 || data.test.inputs.shape()[0] == 0 {
                return Err(Error::Stage {
                    stage: "evaluate",
                    message: "test view has no samples to evaluate".to_string(),
                });
            }
            // The serve path's per-request fallback reports sample
            // indices relative to the request's own one-sample batch, so
            // the streaming path's window arithmetic would point at the
            // wrong row — describe the serving context instead.
            let serve_context = |e: Error| match e {
                Error::NonFiniteLogits { .. } => Error::Stage {
                    stage: "evaluate",
                    message: format!(
                        "a test sample produced non-finite logits on the deployed \
                         hardware while evaluating through the serving front end \
                         ({} concurrent clients)",
                        self.concurrent_clients
                    ),
                },
                other => contextualise(other),
            };
            let (engine, correct, abstained) = self
                .run_concurrent(engine, &data, self.concurrent_clients)
                .map_err(serve_context)?;
            let accepted = data.test.inputs.shape()[0] - abstained;
            let accuracy = if accepted == 0 {
                0.0
            } else {
                correct as f64 / accepted as f64
            };
            (engine, accuracy, abstained)
        } else {
            let report = engine
                .accuracy_streaming_with(&data.test, self.batch_size, self.confidence)
                .map_err(contextualise)?;
            (engine, report.accuracy(), report.abstained)
        };
        Ok(Evaluation {
            network,
            engine,
            software_accuracy,
            hardware_accuracy,
            hardware_abstained,
        })
    }
}

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

/// The four stages of the OplixNet workflow as swappable trait objects.
///
/// Any stage can be replaced by a custom implementation with the same
/// artifact types — a conv-body trainer, an OFFT baseline stage, a
/// different verifier — without touching the other three.
///
/// ```
/// use oplixnet::stage::{AssignStage, AssignedData, DatasetPair, DeployStage, Pipeline, TrainStage};
/// use oplixnet::zoo::{build_fcnn, FcnnConfig, ModelVariant};
/// use oplixnet::experiments::TrainSetup;
/// use oplix_datasets::assign::AssignmentKind;
/// use oplix_datasets::synth::{digits, SynthConfig};
/// use oplix_photonics::decoder::DecoderKind;
/// use rand::rngs::StdRng;
///
/// let cfg = SynthConfig { height: 8, width: 8, samples: 60, ..Default::default() };
/// let pair = DatasetPair::new(digits(&cfg), digits(&SynthConfig { seed: 1, ..cfg }));
/// let variant = ModelVariant::Split(DecoderKind::Merge);
/// let pipeline = Pipeline::standard(
///     AssignStage::flat(AssignmentKind::SpatialInterlace),
///     TrainStage::new(
///         Box::new(move |data: &AssignedData, rng: &mut StdRng| {
///             Ok(build_fcnn(
///                 &FcnnConfig { input: data.assigned_features(), hidden: 8, classes: data.classes },
///                 variant,
///                 rng,
///             ))
///         }),
///         TrainSetup { epochs: 2, batch: 20, lr: 0.05, momentum: 0.9, weight_decay: 1e-4 },
///         42,
///     ),
///     DeployStage::new(variant.detection()),
/// );
/// let eval = pipeline.run(pair).expect("geometry is valid and FCNNs deploy");
/// assert!(eval.hardware_gap() < 0.2);
/// ```
pub struct Pipeline {
    /// Dataset → complex views.
    pub assign: Box<dyn Stage<Input = DatasetPair, Output = AssignedData>>,
    /// Views → trained network.
    pub train: Box<dyn Stage<Input = AssignedData, Output = TrainedModel>>,
    /// Network → deployed engine.
    pub deploy: Box<dyn Stage<Input = TrainedModel, Output = DeployedModel>>,
    /// Engine → verified evaluation.
    pub evaluate: Box<dyn Stage<Input = DeployedModel, Output = Evaluation>>,
}

impl Pipeline {
    /// Assembles the standard Assign → Train → Deploy → Evaluate flow.
    pub fn standard(assign: AssignStage, train: TrainStage, deploy: DeployStage) -> Self {
        Pipeline {
            assign: Box::new(assign),
            train: Box::new(train),
            deploy: Box::new(deploy),
            evaluate: Box::new(EvaluateStage::default()),
        }
    }

    /// Runs all four stages.
    ///
    /// # Errors
    ///
    /// Propagates the first stage failure, typed per stage.
    pub fn run(&self, data: DatasetPair) -> Result<Evaluation, Error> {
        let assigned = self.assign.run(data)?;
        let trained = self.train.run(assigned)?;
        let deployed = self.deploy.run(trained)?;
        self.evaluate.run(deployed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::{build_fcnn, FcnnConfig, ModelVariant};
    use oplix_datasets::synth::{digits, SynthConfig};
    use oplix_photonics::decoder::DecoderKind;

    fn quick_pair() -> DatasetPair {
        let cfg = SynthConfig {
            height: 8,
            width: 8,
            samples: 160,
            ..Default::default()
        };
        DatasetPair::new(
            digits(&cfg),
            digits(&SynthConfig {
                samples: 80,
                seed: 1,
                ..cfg
            }),
        )
    }

    fn quick_setup() -> TrainSetup {
        TrainSetup {
            epochs: 6,
            batch: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
        }
    }

    #[test]
    fn assign_stage_produces_views_and_geometry() {
        let stage = AssignStage::flat(AssignmentKind::SpatialInterlace).with_teacher_view();
        let out = stage.run(quick_pair()).expect("assign");
        assert_eq!(out.assigned_shape, (1, 4, 8));
        assert_eq!(out.assigned_features(), 32);
        assert_eq!(out.raw_features(), 64);
        assert_eq!(out.train.inputs.shape(), &[160, 32]);
        assert!(out.teacher_train.is_some());
    }

    #[test]
    fn assign_stage_reports_geometry_errors() {
        let pair = {
            let cfg = SynthConfig {
                height: 7,
                width: 8,
                samples: 10,
                ..Default::default()
            };
            DatasetPair::new(digits(&cfg), digits(&SynthConfig { seed: 1, ..cfg }))
        };
        let err = AssignStage::flat(AssignmentKind::SpatialInterlace)
            .run(pair)
            .expect_err("odd height must fail");
        assert!(matches!(err, Error::Assign(_)), "{err:?}");
    }

    #[test]
    fn train_stage_requires_teacher_view_for_mutual() {
        let assign = AssignStage::flat(AssignmentKind::SpatialInterlace);
        let data = assign.run(quick_pair()).expect("assign");
        let stage = TrainStage::new(
            Box::new(|d: &AssignedData, rng: &mut StdRng| {
                Ok(build_fcnn(
                    &FcnnConfig {
                        input: d.assigned_features(),
                        hidden: 8,
                        classes: d.classes,
                    },
                    ModelVariant::Split(DecoderKind::Merge),
                    rng,
                ))
            }),
            quick_setup(),
            3,
        )
        .with_mutual(MutualLearning {
            teacher: Box::new(|d: &AssignedData, rng: &mut StdRng| {
                Ok(build_fcnn(
                    &FcnnConfig {
                        input: d.raw_features(),
                        hidden: 16,
                        classes: d.classes,
                    },
                    ModelVariant::ConventionalOnn,
                    rng,
                ))
            }),
            alpha: 1.0,
            temperature: 1.0,
        });
        let err = stage.run(data).expect_err("missing teacher view");
        assert!(
            matches!(err, Error::Stage { stage: "train", .. }),
            "{err:?}"
        );
    }

    #[test]
    fn standard_pipeline_runs_end_to_end() {
        let pipeline = Pipeline::standard(
            AssignStage::flat(AssignmentKind::SpatialInterlace),
            TrainStage::new(
                Box::new(|d: &AssignedData, rng: &mut StdRng| {
                    Ok(build_fcnn(
                        &FcnnConfig {
                            input: d.assigned_features(),
                            hidden: 12,
                            classes: d.classes,
                        },
                        ModelVariant::Split(DecoderKind::Merge),
                        rng,
                    ))
                }),
                quick_setup(),
                5,
            ),
            DeployStage::new(ModelVariant::Split(DecoderKind::Merge).detection()),
        );
        let eval = pipeline.run(quick_pair()).expect("pipeline");
        assert!(
            eval.software_accuracy > 0.15,
            "accuracy {}",
            eval.software_accuracy
        );
        assert!(eval.hardware_gap() < 0.05, "gap {}", eval.hardware_gap());
    }

    #[test]
    fn evaluate_stage_reports_window_of_poisoned_sample() {
        use crate::deploy::DeployedDetection;
        use crate::engine::InferenceEngine;
        use oplix_nn::ctensor::CTensor;
        use oplix_nn::head::MergeHead;
        use oplix_nn::layers::{CDense, CSequential};
        use oplix_nn::tensor::Tensor;
        use oplix_nn::trainer::CDataset;
        use oplix_photonics::svd_map::MeshStyle;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        // Single-stage deployment: the input feeds detection directly, so
        // a poisoned field reaches the logits (deeper pipelines sanitise
        // at the electro-optic ReLU).
        let mut rng = StdRng::seed_from_u64(77);
        let body = CSequential::new().push(CDense::new(4, 6, &mut rng));
        let net = Network::new(body, Box::new(MergeHead::new()));
        let engine = InferenceEngine::from_network(
            &net,
            DeployedDetection::Differential,
            MeshStyle::Clements,
        )
        .expect("deploys");

        let mut inputs = CTensor::from_re(Tensor::random_uniform(&[8, 4], 1.0, &mut rng));
        inputs.re.as_mut_slice()[5 * 4] = f32::INFINITY; // poison sample 5
        let view = CDataset::new(inputs, vec![0; 8]);
        let data = AssignedData {
            train: view.clone(),
            test: view,
            teacher_train: None,
            classes: 3,
            raw_shape: (1, 2, 4),
            assigned_shape: (1, 1, 4),
        };
        let deployed = DeployedModel {
            network: net,
            engine,
            software_accuracy: 0.5,
            data,
        };
        // Window size 2: sample 5 falls in evaluation window 2.
        let err = EvaluateStage::with_batch_size(2)
            .run(deployed)
            .expect_err("poisoned sample must fail evaluation");
        match err {
            Error::Stage {
                stage: "evaluate",
                message,
            } => {
                assert!(message.contains("sample 5"), "{message}");
                assert!(message.contains("window 2"), "{message}");
            }
            other => panic!("expected contextual stage error, got {other:?}"),
        }
    }

    #[test]
    fn evaluate_stage_rejects_zero_window_as_typed_error() {
        use crate::deploy::DeployedDetection;
        use crate::engine::InferenceEngine;
        use oplix_nn::ctensor::CTensor;
        use oplix_nn::head::MergeHead;
        use oplix_nn::layers::{CDense, CSequential};
        use oplix_nn::tensor::Tensor;
        use oplix_nn::trainer::CDataset;
        use oplix_photonics::svd_map::MeshStyle;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let mut rng = StdRng::seed_from_u64(79);
        let body = CSequential::new().push(CDense::new(4, 6, &mut rng));
        let net = Network::new(body, Box::new(MergeHead::new()));
        let engine = InferenceEngine::from_network(
            &net,
            DeployedDetection::Differential,
            MeshStyle::Clements,
        )
        .expect("deploys");
        let view = CDataset::new(
            CTensor::from_re(Tensor::random_uniform(&[4, 4], 1.0, &mut rng)),
            vec![0; 4],
        );
        let deployed = DeployedModel {
            network: net,
            engine,
            software_accuracy: 0.5,
            data: AssignedData {
                train: view.clone(),
                test: view,
                teacher_train: None,
                classes: 3,
                raw_shape: (1, 2, 4),
                assigned_shape: (1, 1, 4),
            },
        };
        // The field is public, so a zero window is constructible; it must
        // come back as a typed error, not an engine panic.
        let err = EvaluateStage {
            batch_size: 0,
            ..Default::default()
        }
        .run(deployed)
        .expect_err("zero window must be rejected");
        assert!(
            matches!(
                err,
                Error::Stage {
                    stage: "evaluate",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn concurrent_client_evaluation_matches_streaming_evaluation() {
        // Run the Assign → Train → Deploy prefix once, then evaluate the
        // same deployed model through the in-process streaming path and
        // through the serve front end (4 client threads): the serving
        // layer's bitwise contract means identical accuracy.
        let assign = AssignStage::flat(AssignmentKind::SpatialInterlace);
        let train = TrainStage::new(
            Box::new(|d: &AssignedData, rng: &mut StdRng| {
                Ok(build_fcnn(
                    &FcnnConfig {
                        input: d.assigned_features(),
                        hidden: 10,
                        classes: d.classes,
                    },
                    ModelVariant::Split(DecoderKind::Merge),
                    rng,
                ))
            }),
            quick_setup(),
            11,
        );
        let detection = ModelVariant::Split(DecoderKind::Merge).detection();
        let deploy = DeployStage::new(detection);
        let trained = assign
            .then(train)
            .run(quick_pair())
            .expect("assign + train");
        // `Network` is not cloneable: evaluate once through the streaming
        // path, then rebuild a second deployed model from the network the
        // evaluation hands back (same weights, same data views).
        let data = trained.data.clone();
        let deployed_a = deploy.run(trained).expect("deploy");
        let streamed = EvaluateStage::with_batch_size(16)
            .run(deployed_a)
            .expect("streaming evaluation");
        let deployed_b = DeployedModel {
            engine: InferenceEngine::from_network(
                &streamed.network,
                detection,
                oplix_photonics::svd_map::MeshStyle::Clements,
            )
            .expect("redeploys"),
            network: streamed.network,
            software_accuracy: streamed.software_accuracy,
            data,
        };
        let served = EvaluateStage::with_batch_size(16)
            .with_concurrent_clients(4)
            .run(deployed_b)
            .expect("concurrent evaluation");
        assert_eq!(streamed.hardware_accuracy, served.hardware_accuracy);
        assert_eq!(streamed.hardware_abstained, 0);
        assert_eq!(served.hardware_abstained, 0);
    }

    #[test]
    fn then_combinator_chains_stages() {
        let composed = AssignStage::flat(AssignmentKind::SpatialInterlace).then(TrainStage::new(
            Box::new(|d: &AssignedData, rng: &mut StdRng| {
                Ok(build_fcnn(
                    &FcnnConfig {
                        input: d.assigned_features(),
                        hidden: 8,
                        classes: d.classes,
                    },
                    ModelVariant::Split(DecoderKind::Merge),
                    rng,
                ))
            }),
            quick_setup(),
            7,
        ));
        let trained = composed.run(quick_pair()).expect("chained stages");
        assert!(trained.accuracy > 0.1);
    }
}
