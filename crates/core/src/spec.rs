//! Architecture specifications and exact device counting.
//!
//! The paper's area numbers (Table II) are closed-form functions of layer
//! shapes; this module reproduces them *at the paper's full scale* even
//! though the training experiments run at reduced scale. Conventions,
//! validated against Table II:
//!
//! * a dense `m×n` layer costs `mzi(m, n) = n(n−1)/2 + min(m,n) + m(m−1)/2`;
//! * a CONV layer with kernel `k×k` and channels `in → out` is one MVM of
//!   shape `out × (in·k²)` (the paper: "the size of the CONV kernel is only
//!   related to the number of input and output channels and the spatial
//!   size");
//! * CIFAR-style ResNets use parameter-free (option A) shortcuts, so
//!   shortcuts contribute no MZIs — this is what makes ResNet-32 land on
//!   the paper's 205.1×10⁴;
//! * the proposed split models halve every feature dimension (channel
//!   lossless: `3 → 2` input channels, interior channels `/2`; spatial
//!   interlace: input pixels `/2`, hidden widths `/2`);
//! * Table II's "Prop." column counts the bare network (`K` outputs); the
//!   decoder overhead is accounted separately, exactly as the paper does in
//!   Fig. 9 — this is what makes the LeNet-5 number land on 2.9×10⁴.

use oplix_photonics::count::mzi_count;

/// Shape of one weight layer, for counting purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayerShape {
    /// Fully connected `out × in`.
    Dense {
        /// Output width.
        out: usize,
        /// Input width.
        input: usize,
    },
    /// Convolution `out` channels from `in` channels with a `k×k` kernel.
    Conv {
        /// Output channels.
        out: usize,
        /// Input channels.
        input: usize,
        /// Kernel size.
        k: usize,
    },
}

impl LayerShape {
    /// The MVM shape `(m, n)` this layer maps onto an MZI mesh.
    pub fn mvm_shape(&self) -> (u64, u64) {
        match *self {
            LayerShape::Dense { out, input } => (out as u64, input as u64),
            LayerShape::Conv { out, input, k } => (out as u64, (input * k * k) as u64),
        }
    }

    /// MZIs needed to implement this layer.
    pub fn mzis(&self) -> u64 {
        let (m, n) = self.mvm_shape();
        mzi_count(m, n)
    }

    /// Independent real parameters (weights only; biases excluded to match
    /// the paper's `#Para` convention), doubled for complex weights.
    pub fn params(&self, complex: bool) -> u64 {
        let (m, n) = self.mvm_shape();
        let base = m * n;
        if complex {
            2 * base
        } else {
            base
        }
    }
}

/// A full architecture specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelSpec {
    /// Human-readable name.
    pub name: String,
    /// Weight layers in order.
    pub layers: Vec<LayerShape>,
    /// Whether the weights are complex-valued.
    pub complex: bool,
}

impl ModelSpec {
    /// Total MZI count.
    pub fn mzis(&self) -> u64 {
        self.layers.iter().map(LayerShape::mzis).sum()
    }

    /// Total independent real weight parameters.
    pub fn params(&self) -> u64 {
        self.layers.iter().map(|l| l.params(self.complex)).sum()
    }

    /// MZI count in the paper's `×10⁴` display convention (one decimal).
    pub fn mzis_e4(&self) -> f64 {
        (self.mzis() as f64 / 1e4 * 10.0).round() / 10.0
    }
}

// ---------------------------------------------------------------------------
// Paper-scale model specs
// ---------------------------------------------------------------------------

/// The paper's FCNN: 784-100-10 on MNIST (hidden layer size 100, §IV).
pub fn fcnn_orig() -> ModelSpec {
    ModelSpec {
        name: "FCNN".into(),
        layers: vec![
            LayerShape::Dense {
                out: 100,
                input: 784,
            },
            LayerShape::Dense {
                out: 10,
                input: 100,
            },
        ],
        complex: true,
    }
}

/// The proposed split FCNN: spatial interlace halves the 784 inputs to 392
/// complex values and the hidden width halves to 50.
pub fn fcnn_prop() -> ModelSpec {
    ModelSpec {
        name: "FCNN (split)".into(),
        layers: vec![
            LayerShape::Dense {
                out: 50,
                input: 392,
            },
            LayerShape::Dense { out: 10, input: 50 },
        ],
        complex: true,
    }
}

/// LeNet-5 on CIFAR-10 (3 input channels, 32×32):
/// conv5×5 3→6, pool, conv5×5 6→16, pool, 400-120-84-10.
pub fn lenet5_orig() -> ModelSpec {
    ModelSpec {
        name: "LeNet-5".into(),
        layers: vec![
            LayerShape::Conv {
                out: 6,
                input: 3,
                k: 5,
            },
            LayerShape::Conv {
                out: 16,
                input: 6,
                k: 5,
            },
            LayerShape::Dense {
                out: 120,
                input: 400,
            },
            LayerShape::Dense {
                out: 84,
                input: 120,
            },
            LayerShape::Dense { out: 10, input: 84 },
        ],
        complex: true,
    }
}

/// The proposed split LeNet-5 under channel-lossless assignment: channels
/// 3→2 at the input and halved everywhere else.
pub fn lenet5_prop() -> ModelSpec {
    ModelSpec {
        name: "LeNet-5 (split)".into(),
        layers: vec![
            LayerShape::Conv {
                out: 3,
                input: 2,
                k: 5,
            },
            LayerShape::Conv {
                out: 8,
                input: 3,
                k: 5,
            },
            LayerShape::Dense {
                out: 60,
                input: 200,
            },
            LayerShape::Dense { out: 42, input: 60 },
            LayerShape::Dense { out: 10, input: 42 },
        ],
        complex: true,
    }
}

/// CIFAR-style ResNet of depth `6n+2` with widths 16/32/64 and
/// parameter-free shortcuts.
pub fn resnet_orig(depth: usize, classes: usize) -> ModelSpec {
    assert!(
        depth >= 8 && (depth - 2).is_multiple_of(6),
        "depth must be 6n+2"
    );
    let n = (depth - 2) / 6;
    let mut layers = vec![LayerShape::Conv {
        out: 16,
        input: 3,
        k: 3,
    }];
    push_resnet_stages(&mut layers, n, &[16, 32, 64]);
    layers.push(LayerShape::Dense {
        out: classes,
        input: 64,
    });
    ModelSpec {
        name: format!("ResNet-{depth}"),
        layers,
        complex: true,
    }
}

/// The proposed split ResNet: channel-lossless input (3→2), halved widths
/// 8/16/32.
pub fn resnet_prop(depth: usize, classes: usize) -> ModelSpec {
    assert!(
        depth >= 8 && (depth - 2).is_multiple_of(6),
        "depth must be 6n+2"
    );
    let n = (depth - 2) / 6;
    let mut layers = vec![LayerShape::Conv {
        out: 8,
        input: 2,
        k: 3,
    }];
    push_resnet_stages(&mut layers, n, &[8, 16, 32]);
    layers.push(LayerShape::Dense {
        out: classes,
        input: 32,
    });
    ModelSpec {
        name: format!("ResNet-{depth} (split)"),
        layers,
        complex: true,
    }
}

fn push_resnet_stages(layers: &mut Vec<LayerShape>, blocks: usize, widths: &[usize]) {
    let mut in_ch = widths[0];
    for &w in widths {
        for b in 0..blocks {
            let first_in = if b == 0 { in_ch } else { w };
            layers.push(LayerShape::Conv {
                out: w,
                input: first_in,
                k: 3,
            });
            layers.push(LayerShape::Conv {
                out: w,
                input: w,
                k: 3,
            });
        }
        in_ch = w;
    }
}

/// The real-valued reference (RVNN) spec of a model: same shapes as the
/// original, real weights.
pub fn to_rvnn(mut spec: ModelSpec) -> ModelSpec {
    spec.complex = false;
    spec.name = format!("{} (RVNN)", spec.name);
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use oplix_photonics::count::reduction_ratio;

    #[test]
    fn table2_fcnn_counts() {
        assert_eq!(fcnn_orig().mzis(), 316_991);
        assert_eq!(fcnn_orig().mzis_e4(), 31.7); // paper: 31.7
        assert_eq!(fcnn_prop().mzis(), 79_191);
        assert_eq!(fcnn_prop().mzis_e4(), 7.9); // paper: 7.9
        let red = reduction_ratio(fcnn_orig().mzis(), fcnn_prop().mzis());
        assert!((red - 0.7503).abs() < 0.002, "paper: 75.03 %, got {red}");
    }

    #[test]
    fn table2_lenet_counts() {
        assert_eq!(lenet5_orig().mzis(), 115_418);
        assert_eq!(lenet5_orig().mzis_e4(), 11.5); // paper: 11.5
                                                   // paper: 2.9e4 — exact under the decoder-excluded convention.
        let prop = lenet5_prop().mzis();
        assert_eq!(prop, 29_361);
        assert_eq!(lenet5_prop().mzis_e4(), 2.9);
        let red = reduction_ratio(lenet5_orig().mzis(), prop);
        assert!((red - 0.7462).abs() < 0.002, "paper: 74.62 %, got {red}");
    }

    #[test]
    fn table2_resnet20_counts() {
        let orig = resnet_orig(20, 10).mzis();
        // paper: 116.6e4 (we land on 116.7e4 with identical conventions).
        assert!((orig as f64 / 1e4 - 116.6).abs() < 0.2, "orig = {orig}");
        let prop = resnet_prop(20, 10).mzis();
        assert_eq!(prop, 291_248); // paper: 29.1e4
        assert_eq!(resnet_prop(20, 10).mzis_e4(), 29.1);
        let red = reduction_ratio(orig, prop);
        assert!((red - 0.7506).abs() < 0.002, "paper: 75.06 %, got {red}");
    }

    #[test]
    fn table2_resnet32_counts() {
        let orig = resnet_orig(32, 100).mzis();
        // paper: 205.1e4.
        assert!((orig as f64 / 1e4 - 205.1).abs() < 0.3, "orig = {orig}");
        let prop = resnet_prop(32, 100).mzis();
        // paper: 51.5e4.
        assert!((prop as f64 / 1e4 - 51.5).abs() < 0.3, "prop = {prop}");
        let red = reduction_ratio(orig, prop);
        assert!((red - 0.7488).abs() < 0.003, "paper: 74.88 %, got {red}");
    }

    #[test]
    fn conv_layer_shape_convention() {
        let conv = LayerShape::Conv {
            out: 16,
            input: 6,
            k: 5,
        };
        assert_eq!(conv.mvm_shape(), (16, 150));
        assert_eq!(conv.mzis(), 11_311);
    }

    #[test]
    fn params_double_for_complex() {
        let spec = fcnn_orig();
        let real = to_rvnn(spec.clone());
        assert_eq!(spec.params(), 2 * real.params());
    }

    #[test]
    fn resnet56_is_larger_teacher() {
        assert!(resnet_orig(56, 10).mzis() > resnet_orig(20, 10).mzis());
        assert!(resnet_orig(56, 100).mzis() > resnet_orig(32, 100).mzis());
    }

    #[test]
    #[should_panic(expected = "6n+2")]
    fn rejects_bad_depth() {
        let _ = resnet_orig(21, 10);
    }
}
