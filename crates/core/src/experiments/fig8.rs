//! Fig. 8: comparison of real-to-complex data assignments.
//!
//! For the FCNN the spatial schemes are compared (SI / SH / SS — all with
//! the same 75 % area reduction, so only accuracy differs); for the CNNs
//! the channel schemes and SI are compared, where SI cannot shrink CONV
//! layers and CR over-compresses. Each entry reports training-scale
//! accuracy and the paper-scale area reduction.

use crate::experiments::{pct, run_training_acc, Scale};
use crate::spec::{fcnn_orig, lenet5_orig, resnet_orig, LayerShape, ModelSpec};
use crate::stage::{AssignStage, AssignedData, DataLayout, DatasetPair};
use crate::zoo::{
    build_fcnn, build_lenet, build_resnet, FcnnConfig, LenetConfig, ModelVariant, ResnetConfig,
};
use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::{colors, digits, SynthConfig};
use oplix_nn::network::Network;
use oplix_photonics::count::reduction_ratio;
use oplix_photonics::decoder::DecoderKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Which model family a Fig. 8 group runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig8Model {
    /// FCNN on digit data (spatial schemes).
    Fcnn,
    /// LeNet-5 on colour data.
    Lenet5,
    /// ResNet-20 on colour data.
    Resnet20,
    /// ResNet-32 on colour data (more classes).
    Resnet32,
}

impl Fig8Model {
    /// All four, in figure order.
    pub fn all() -> [Fig8Model; 4] {
        [
            Fig8Model::Fcnn,
            Fig8Model::Lenet5,
            Fig8Model::Resnet20,
            Fig8Model::Resnet32,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Fig8Model::Fcnn => "FCNN",
            Fig8Model::Lenet5 => "LeNet-5",
            Fig8Model::Resnet20 => "ResNet-20",
            Fig8Model::Resnet32 => "ResNet-32",
        }
    }

    /// The assignments compared for this model in Fig. 8.
    pub fn assignments(&self) -> Vec<AssignmentKind> {
        match self {
            Fig8Model::Fcnn => vec![
                AssignmentKind::SpatialInterlace,
                AssignmentKind::SpatialHalfHalf,
                AssignmentKind::SpatialSymmetric,
            ],
            _ => vec![
                AssignmentKind::SpatialInterlace,
                AssignmentKind::ChannelLossless,
                AssignmentKind::ChannelRemapping,
            ],
        }
    }

    fn classes(&self) -> usize {
        match self {
            Fig8Model::Resnet32 => 20,
            _ => 10,
        }
    }
}

/// Paper-scale spec of `model` under `assignment`, for area accounting.
///
/// * Spatial schemes halve pixel counts: dense layers shrink, CONV kernels
///   do not (their shape depends only on channels).
/// * Channel lossless halves channels everywhere.
/// * Channel remapping compresses the input to one complex channel and
///   halves interior channels (the thinner stem propagates).
pub fn assigned_spec(model: Fig8Model, assignment: AssignmentKind) -> ModelSpec {
    let half = |v: usize| v.div_ceil(2);
    match model {
        Fig8Model::Fcnn => {
            // 784-100-10 with merge decoder; spatial schemes halve the
            // input and hidden width identically.
            ModelSpec {
                name: format!("FCNN {}", assignment.short_name()),
                layers: vec![
                    LayerShape::Dense {
                        out: 50,
                        input: 392,
                    },
                    LayerShape::Dense { out: 10, input: 50 },
                ],
                complex: true,
            }
        }
        Fig8Model::Lenet5 => {
            let (c_in, c1, c2, f1, f2, flat) = match assignment {
                // SI: channels unchanged, flatten width halves (the paper:
                // "the area reduction of SI [in LeNet-5] is due to the
                // decrease of feature map size in the last linear layers").
                AssignmentKind::SpatialInterlace => (3, 6, 16, half(120), half(84), 200),
                AssignmentKind::ChannelLossless => (2, 3, 8, 60, 42, 200),
                AssignmentKind::ChannelRemapping => (1, 3, 4, 30, 21, 100),
                _ => (3, 6, 16, 120, 84, 400),
            };
            ModelSpec {
                name: format!("LeNet-5 {}", assignment.short_name()),
                layers: vec![
                    LayerShape::Conv {
                        out: c1,
                        input: c_in,
                        k: 5,
                    },
                    LayerShape::Conv {
                        out: c2,
                        input: c1,
                        k: 5,
                    },
                    LayerShape::Dense {
                        out: f1,
                        input: flat,
                    },
                    LayerShape::Dense { out: f2, input: f1 },
                    LayerShape::Dense { out: 10, input: f2 },
                ],
                complex: true,
            }
        }
        Fig8Model::Resnet20 | Fig8Model::Resnet32 => {
            let depth = if model == Fig8Model::Resnet20 { 20 } else { 32 };
            let classes = if model == Fig8Model::Resnet20 {
                10
            } else {
                100
            };
            let n = (depth - 2) / 6;
            let (stem_in, widths): (usize, [usize; 3]) = match assignment {
                // SI: no reduction at all in ResNets (paper: the linear
                // layer depends only on channel count).
                AssignmentKind::SpatialInterlace => (3, [16, 32, 64]),
                AssignmentKind::ChannelLossless => (2, [8, 16, 32]),
                AssignmentKind::ChannelRemapping => (1, [4, 8, 16]),
                _ => (3, [16, 32, 64]),
            };
            let mut layers = vec![LayerShape::Conv {
                out: widths[0],
                input: stem_in,
                k: 3,
            }];
            let mut in_ch = widths[0];
            for &w in &widths {
                for b in 0..n {
                    let first_in = if b == 0 { in_ch } else { w };
                    layers.push(LayerShape::Conv {
                        out: w,
                        input: first_in,
                        k: 3,
                    });
                    layers.push(LayerShape::Conv {
                        out: w,
                        input: w,
                        k: 3,
                    });
                }
                in_ch = w;
            }
            layers.push(LayerShape::Dense {
                out: classes,
                input: widths[2],
            });
            ModelSpec {
                name: format!("ResNet-{depth} {}", assignment.short_name()),
                layers,
                complex: true,
            }
        }
    }
}

/// Paper-scale area reduction of `model` under `assignment`.
pub fn area_reduction(model: Fig8Model, assignment: AssignmentKind) -> f64 {
    let orig = match model {
        Fig8Model::Fcnn => fcnn_orig().mzis(),
        Fig8Model::Lenet5 => lenet5_orig().mzis(),
        Fig8Model::Resnet20 => resnet_orig(20, 10).mzis(),
        Fig8Model::Resnet32 => resnet_orig(32, 100).mzis(),
    };
    reduction_ratio(orig, assigned_spec(model, assignment).mzis())
}

/// One accuracy/area entry of Fig. 8.
#[derive(Clone, Debug)]
pub struct Fig8Entry {
    /// Model name.
    pub model: &'static str,
    /// Assignment scheme.
    pub assignment: AssignmentKind,
    /// Training-scale accuracy.
    pub accuracy: f64,
    /// Paper-scale area reduction.
    pub area_reduction: f64,
}

/// The rendered Fig. 8 data.
#[derive(Clone, Debug)]
pub struct Fig8Report {
    /// All entries, grouped by model.
    pub entries: Vec<Fig8Entry>,
}

impl fmt::Display for Fig8Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 8: comparison of data assignment methods")?;
        writeln!(
            f,
            "{:<10} {:<6} {:>10} {:>12}",
            "Model", "Assign", "Accuracy", "Area red."
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "{:<10} {:<6} {:>10} {:>12}",
                e.model,
                e.assignment.short_name(),
                pct(e.accuracy),
                pct(e.area_reduction),
            )?;
        }
        Ok(())
    }
}

fn build_for(
    model: Fig8Model,
    assignment: AssignmentKind,
    hw: usize,
    classes: usize,
    seed: u64,
) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let variant = ModelVariant::Split(DecoderKind::Merge);
    match model {
        Fig8Model::Fcnn => {
            let input = hw * hw / 2; // all spatial schemes halve
            build_fcnn(
                &FcnnConfig {
                    input,
                    hidden: 32,
                    classes,
                },
                variant,
                &mut rng,
            )
        }
        Fig8Model::Lenet5 => {
            let full = LenetConfig::training_scale(3, hw, classes);
            let cfg = match assignment {
                // SI keeps channels but halves the image height.
                AssignmentKind::SpatialInterlace => full.with_input(hw / 2, hw),
                AssignmentKind::ChannelLossless => full.halved(),
                AssignmentKind::ChannelRemapping => LenetConfig {
                    in_ch: 1,
                    conv1: full.conv1 / 2,
                    conv2: full.conv2 / 4,
                    fc1: full.fc1 / 4,
                    fc2: full.fc2 / 4,
                    ..full
                },
                _ => full,
            };
            build_lenet(&cfg, variant, &mut rng)
        }
        Fig8Model::Resnet20 | Fig8Model::Resnet32 => {
            let depth = if model == Fig8Model::Resnet20 { 20 } else { 32 };
            let full = ResnetConfig::training_scale(depth, 3, hw, classes);
            let cfg = match assignment {
                // SI keeps channels but halves the image height.
                AssignmentKind::SpatialInterlace => full.with_input(hw / 2, hw),
                AssignmentKind::ChannelLossless => full.halved(),
                AssignmentKind::ChannelRemapping => ResnetConfig {
                    in_ch: 1,
                    widths: [full.widths[0] / 4, full.widths[1] / 4, full.widths[2] / 4],
                    ..full
                },
                _ => full,
            };
            build_resnet(&cfg, variant, &mut rng)
        }
    }
}

fn run_entry(model: Fig8Model, assignment: AssignmentKind, scale: &Scale) -> Fig8Entry {
    let hw = if model == Fig8Model::Fcnn {
        scale.image_hw
    } else {
        scale.cnn_hw()
    };
    let classes = model.classes();
    let setup = scale.setup_for(match model {
        Fig8Model::Fcnn => crate::experiments::Workload::Fcnn,
        Fig8Model::Lenet5 => crate::experiments::Workload::Lenet,
        _ => crate::experiments::Workload::Resnet,
    });
    let mk_cfg = |samples, seed| SynthConfig {
        height: hw,
        width: hw,
        num_classes: classes,
        samples,
        seed,
        ..Default::default()
    };
    let pair: DatasetPair = match model {
        Fig8Model::Fcnn => DatasetPair::new(
            digits(&mk_cfg(scale.train_samples, 51)),
            digits(&mk_cfg(scale.test_samples, 52)),
        ),
        _ => DatasetPair::new(
            colors(&mk_cfg(scale.train_samples, 61)),
            colors(&mk_cfg(scale.test_samples, 62)),
        ),
    };

    // The FCNN consumes flattened vectors; CNNs keep the image layout
    // (rectangular after spatial interlace — the builders support it).
    let layout = if model == Fig8Model::Fcnn {
        DataLayout::Flat
    } else {
        DataLayout::Image
    };
    let accuracy = run_training_acc(
        &pair,
        AssignStage {
            assignment,
            layout,
            teacher_view: false,
        },
        Box::new(move |_data: &AssignedData, _rng: &mut StdRng| {
            Ok(build_for(model, assignment, hw, classes, 700))
        }),
        None,
        &setup,
        800,
    );

    Fig8Entry {
        model: model.name(),
        assignment,
        accuracy,
        area_reduction: area_reduction(model, assignment),
    }
}

/// Runs the full Fig. 8 experiment.
///
/// The whole (model, assignment) grid goes through the shared worker pool
/// as one flat task list, so concurrency is bounded by
/// [`crate::pool::jobs`] for the entire figure rather than exploding per
/// model group.
pub fn run(scale: &Scale) -> Fig8Report {
    let grid: Vec<(Fig8Model, AssignmentKind)> = Fig8Model::all()
        .into_iter()
        .flat_map(|model| model.assignments().into_iter().map(move |a| (model, a)))
        .collect();
    let entries = crate::pool::parallel_map(grid, |(model, a)| run_entry(model, a, scale));
    Fig8Report { entries }
}

/// Runs a single model group.
pub fn run_model(model: Fig8Model, scale: &Scale) -> Fig8Report {
    let entries = model
        .assignments()
        .into_iter()
        .map(|a| run_entry(model, a, scale))
        .collect();
    Fig8Report { entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_schemes_share_the_fcnn_reduction() {
        let si = area_reduction(Fig8Model::Fcnn, AssignmentKind::SpatialInterlace);
        let sh = area_reduction(Fig8Model::Fcnn, AssignmentKind::SpatialHalfHalf);
        let ss = area_reduction(Fig8Model::Fcnn, AssignmentKind::SpatialSymmetric);
        assert_eq!(si, sh);
        assert_eq!(si, ss);
        assert!((si - 0.7503).abs() < 0.002, "paper: 75.03 %, got {si}");
    }

    #[test]
    fn resnet_si_gives_no_reduction() {
        // Paper: "in ResNet models, there is no area reduction for SI".
        let red = area_reduction(Fig8Model::Resnet20, AssignmentKind::SpatialInterlace);
        assert!(red.abs() < 1e-3, "got {red}");
    }

    #[test]
    fn lenet_si_reduction_comes_from_linear_layers_only() {
        // Paper §IV: SI's LeNet-5 reduction stems from the halved flatten
        // width; CONV layers are untouched. Under the explicit
        // `mzi(m, n)` counting this leaves SI well short of CL (the paper's
        // "slightly larger (5.8 %)" phrasing is not reconstructible from
        // the published formula — see EXPERIMENTS.md).
        let si = area_reduction(Fig8Model::Lenet5, AssignmentKind::SpatialInterlace);
        let cl = area_reduction(Fig8Model::Lenet5, AssignmentKind::ChannelLossless);
        assert!(si > 0.5, "SI must still reduce substantially: {si}");
        assert!(cl > si, "CL {cl} vs SI {si}");
    }

    #[test]
    fn cr_reduces_most() {
        // Paper: CR achieves ~90 % area reduction (at a big accuracy cost).
        for model in [Fig8Model::Lenet5, Fig8Model::Resnet20, Fig8Model::Resnet32] {
            let cr = area_reduction(model, AssignmentKind::ChannelRemapping);
            let cl = area_reduction(model, AssignmentKind::ChannelLossless);
            assert!(cr > cl, "{model:?}: CR {cr} should exceed CL {cl}");
            assert!(cr > 0.85, "{model:?}: CR reduction {cr}");
        }
    }

    #[test]
    fn quick_fcnn_group_orders_si_first() {
        let report = run_model(Fig8Model::Fcnn, &Scale::quick());
        assert_eq!(report.entries.len(), 3);
        for e in &report.entries {
            assert!(
                e.accuracy > 0.15,
                "{:?} failed to learn: {}",
                e.assignment,
                e.accuracy
            );
        }
    }
}
