//! Ablations beyond the paper's tables (DESIGN.md A1–A3).
//!
//! * [`alpha_sweep`] — sensitivity of mutual learning to the mixing factor
//!   α (the paper fixes α = 1.0 without a sweep).
//! * [`noise_sweep`] — accuracy of the *deployed* split FCNN under
//!   Gaussian phase noise (motivated by the paper's refs \[11\], \[13\]).
//! * [`power_comparison`] — phase-dependent static power (0–80 mW/PS) of
//!   the deployed original vs proposed FCNN.

use crate::deploy::{DeployedDetection, DeployedFcnn};
use crate::experiments::{train_and_eval, Scale};
use crate::zoo::{build_fcnn, FcnnConfig, ModelVariant};
use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::{digits, SynthConfig};
use oplix_nn::mutual::{mutual_fit, MutualConfig};
use oplix_nn::optim::Sgd;
use oplix_photonics::decoder::DecoderKind;
use oplix_photonics::power::DEFAULT_MAX_MW;
use oplix_photonics::svd_map::MeshStyle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

// ---------------------------------------------------------------------------
// A1: alpha sweep
// ---------------------------------------------------------------------------

/// Result of one α setting.
#[derive(Clone, Copy, Debug)]
pub struct AlphaPoint {
    /// Mixing factor.
    pub alpha: f32,
    /// Student accuracy with mutual learning at this α.
    pub accuracy: f64,
}

/// The α-sweep report.
#[derive(Clone, Debug)]
pub struct AlphaReport {
    /// Baseline accuracy without mutual learning (α = 0 by construction).
    pub solo_accuracy: f64,
    /// Sweep points.
    pub points: Vec<AlphaPoint>,
}

impl fmt::Display for AlphaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation A1: KD mixing factor sweep (FCNN)")?;
        writeln!(f, "  solo (no ML): {:.2}%", 100.0 * self.solo_accuracy)?;
        for p in &self.points {
            writeln!(f, "  alpha = {:<4}: {:.2}%", p.alpha, 100.0 * p.accuracy)?;
        }
        Ok(())
    }
}

/// Sweeps the distillation mixing factor on the split FCNN with a CVNN
/// teacher.
pub fn alpha_sweep(alphas: &[f32], scale: &Scale) -> AlphaReport {
    let hw = scale.image_hw;
    let classes = 10;
    let mk_cfg = |samples, seed| SynthConfig {
        height: hw,
        width: hw,
        num_classes: classes,
        samples,
        seed,
        ..Default::default()
    };
    let train_raw = digits(&mk_cfg(scale.train_samples, 81));
    let test_raw = digits(&mk_cfg(scale.test_samples, 82));
    let si_train = AssignmentKind::SpatialInterlace.apply_dataset_flat(&train_raw);
    let si_test = AssignmentKind::SpatialInterlace.apply_dataset_flat(&test_raw);
    let conv_train = AssignmentKind::Conventional.apply_dataset_flat(&train_raw);

    let student_cfg = FcnnConfig { input: hw * hw / 2, hidden: 32, classes };
    let teacher_cfg = FcnnConfig { input: hw * hw, hidden: 64, classes };
    let setup = scale.setup;

    let solo_accuracy = {
        let mut rng = StdRng::seed_from_u64(1000);
        let mut net = build_fcnn(&student_cfg, ModelVariant::Split(DecoderKind::Merge), &mut rng);
        train_and_eval(&mut net, &si_train, &si_test, &setup, 1100)
    };

    let points = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = alphas
            .iter()
            .map(|&alpha| {
                let (si_train, si_test, conv_train) = (&si_train, &si_test, &conv_train);
                s.spawn(move |_| {
                    let mut rng_s = StdRng::seed_from_u64(1000); // same init as solo
                    let mut student = build_fcnn(
                        &student_cfg,
                        ModelVariant::Split(DecoderKind::Merge),
                        &mut rng_s,
                    );
                    let mut rng_t = StdRng::seed_from_u64(1001);
                    let mut teacher =
                        build_fcnn(&teacher_cfg, ModelVariant::ConventionalOnn, &mut rng_t);
                    let cfg = MutualConfig {
                        alpha,
                        temperature: 1.0,
                        batch_size: setup.batch,
                    };
                    let mut opt_s =
                        Sgd::with_momentum(setup.lr, setup.momentum, setup.weight_decay);
                    let mut opt_t =
                        Sgd::with_momentum(setup.lr, setup.momentum, setup.weight_decay);
                    opt_s.clip = Some(1.0);
                    opt_t.clip = Some(1.0);
                    let mut rng = StdRng::seed_from_u64(1100);
                    let accuracy = mutual_fit(
                        &mut student,
                        &mut teacher,
                        si_train,
                        conv_train,
                        si_test,
                        setup.epochs,
                        &cfg,
                        &mut opt_s,
                        &mut opt_t,
                        &mut rng,
                    );
                    AlphaPoint { alpha, accuracy }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("alpha point"))
            .collect::<Vec<_>>()
    })
    .expect("scope");

    AlphaReport {
        solo_accuracy,
        points,
    }
}

// ---------------------------------------------------------------------------
// A2: phase-noise robustness
// ---------------------------------------------------------------------------

/// Result of one noise level.
#[derive(Clone, Copy, Debug)]
pub struct NoisePoint {
    /// Phase-noise standard deviation, radians.
    pub sigma: f64,
    /// Deployed hardware accuracy at this noise level.
    pub accuracy: f64,
}

/// The noise-sweep report.
#[derive(Clone, Debug)]
pub struct NoiseReport {
    /// Software accuracy of the trained model (noise-free reference).
    pub software_accuracy: f64,
    /// Sweep points.
    pub points: Vec<NoisePoint>,
}

impl fmt::Display for NoiseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation A2: phase-noise robustness of the deployed split FCNN")?;
        writeln!(f, "  software reference: {:.2}%", 100.0 * self.software_accuracy)?;
        for p in &self.points {
            writeln!(f, "  sigma = {:<5}: {:.2}%", p.sigma, 100.0 * p.accuracy)?;
        }
        Ok(())
    }
}

/// Trains a split FCNN, deploys it onto meshes, and sweeps Gaussian phase
/// noise over all programmable phases.
pub fn noise_sweep(sigmas: &[f64], scale: &Scale) -> NoiseReport {
    let hw = scale.image_hw;
    let classes = 10;
    let mk_cfg = |samples, seed| SynthConfig {
        height: hw,
        width: hw,
        num_classes: classes,
        samples,
        seed,
        ..Default::default()
    };
    let train_raw = digits(&mk_cfg(scale.train_samples, 83));
    let test_raw = digits(&mk_cfg(scale.test_samples, 84));
    let si_train = AssignmentKind::SpatialInterlace.apply_dataset_flat(&train_raw);
    let si_test = AssignmentKind::SpatialInterlace.apply_dataset_flat(&test_raw);

    let mut rng = StdRng::seed_from_u64(1200);
    let mut net = build_fcnn(
        &FcnnConfig { input: hw * hw / 2, hidden: 24, classes },
        ModelVariant::Split(DecoderKind::Merge),
        &mut rng,
    );
    let software_accuracy = train_and_eval(&mut net, &si_train, &si_test, &scale.setup, 1300);

    let points = sigmas
        .iter()
        .map(|&sigma| {
            let mut deployed = DeployedFcnn::from_network(
                &net,
                DeployedDetection::Differential,
                MeshStyle::Clements,
            )
            .expect("FCNN is deployable");
            let mut noise_rng = StdRng::seed_from_u64(1400);
            if sigma > 0.0 {
                deployed.inject_phase_noise(sigma, &mut noise_rng);
            }
            NoisePoint {
                sigma,
                accuracy: deployed.accuracy(&si_test.inputs, &si_test.labels),
            }
        })
        .collect();

    NoiseReport {
        software_accuracy,
        points,
    }
}

// ---------------------------------------------------------------------------
// A3: static power
// ---------------------------------------------------------------------------

/// Static-power comparison of deployed original vs proposed FCNN.
#[derive(Clone, Copy, Debug)]
pub struct PowerReport {
    /// Total static power of the conventional ONN FCNN, milliwatts.
    pub orig_mw: f64,
    /// Total static power of the split FCNN, milliwatts.
    pub prop_mw: f64,
    /// Number of phase shifters in the original deployment.
    pub orig_phases: usize,
    /// Number of phase shifters in the proposed deployment.
    pub prop_phases: usize,
}

impl PowerReport {
    /// Power reduction ratio.
    pub fn reduction(&self) -> f64 {
        1.0 - self.prop_mw / self.orig_mw
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation A3: static power of deployed FCNNs (0-80 mW per PS)")?;
        writeln!(
            f,
            "  original: {:>10.1} mW over {} phases",
            self.orig_mw, self.orig_phases
        )?;
        writeln!(
            f,
            "  proposed: {:>10.1} mW over {} phases",
            self.prop_mw, self.prop_phases
        )?;
        writeln!(f, "  reduction: {:.2}%", 100.0 * self.reduction())
    }
}

/// Trains both FCNN variants, deploys them, and integrates the
/// phase-dependent heater power over every mesh.
pub fn power_comparison(scale: &Scale) -> PowerReport {
    let hw = scale.image_hw;
    let classes = 10;
    let mk_cfg = |samples, seed| SynthConfig {
        height: hw,
        width: hw,
        num_classes: classes,
        samples,
        seed,
        ..Default::default()
    };
    let train_raw = digits(&mk_cfg(scale.train_samples, 85));
    let test_raw = digits(&mk_cfg(scale.test_samples, 86));
    let conv_train = AssignmentKind::Conventional.apply_dataset_flat(&train_raw);
    let conv_test = AssignmentKind::Conventional.apply_dataset_flat(&test_raw);
    let si_train = AssignmentKind::SpatialInterlace.apply_dataset_flat(&train_raw);
    let si_test = AssignmentKind::SpatialInterlace.apply_dataset_flat(&test_raw);

    let mut rng = StdRng::seed_from_u64(1500);
    let mut orig = build_fcnn(
        &FcnnConfig { input: hw * hw, hidden: 48, classes },
        ModelVariant::ConventionalOnn,
        &mut rng,
    );
    let _ = train_and_eval(&mut orig, &conv_train, &conv_test, &scale.setup, 1600);
    let mut prop = build_fcnn(
        &FcnnConfig { input: hw * hw / 2, hidden: 24, classes },
        ModelVariant::Split(DecoderKind::Merge),
        &mut rng,
    );
    let _ = train_and_eval(&mut prop, &si_train, &si_test, &scale.setup, 1601);

    let measure = |net: &oplix_nn::network::Network, detection| {
        let deployed = DeployedFcnn::from_network(net, detection, MeshStyle::Clements)
            .expect("FCNN is deployable");
        deployed
    };
    let d_orig = measure(&orig, DeployedDetection::Intensity);
    let d_prop = measure(&prop, DeployedDetection::Differential);

    let sum_power = |d: &DeployedFcnn| -> (f64, usize) {
        // Walk stage meshes through the public device count; power needs
        // the meshes themselves, which DeployedFcnn exposes via its stages.
        d.static_power_mw(DEFAULT_MAX_MW)
    };
    let (orig_mw, orig_phases) = sum_power(&d_orig);
    let (prop_mw, prop_phases) = sum_power(&d_prop);

    PowerReport {
        orig_mw,
        prop_mw,
        orig_phases,
        prop_phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_zero_matches_solo_closely() {
        // alpha = 0 is mutual learning with no coupling; accuracies should
        // be in the same band as solo training (not identical: the data
        // order differs between fit() and mutual_fit()).
        let report = alpha_sweep(&[0.0, 1.0], &Scale::quick());
        assert_eq!(report.points.len(), 2);
        for p in &report.points {
            assert!((0.0..=1.0).contains(&p.accuracy));
        }
    }

    #[test]
    fn noise_sweep_degrades_monotonically_in_trend() {
        let report = noise_sweep(&[0.0, 0.5], &Scale::quick());
        assert_eq!(report.points.len(), 2);
        // Zero noise must match the software accuracy exactly.
        assert!(
            (report.points[0].accuracy - report.software_accuracy).abs() < 1e-9,
            "deployed {} vs software {}",
            report.points[0].accuracy,
            report.software_accuracy
        );
        // Heavy noise should not be better than the clean deployment.
        assert!(report.points[1].accuracy <= report.points[0].accuracy + 0.05);
    }

    #[test]
    fn power_favors_the_split_network() {
        let report = power_comparison(&Scale::quick());
        assert!(report.orig_phases > report.prop_phases);
        assert!(report.orig_mw > report.prop_mw);
        assert!(report.reduction() > 0.4, "reduction {}", report.reduction());
    }
}
