//! Ablations beyond the paper's tables (DESIGN.md A1–A3).
//!
//! * [`alpha_sweep`] — sensitivity of mutual learning to the mixing factor
//!   α (the paper fixes α = 1.0 without a sweep).
//! * [`noise_sweep`] — accuracy of the *deployed* split FCNN under
//!   Gaussian phase noise (motivated by the paper's refs \[11\], \[13\]).
//! * [`power_comparison`] — phase-dependent static power (0–80 mW/PS) of
//!   the deployed original vs proposed FCNN.

use crate::experiments::{run_training, train_on_acc, Scale};
use crate::stage::{
    AssignStage, AssignedData, DatasetPair, DeployStage, ModelFactory, MutualLearning, Stage,
};
use crate::zoo::{build_fcnn, FcnnConfig, ModelVariant};
use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::{digits, SynthConfig};
use oplix_photonics::decoder::DecoderKind;
use oplix_photonics::power::DEFAULT_MAX_MW;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

// ---------------------------------------------------------------------------
// A1: alpha sweep
// ---------------------------------------------------------------------------

/// Result of one α setting.
#[derive(Clone, Copy, Debug)]
pub struct AlphaPoint {
    /// Mixing factor.
    pub alpha: f32,
    /// Student accuracy with mutual learning at this α.
    pub accuracy: f64,
}

/// The α-sweep report.
#[derive(Clone, Debug)]
pub struct AlphaReport {
    /// Baseline accuracy without mutual learning (α = 0 by construction).
    pub solo_accuracy: f64,
    /// Sweep points.
    pub points: Vec<AlphaPoint>,
}

impl fmt::Display for AlphaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablation A1: KD mixing factor sweep (FCNN)")?;
        writeln!(f, "  solo (no ML): {:.2}%", 100.0 * self.solo_accuracy)?;
        for p in &self.points {
            writeln!(f, "  alpha = {:<4}: {:.2}%", p.alpha, 100.0 * p.accuracy)?;
        }
        Ok(())
    }
}

/// Sweeps the distillation mixing factor on the split FCNN with a CVNN
/// teacher.
pub fn alpha_sweep(alphas: &[f32], scale: &Scale) -> AlphaReport {
    let hw = scale.image_hw;
    let classes = 10;
    let mk_cfg = |samples, seed| SynthConfig {
        height: hw,
        width: hw,
        num_classes: classes,
        samples,
        seed,
        ..Default::default()
    };
    let pair = DatasetPair::new(
        digits(&mk_cfg(scale.train_samples, 81)),
        digits(&mk_cfg(scale.test_samples, 82)),
    );

    let setup = scale.setup;
    let student = || -> Box<dyn ModelFactory> {
        Box::new(move |data: &AssignedData, _rng: &mut StdRng| {
            let mut rng = StdRng::seed_from_u64(1000); // same init at every alpha
            Ok(build_fcnn(
                &FcnnConfig {
                    input: data.assigned_features(),
                    hidden: 32,
                    classes: data.classes,
                },
                ModelVariant::Split(DecoderKind::Merge),
                &mut rng,
            ))
        })
    };
    // One assignment run shared by the solo baseline and every alpha
    // (the solo run simply ignores the teacher view).
    let si = AssignStage::flat(AssignmentKind::SpatialInterlace).with_teacher_view();
    let assigned = si
        .run(pair)
        .unwrap_or_else(|e| panic!("experiment stage failed: {e}"));

    let solo_accuracy = train_on_acc(assigned.clone(), student(), None, &setup, 1100);

    let points = {
        let (setup, student, assigned) = (&setup, &student, &assigned);
        crate::pool::parallel_map(alphas.to_vec(), move |alpha| {
            let mutual = MutualLearning {
                teacher: Box::new(move |data: &AssignedData, _rng: &mut StdRng| {
                    let mut rng = StdRng::seed_from_u64(1001);
                    Ok(build_fcnn(
                        &FcnnConfig {
                            input: data.raw_features(),
                            hidden: 64,
                            classes: data.classes,
                        },
                        ModelVariant::ConventionalOnn,
                        &mut rng,
                    ))
                }),
                alpha,
                temperature: 1.0,
            };
            let accuracy = train_on_acc(
                assigned.clone(), // Arc-backed: a reference bump per arm
                student(),
                Some(mutual),
                setup,
                1100, // same data order as solo
            );
            AlphaPoint { alpha, accuracy }
        })
    };

    AlphaReport {
        solo_accuracy,
        points,
    }
}

// ---------------------------------------------------------------------------
// A2: phase-noise robustness
// ---------------------------------------------------------------------------

/// Result of one noise level.
#[derive(Clone, Copy, Debug)]
pub struct NoisePoint {
    /// Phase-noise standard deviation, radians.
    pub sigma: f64,
    /// Deployed hardware accuracy at this noise level.
    pub accuracy: f64,
}

/// The noise-sweep report.
#[derive(Clone, Debug)]
pub struct NoiseReport {
    /// Software accuracy of the trained model (noise-free reference).
    pub software_accuracy: f64,
    /// Sweep points.
    pub points: Vec<NoisePoint>,
}

impl fmt::Display for NoiseReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation A2: phase-noise robustness of the deployed split FCNN"
        )?;
        writeln!(
            f,
            "  software reference: {:.2}%",
            100.0 * self.software_accuracy
        )?;
        for p in &self.points {
            writeln!(f, "  sigma = {:<5}: {:.2}%", p.sigma, 100.0 * p.accuracy)?;
        }
        Ok(())
    }
}

/// Trains a split FCNN, deploys it onto meshes, and sweeps Gaussian phase
/// noise over all programmable phases.
pub fn noise_sweep(sigmas: &[f64], scale: &Scale) -> NoiseReport {
    let hw = scale.image_hw;
    let classes = 10;
    let mk_cfg = |samples, seed| SynthConfig {
        height: hw,
        width: hw,
        num_classes: classes,
        samples,
        seed,
        ..Default::default()
    };
    let pair = DatasetPair::new(
        digits(&mk_cfg(scale.train_samples, 83)),
        digits(&mk_cfg(scale.test_samples, 84)),
    );

    let variant = ModelVariant::Split(DecoderKind::Merge);
    let trained = run_training(
        &pair,
        AssignStage::flat(AssignmentKind::SpatialInterlace),
        Box::new(move |data: &AssignedData, _rng: &mut StdRng| {
            let mut rng = StdRng::seed_from_u64(1200);
            Ok(build_fcnn(
                &FcnnConfig {
                    input: data.assigned_features(),
                    hidden: 24,
                    classes: data.classes,
                },
                variant,
                &mut rng,
            ))
        }),
        None,
        &scale.setup,
        1300,
    )
    .expect("FCNN training stages run");
    let software_accuracy = trained.accuracy;

    // One deployment, one engine; each noise level is a scoped session on
    // the same meshes instead of a fresh redeploy.
    let deployed = DeployStage::new(variant.detection())
        .run(trained)
        .expect("FCNN is deployable");
    let mut engine = deployed.engine;
    let test = deployed.data.test;

    let points = sigmas
        .iter()
        .map(|&sigma| {
            let mut noise_rng = StdRng::seed_from_u64(1400);
            let mut session = engine.noise_session(sigma, &mut noise_rng);
            let accuracy = session
                .accuracy(&test)
                .expect("test view matches mesh fan-in");
            NoisePoint { sigma, accuracy }
        })
        .collect();

    NoiseReport {
        software_accuracy,
        points,
    }
}

// ---------------------------------------------------------------------------
// A3: static power
// ---------------------------------------------------------------------------

/// Static-power comparison of deployed original vs proposed FCNN.
#[derive(Clone, Copy, Debug)]
pub struct PowerReport {
    /// Total static power of the conventional ONN FCNN, milliwatts.
    pub orig_mw: f64,
    /// Total static power of the split FCNN, milliwatts.
    pub prop_mw: f64,
    /// Number of phase shifters in the original deployment.
    pub orig_phases: usize,
    /// Number of phase shifters in the proposed deployment.
    pub prop_phases: usize,
}

impl PowerReport {
    /// Power reduction ratio.
    pub fn reduction(&self) -> f64 {
        1.0 - self.prop_mw / self.orig_mw
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation A3: static power of deployed FCNNs (0-80 mW per PS)"
        )?;
        writeln!(
            f,
            "  original: {:>10.1} mW over {} phases",
            self.orig_mw, self.orig_phases
        )?;
        writeln!(
            f,
            "  proposed: {:>10.1} mW over {} phases",
            self.prop_mw, self.prop_phases
        )?;
        writeln!(f, "  reduction: {:.2}%", 100.0 * self.reduction())
    }
}

/// Trains both FCNN variants, deploys them, and integrates the
/// phase-dependent heater power over every mesh.
pub fn power_comparison(scale: &Scale) -> PowerReport {
    let hw = scale.image_hw;
    let classes = 10;
    let mk_cfg = |samples, seed| SynthConfig {
        height: hw,
        width: hw,
        num_classes: classes,
        samples,
        seed,
        ..Default::default()
    };
    let pair = DatasetPair::new(
        digits(&mk_cfg(scale.train_samples, 85)),
        digits(&mk_cfg(scale.test_samples, 86)),
    );

    // Train and deploy both FCNN variants through the stages, then
    // integrate the phase-dependent heater power over every mesh.
    let deploy_variant =
        |variant: ModelVariant, assignment, hidden: usize, init: u64, order: u64| {
            let trained = run_training(
                &pair,
                AssignStage::flat(assignment),
                Box::new(move |data: &AssignedData, _rng: &mut StdRng| {
                    let mut rng = StdRng::seed_from_u64(init);
                    Ok(build_fcnn(
                        &FcnnConfig {
                            input: data.assigned_features(),
                            hidden,
                            classes: data.classes,
                        },
                        variant,
                        &mut rng,
                    ))
                }),
                None,
                &scale.setup,
                order,
            )
            .expect("FCNN training stages run");
            DeployStage::new(variant.detection())
                .run(trained)
                .expect("FCNN is deployable")
        };
    let d_orig = deploy_variant(
        ModelVariant::ConventionalOnn,
        AssignmentKind::Conventional,
        48,
        1500,
        1600,
    );
    let d_prop = deploy_variant(
        ModelVariant::Split(DecoderKind::Merge),
        AssignmentKind::SpatialInterlace,
        24,
        1501,
        1601,
    );

    let (orig_mw, orig_phases) = d_orig.engine.deployed().static_power_mw(DEFAULT_MAX_MW);
    let (prop_mw, prop_phases) = d_prop.engine.deployed().static_power_mw(DEFAULT_MAX_MW);

    PowerReport {
        orig_mw,
        prop_mw,
        orig_phases,
        prop_phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_zero_matches_solo_closely() {
        // alpha = 0 is mutual learning with no coupling; accuracies should
        // be in the same band as solo training (not identical: the data
        // order differs between fit() and mutual_fit()).
        let report = alpha_sweep(&[0.0, 1.0], &Scale::quick());
        assert_eq!(report.points.len(), 2);
        for p in &report.points {
            assert!((0.0..=1.0).contains(&p.accuracy));
        }
    }

    #[test]
    fn noise_sweep_degrades_monotonically_in_trend() {
        let report = noise_sweep(&[0.0, 0.5], &Scale::quick());
        assert_eq!(report.points.len(), 2);
        // Zero noise must match the software accuracy exactly.
        assert!(
            (report.points[0].accuracy - report.software_accuracy).abs() < 1e-9,
            "deployed {} vs software {}",
            report.points[0].accuracy,
            report.software_accuracy
        );
        // Heavy noise should not be better than the clean deployment.
        assert!(report.points[1].accuracy <= report.points[0].accuracy + 0.05);
    }

    #[test]
    fn power_favors_the_split_network() {
        let report = power_comparison(&Scale::quick());
        assert!(report.orig_phases > report.prop_phases);
        assert!(report.orig_mw > report.prop_mw);
        assert!(report.reduction() > 0.4, "reduction {}", report.reduction());
    }
}
