//! Experiment runners regenerating every table and figure of the paper.
//!
//! Each submodule owns one artifact:
//!
//! * [`table2`] — area & accuracy of the four models (Table II),
//! * [`table3`] — SCVNN–CVNN mutual-learning gains (Table III),
//! * [`fig7`] — comparison with the OFFT baseline (Fig. 7),
//! * [`fig8`] — data-assignment comparison (Fig. 8),
//! * [`fig9`] — output-decoder comparison (Fig. 9),
//! * [`ablation`] — extensions: α sweep, phase-noise robustness, static
//!   power (A1–A3 in DESIGN.md).
//!
//! Every runner takes a [`Scale`] so the same code serves fast smoke tests
//! (`Scale::quick()`) and the benchmark harness (`Scale::standard()`).
//! Accuracy experiments run at training scale on the synthetic datasets;
//! all area numbers are computed at the paper's full scale via
//! [`crate::spec`].

pub mod ablation;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table2;
pub mod table3;

use crate::error::Error;
use crate::stage::{
    AssignStage, DatasetPair, ModelFactory, MutualLearning, Stage, TrainStage, TrainedModel,
};
use oplix_nn::network::Network;
use oplix_nn::optim::Sgd;
use oplix_nn::trainer::{fit, CDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs one `Assign → Train` leg of an experiment through the stage API:
/// the shared path every runner's accuracy measurement goes through.
///
/// `seed` drives the training batch order (weight init is the factory's
/// business, so runs with different schedules can share an init).
///
/// # Errors
///
/// Propagates typed stage failures (geometry violations, missing teacher
/// view).
pub fn run_training(
    pair: &DatasetPair,
    assign: AssignStage,
    student: Box<dyn ModelFactory>,
    mutual: Option<MutualLearning>,
    setup: &TrainSetup,
    seed: u64,
) -> Result<TrainedModel, Error> {
    train_on(assign.run(pair.clone())?, student, mutual, setup, seed)
}

/// The `Train` leg alone, over an already-assigned view — what sweeps use
/// so one [`AssignStage`] run is shared across every grid point instead
/// of re-applying the assignment per training.
///
/// # Errors
///
/// Propagates typed stage failures (e.g. mutual learning without a
/// teacher view).
pub fn train_on(
    data: crate::stage::AssignedData,
    student: Box<dyn ModelFactory>,
    mutual: Option<MutualLearning>,
    setup: &TrainSetup,
    seed: u64,
) -> Result<TrainedModel, Error> {
    let mut stage = TrainStage::new(student, *setup, seed);
    if let Some(m) = mutual {
        stage = stage.with_mutual(m);
    }
    stage.run(data)
}

/// [`train_on`], unwrapped to the accuracy (see [`run_training_acc`]).
pub fn train_on_acc(
    data: crate::stage::AssignedData,
    student: Box<dyn ModelFactory>,
    mutual: Option<MutualLearning>,
    setup: &TrainSetup,
    seed: u64,
) -> f64 {
    train_on(data, student, mutual, setup, seed)
        .unwrap_or_else(|e| panic!("experiment stage failed: {e}"))
        .accuracy
}

/// [`run_training`], unwrapped: experiment grids run on synthetic data
/// whose geometry is valid by construction, so stage failures here are
/// programming errors, not recoverable conditions.
pub fn run_training_acc(
    pair: &DatasetPair,
    assign: AssignStage,
    student: Box<dyn ModelFactory>,
    mutual: Option<MutualLearning>,
    setup: &TrainSetup,
    seed: u64,
) -> f64 {
    run_training(pair, assign, student, mutual, setup, seed)
        .unwrap_or_else(|e| panic!("experiment stage failed: {e}"))
        .accuracy
}

/// Hyper-parameters shared by every training run in an experiment (the
/// paper: "for each NN model, experiments with different settings are run
/// with the same hyperparameters").
#[derive(Clone, Copy, Debug)]
pub struct TrainSetup {
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Initial learning rate (step-decayed by `fit`).
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
}

/// Which model family a training run belongs to; used to pick
/// per-family hyper-parameters (the paper keeps hyper-parameters fixed
/// *within* each model's comparison, which is what matters for fairness —
/// every variant of one model trains with identical settings).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Dense networks on digit data.
    Fcnn,
    /// LeNet-5-style CNNs (no batch norm — needs a hotter learning rate).
    Lenet,
    /// Batch-normalised ResNets.
    Resnet,
}

/// Dataset and schedule sizes for one experiment run.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Training-set size.
    pub train_samples: usize,
    /// Test-set size.
    pub test_samples: usize,
    /// Image height/width.
    pub image_hw: usize,
    /// Shared training hyper-parameters.
    pub setup: TrainSetup,
}

impl Scale {
    /// Tiny runs for unit/integration tests (seconds).
    pub fn quick() -> Self {
        Scale {
            train_samples: 240,
            test_samples: 120,
            image_hw: 8,
            setup: TrainSetup {
                epochs: 12,
                batch: 32,
                lr: 0.05,
                momentum: 0.9,
                weight_decay: 1e-4,
            },
        }
    }

    /// The benchmark-harness scale (minutes for the full grid).
    pub fn standard() -> Self {
        Scale {
            train_samples: 480,
            test_samples: 240,
            image_hw: 16,
            setup: TrainSetup {
                epochs: 16,
                batch: 32,
                lr: 0.05,
                momentum: 0.9,
                weight_decay: 1e-4,
            },
        }
    }
}

impl Scale {
    /// Image size for the CNN workloads. Convolution training is the cost
    /// hot-spot, so CNNs run at 8×8 even when the FCNN uses
    /// `self.image_hw`.
    pub fn cnn_hw(&self) -> usize {
        8
    }

    /// Per-family training setup: identical within a family (so every
    /// variant comparison is fair), adapted across families.
    pub fn setup_for(&self, workload: Workload) -> TrainSetup {
        match workload {
            Workload::Fcnn => self.setup,
            Workload::Lenet => TrainSetup {
                lr: 0.1,
                epochs: self.setup.epochs * 2,
                ..self.setup
            },
            // ResNets converge in ~12 epochs at CNN scale and dominate the
            // wall-clock; cap them so the full grid stays CPU-friendly. A
            // slightly cooler learning rate keeps the batch-normalised
            // stacks out of their bimodal-collapse regime at this scale.
            Workload::Resnet => TrainSetup {
                lr: 0.03,
                epochs: self.setup.epochs.min(12),
                ..self.setup
            },
        }
    }
}

/// Trains a network with the shared setup and returns the test accuracy.
pub fn train_and_eval(
    net: &mut Network,
    train: &CDataset,
    test: &CDataset,
    setup: &TrainSetup,
    seed: u64,
) -> f64 {
    let mut opt = Sgd::with_momentum(setup.lr, setup.momentum, setup.weight_decay);
    opt.clip = Some(1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    fit(
        net,
        train,
        test,
        setup.epochs,
        setup.batch,
        &mut opt,
        &mut rng,
        false,
    )
}

/// Formats a ratio as a percentage with two decimals, the paper's style.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}
