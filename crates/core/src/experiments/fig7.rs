//! Fig. 7: OplixNet vs the OFFT baseline on four FCNN configurations.
//!
//! The paper's Model1–Model4 are `(28×28)-400-10`, `(14×14)-70-10`,
//! `(28×28)-400-128-10` and `(14×14)-160-160-10`. Device and parameter
//! counts (`#Para`, `#DC`, `#PS`) are computed at those exact shapes and
//! normalised to the original ONN, as in the figure; accuracies are
//! measured at training scale with proportionally reduced widths.

use crate::experiments::{pct, run_training_acc, Scale};
use crate::spec::{LayerShape, ModelSpec};
use crate::stage::{AssignStage, AssignedData, DatasetPair};
use crate::zoo::ModelVariant;
use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::{digits, SynthConfig};
use oplix_nn::layers::{CDense, CRelu, CSequential};
use oplix_nn::network::Network;
use oplix_offt::cost::OfftCostModel;
use oplix_offt::model::OfftMlp;
use oplix_photonics::decoder::DecoderKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// One of the paper's four FCNN configurations.
#[derive(Clone, Debug)]
pub struct Fig7Model {
    /// Display name ("Model1" … "Model4").
    pub name: &'static str,
    /// Full-scale layer widths, e.g. `[784, 400, 10]`.
    pub widths: Vec<usize>,
}

impl Fig7Model {
    /// The paper's Model1–Model4.
    pub fn all() -> Vec<Fig7Model> {
        vec![
            Fig7Model {
                name: "Model1",
                widths: vec![784, 400, 10],
            },
            Fig7Model {
                name: "Model2",
                widths: vec![196, 70, 10],
            },
            Fig7Model {
                name: "Model3",
                widths: vec![784, 400, 128, 10],
            },
            Fig7Model {
                name: "Model4",
                widths: vec![196, 160, 160, 10],
            },
        ]
    }

    /// The original (dense, conventional) ONN spec.
    pub fn orig_spec(&self) -> ModelSpec {
        ModelSpec {
            name: format!("{} orig", self.name),
            layers: self
                .widths
                .windows(2)
                .map(|w| LayerShape::Dense {
                    out: w[1],
                    input: w[0],
                })
                .collect(),
            complex: false,
        }
    }

    /// The OplixNet spec: halved input and interior widths, `K` outputs
    /// (decoder-free counting, as in Table II), complex weights.
    pub fn oplix_spec(&self) -> ModelSpec {
        let mut halved: Vec<usize> = self.widths.iter().map(|&w| w.div_ceil(2)).collect();
        *halved.last_mut().expect("non-empty widths") = *self.widths.last().expect("non-empty");
        let layers: Vec<LayerShape> = halved
            .windows(2)
            .map(|w| LayerShape::Dense {
                out: w[1],
                input: w[0],
            })
            .collect();
        ModelSpec {
            name: format!("{} oplix", self.name),
            layers,
            complex: true,
        }
    }

    /// Training-scale widths: input from the dataset, interior widths
    /// scaled down by 4, output = classes.
    fn training_widths(&self, input: usize, classes: usize) -> Vec<usize> {
        let mut w = vec![input];
        for &mid in &self.widths[1..self.widths.len() - 1] {
            w.push((mid / 4).max(8));
        }
        w.push(classes);
        w
    }
}

/// One row (model) of the Fig. 7 comparison; every count is normalised to
/// the original ONN of the same configuration.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Model name.
    pub model: &'static str,
    /// OFFT accuracy at training scale.
    pub acc_offt: f64,
    /// OplixNet accuracy at training scale.
    pub acc_oplix: f64,
    /// OFFT parameters / original parameters.
    pub para_offt: f64,
    /// OplixNet parameters / original parameters.
    pub para_oplix: f64,
    /// OFFT DCs / original DCs.
    pub dc_offt: f64,
    /// OplixNet DCs / original DCs.
    pub dc_oplix: f64,
    /// OFFT PSs / original PSs.
    pub ps_offt: f64,
    /// OplixNet PSs / original PSs.
    pub ps_oplix: f64,
}

/// The rendered Fig. 7 data.
#[derive(Clone, Debug)]
pub struct Fig7Report {
    /// One row per model.
    pub rows: Vec<Fig7Row>,
}

impl fmt::Display for Fig7Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 7: comparison with OFFT (all counts normalised to the original ONN)"
        )?;
        writeln!(
            f,
            "{:<8} {:>10} {:>10} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8}",
            "Model",
            "Acc OFFT",
            "Acc Oplix",
            "#P OFFT",
            "#P Oplix",
            "DC OFFT",
            "DC Oplx",
            "PS OFFT",
            "PS Oplx"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<8} {:>10} {:>10} {:>9.3} {:>9.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
                r.model,
                pct(r.acc_offt),
                pct(r.acc_oplix),
                r.para_offt,
                r.para_oplix,
                r.dc_offt,
                r.dc_oplix,
                r.ps_offt,
                r.ps_oplix,
            )?;
        }
        Ok(())
    }
}

/// OFFT block size used throughout Fig. 7 (documented in `oplix-offt`).
pub const OFFT_BLOCK: usize = 8;

fn build_oplix_mlp(widths: &[usize], seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    // Halve everything except the class count; merge decoder doubles the
    // last layer.
    let mut halved: Vec<usize> = widths.iter().map(|&w| w.div_ceil(2)).collect();
    let classes = *widths.last().expect("non-empty widths");
    *halved.last_mut().expect("non-empty") = classes;
    let n = halved.len();
    let mut body = CSequential::new();
    for (i, w) in halved.windows(2).enumerate() {
        let out = if i + 2 == n { 2 * w[1] } else { w[1] };
        body.add(Box::new(CDense::new(w[0], out, &mut rng)));
        if i + 2 < n {
            body.add(Box::new(CRelu::new()));
        }
    }
    let (_, head) = ModelVariant::Split(DecoderKind::Merge).head(classes, &mut rng);
    Network::new(body, head)
}

fn run_model(model: &Fig7Model, scale: &Scale) -> Fig7Row {
    // --- Exact full-scale counts, normalised to the original ONN. ---
    let orig = model.orig_spec();
    let orig_mzis: u64 = orig.layers.iter().map(LayerShape::mzis).sum();
    let orig_dcs = 2 * orig_mzis;
    let orig_pss = orig_mzis;
    let orig_params = orig.params();

    let oplix = model.oplix_spec();
    let oplix_mzis: u64 = oplix.layers.iter().map(LayerShape::mzis).sum();

    let widths_u64: Vec<u64> = model.widths.iter().map(|&w| w as u64).collect();
    let offt = OfftCostModel::new(OFFT_BLOCK as u64).network_cost(&widths_u64);

    // --- Training-scale accuracy, through the Assign → Train stages. ---
    let hw = scale.image_hw;
    let classes = 10;
    let mk_cfg = |samples, seed| SynthConfig {
        height: hw,
        width: hw,
        num_classes: classes,
        samples,
        seed,
        ..Default::default()
    };
    let pair = DatasetPair::new(
        digits(&mk_cfg(scale.train_samples, 41)),
        digits(&mk_cfg(scale.test_samples, 42)),
    );

    let train_widths = model.training_widths(hw * hw, classes);
    let setup = scale.setup;
    let (acc_offt, acc_oplix) = {
        let (pair, setup, widths) = (&pair, &setup, &train_widths);
        let accs = crate::pool::run_scoped(vec![
            Box::new(move || {
                let widths = widths.clone();
                run_training_acc(
                    pair,
                    AssignStage::flat(AssignmentKind::Conventional),
                    Box::new(move |_data: &AssignedData, _rng: &mut StdRng| {
                        let mut rng = StdRng::seed_from_u64(500);
                        Ok(OfftMlp::new(&widths, OFFT_BLOCK, &mut rng).net)
                    }),
                    None,
                    setup,
                    600,
                )
            }) as Box<dyn FnOnce() -> f64 + Send + '_>,
            Box::new(move || {
                let widths = widths.clone();
                run_training_acc(
                    pair,
                    // build_oplix_mlp halves the input and interior widths,
                    // matching the spatially-interlaced view (hw²/2 features).
                    AssignStage::flat(AssignmentKind::SpatialInterlace),
                    Box::new(move |_data: &AssignedData, _rng: &mut StdRng| {
                        Ok(build_oplix_mlp(&widths, 501))
                    }),
                    None,
                    setup,
                    601,
                )
            }),
        ]);
        (accs[0], accs[1])
    };

    Fig7Row {
        model: model.name,
        acc_offt,
        acc_oplix,
        para_offt: offt.params as f64 / orig_params as f64,
        para_oplix: oplix.params() as f64 / orig_params as f64,
        dc_offt: offt.dcs as f64 / orig_dcs as f64,
        dc_oplix: (2 * oplix_mzis) as f64 / orig_dcs as f64,
        ps_offt: offt.pss as f64 / orig_pss as f64,
        ps_oplix: oplix_mzis as f64 / orig_pss as f64,
    }
}

/// Runs the full Fig. 7 experiment.
pub fn run(scale: &Scale) -> Fig7Report {
    Fig7Report {
        rows: Fig7Model::all()
            .iter()
            .map(|m| run_model(m, scale))
            .collect(),
    }
}

/// Runs a subset of the models by index (0-based).
pub fn run_subset(indices: &[usize], scale: &Scale) -> Fig7Report {
    let all = Fig7Model::all();
    Fig7Report {
        rows: indices.iter().map(|&i| run_model(&all[i], scale)).collect(),
    }
}

/// Sanity-check helper: the exact Model1 device counts.
pub fn model1_counts() -> (u64, u64, u64) {
    let m = &Fig7Model::all()[0];
    let orig: u64 = m.orig_spec().layers.iter().map(LayerShape::mzis).sum();
    let oplix: u64 = m.oplix_spec().layers.iter().map(LayerShape::mzis).sum();
    let offt = OfftCostModel::new(OFFT_BLOCK as u64)
        .network_cost(&m.widths.iter().map(|&w| w as u64).collect::<Vec<_>>());
    (orig, oplix, offt.pss)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oplix_photonics::count::mzi_count;

    #[test]
    fn model1_exact_counts() {
        let m = &Fig7Model::all()[0];
        let orig: u64 = m.orig_spec().layers.iter().map(LayerShape::mzis).sum();
        // mzi(400,784) + mzi(10,400)
        assert_eq!(orig, mzi_count(400, 784) + mzi_count(10, 400));
        let oplix: u64 = m.oplix_spec().layers.iter().map(LayerShape::mzis).sum();
        assert_eq!(oplix, mzi_count(200, 392) + mzi_count(10, 200));
    }

    #[test]
    fn oplix_beats_offt_on_devices_but_not_params() {
        // The paper's headline Fig. 7 shape for Model1/3/4.
        for idx in [0usize, 2, 3] {
            let m = &Fig7Model::all()[idx];
            let orig_mzis: u64 = m.orig_spec().layers.iter().map(LayerShape::mzis).sum();
            let oplix_mzis: u64 = m.oplix_spec().layers.iter().map(LayerShape::mzis).sum();
            let offt = OfftCostModel::new(8)
                .network_cost(&m.widths.iter().map(|&w| w as u64).collect::<Vec<_>>());
            assert!(
                2 * oplix_mzis < offt.dcs,
                "{}: OplixNet DCs {} should beat OFFT {}",
                m.name,
                2 * oplix_mzis,
                offt.dcs
            );
            assert!(oplix_mzis < offt.pss, "{}: PS comparison", m.name);
            assert!(
                m.oplix_spec().params() > offt.params,
                "{}: OFFT should hold fewer params",
                m.name
            );
            let _ = orig_mzis;
        }
    }

    #[test]
    fn quick_model2_trains() {
        let report = run_subset(&[1], &Scale::quick());
        let row = &report.rows[0];
        assert!(
            row.acc_offt > 0.15,
            "OFFT failed to learn: {}",
            row.acc_offt
        );
        assert!(
            row.acc_oplix > 0.15,
            "Oplix failed to learn: {}",
            row.acc_oplix
        );
        // Normalised counts are within (0, 1.2] of the original.
        for v in [
            row.para_offt,
            row.para_oplix,
            row.dc_offt,
            row.dc_oplix,
            row.ps_offt,
            row.ps_oplix,
        ] {
            assert!(v > 0.0 && v < 1.2, "normalised count out of range: {v}");
        }
    }

    #[test]
    fn display_renders() {
        let report = Fig7Report {
            rows: vec![Fig7Row {
                model: "Model1",
                acc_offt: 0.95,
                acc_oplix: 0.97,
                para_offt: 0.126,
                para_oplix: 0.52,
                dc_offt: 0.34,
                dc_oplix: 0.25,
                ps_offt: 0.43,
                ps_oplix: 0.25,
            }],
        };
        assert!(report.to_string().contains("Model1"));
    }
}
