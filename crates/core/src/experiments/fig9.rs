//! Fig. 9: comparison of output decoder settings.
//!
//! Each split model is trained with all four decoders (Merge / Linear /
//! Unitary / Coherent). Accuracy is measured at training scale; area is
//! the paper-scale network MZI count normalised so Coherent = 100 % (the
//! coherent scheme adds no MZIs, only reference optics, shifting time and
//! post-processing).

use crate::experiments::{pct, run_training_acc, Scale};
use crate::spec::{fcnn_prop, lenet5_prop, resnet_prop, LayerShape, ModelSpec};
use crate::stage::{AssignStage, AssignedData, DatasetPair};
use crate::zoo::{
    build_fcnn, build_lenet, build_resnet, FcnnConfig, LenetConfig, ModelVariant, ResnetConfig,
};
use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::{colors, digits, SynthConfig};
use oplix_photonics::decoder::DecoderKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Which model a Fig. 9 group runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fig9Model {
    /// Split FCNN.
    Fcnn,
    /// Split LeNet-5.
    Lenet5,
    /// Split ResNet-20.
    Resnet20,
    /// Split ResNet-32.
    Resnet32,
}

impl Fig9Model {
    /// All four, in figure order.
    pub fn all() -> [Fig9Model; 4] {
        [
            Fig9Model::Fcnn,
            Fig9Model::Lenet5,
            Fig9Model::Resnet20,
            Fig9Model::Resnet32,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Fig9Model::Fcnn => "FCNN",
            Fig9Model::Lenet5 => "LeNet-5",
            Fig9Model::Resnet20 => "ResNet-20",
            Fig9Model::Resnet32 => "ResNet-32",
        }
    }

    /// Paper-scale classes.
    pub fn paper_classes(&self) -> u64 {
        match self {
            Fig9Model::Resnet32 => 100,
            _ => 10,
        }
    }

    fn classes(&self) -> usize {
        match self {
            Fig9Model::Resnet32 => 20,
            _ => 10,
        }
    }

    /// The paper-scale split spec (decoder-free, the Table II "Prop."
    /// convention).
    fn base_spec(&self) -> ModelSpec {
        match self {
            Fig9Model::Fcnn => fcnn_prop(),
            Fig9Model::Lenet5 => lenet5_prop(),
            Fig9Model::Resnet20 => resnet_prop(20, 10),
            Fig9Model::Resnet32 => resnet_prop(32, 100),
        }
    }

    /// Paper-scale MZI count of the split network without any decoder.
    pub fn base_mzis(&self) -> u64 {
        self.base_spec().mzis()
    }

    /// Fan-in of the classifier layer at paper scale.
    pub fn head_fan_in(&self) -> u64 {
        match self.base_spec().layers.last() {
            Some(LayerShape::Dense { input, .. }) => *input as u64,
            _ => unreachable!("all models end in a dense classifier"),
        }
    }
}

/// One (model, decoder) entry of Fig. 9.
#[derive(Clone, Debug)]
pub struct Fig9Entry {
    /// Model name.
    pub model: &'static str,
    /// Decoder scheme.
    pub decoder: DecoderKind,
    /// Training-scale accuracy.
    pub accuracy: f64,
    /// Paper-scale area, normalised to the Coherent configuration = 1.0.
    pub area_vs_coherent: f64,
}

/// The rendered Fig. 9 data.
#[derive(Clone, Debug)]
pub struct Fig9Report {
    /// All entries, grouped by model.
    pub entries: Vec<Fig9Entry>,
}

impl fmt::Display for Fig9Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 9: comparison of decoder settings")?;
        writeln!(
            f,
            "{:<10} {:<9} {:>10} {:>14}",
            "Model", "Decoder", "Accuracy", "Area vs Coh."
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "{:<10} {:<9} {:>10} {:>13.2}%",
                e.model,
                e.decoder.to_string(),
                pct(e.accuracy),
                100.0 * e.area_vs_coherent,
            )?;
        }
        Ok(())
    }
}

/// Paper-scale area of `model` with `decoder`, normalised to Coherent.
pub fn normalized_area(model: Fig9Model, decoder: DecoderKind) -> f64 {
    let base = model.base_mzis();
    let extra = decoder.extra_mzis(model.head_fan_in(), model.paper_classes());
    (base + extra) as f64 / base as f64
}

fn run_entry(model: Fig9Model, decoder: DecoderKind, scale: &Scale) -> Fig9Entry {
    let hw = if model == Fig9Model::Fcnn {
        scale.image_hw
    } else {
        scale.cnn_hw()
    };
    let classes = model.classes();
    let setup = scale.setup_for(match model {
        Fig9Model::Fcnn => crate::experiments::Workload::Fcnn,
        Fig9Model::Lenet5 => crate::experiments::Workload::Lenet,
        _ => crate::experiments::Workload::Resnet,
    });
    let mk_cfg = |samples, seed| SynthConfig {
        height: hw,
        width: hw,
        num_classes: classes,
        samples,
        seed,
        ..Default::default()
    };
    let variant = ModelVariant::Split(decoder);

    let (pair, assign): (DatasetPair, AssignStage) = match model {
        Fig9Model::Fcnn => (
            DatasetPair::new(
                digits(&mk_cfg(scale.train_samples, 71)),
                digits(&mk_cfg(scale.test_samples, 72)),
            ),
            AssignStage::flat(AssignmentKind::SpatialInterlace),
        ),
        Fig9Model::Lenet5 => (
            DatasetPair::new(
                colors(&mk_cfg(scale.train_samples, 73)),
                colors(&mk_cfg(scale.test_samples, 74)),
            ),
            AssignStage::image(AssignmentKind::ChannelLossless),
        ),
        Fig9Model::Resnet20 | Fig9Model::Resnet32 => (
            DatasetPair::new(
                colors(&mk_cfg(scale.train_samples, 75)),
                colors(&mk_cfg(scale.test_samples, 76)),
            ),
            AssignStage::image(AssignmentKind::ChannelLossless),
        ),
    };
    let accuracy = run_training_acc(
        &pair,
        assign,
        Box::new(move |data: &AssignedData, _rng: &mut StdRng| {
            let mut rng = StdRng::seed_from_u64(900);
            Ok(match model {
                Fig9Model::Fcnn => build_fcnn(
                    &FcnnConfig {
                        input: data.assigned_features(),
                        hidden: 32,
                        classes,
                    },
                    variant,
                    &mut rng,
                ),
                Fig9Model::Lenet5 => build_lenet(
                    &LenetConfig::training_scale(3, hw, classes).halved(),
                    variant,
                    &mut rng,
                ),
                Fig9Model::Resnet20 | Fig9Model::Resnet32 => {
                    let depth = if model == Fig9Model::Resnet20 { 20 } else { 32 };
                    build_resnet(
                        &ResnetConfig::training_scale(depth, 3, hw, classes).halved(),
                        variant,
                        &mut rng,
                    )
                }
            })
        }),
        None,
        &setup,
        901,
    );
    Fig9Entry {
        model: model.name(),
        decoder,
        accuracy,
        area_vs_coherent: normalized_area(model, decoder),
    }
}

/// Runs one model across all four decoders (through the shared pool).
pub fn run_model(model: Fig9Model, scale: &Scale) -> Fig9Report {
    let entries =
        crate::pool::parallel_map(DecoderKind::all().to_vec(), |d| run_entry(model, d, scale));
    Fig9Report { entries }
}

/// Runs the full Fig. 9 experiment.
///
/// The (model, decoder) grid is one flat task list through the shared
/// worker pool, bounded by [`crate::pool::jobs`].
pub fn run(scale: &Scale) -> Fig9Report {
    let grid: Vec<(Fig9Model, DecoderKind)> = Fig9Model::all()
        .into_iter()
        .flat_map(|model| DecoderKind::all().into_iter().map(move |d| (model, d)))
        .collect();
    let entries = crate::pool::parallel_map(grid, |(model, d)| run_entry(model, d, scale));
    Fig9Report { entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_area_overhead_matches_paper_range() {
        // Paper: the merge decoder costs 0.04 %-0.73 % more area than
        // coherent. The 10-class models land inside that band; ResNet-32's
        // 100-class head exceeds it under our counting convention (the
        // doubled 200-wide output mesh scales with K**2 — see
        // EXPERIMENTS.md).
        for model in [Fig9Model::Fcnn, Fig9Model::Lenet5, Fig9Model::Resnet20] {
            let over = normalized_area(model, DecoderKind::Merge) - 1.0;
            assert!(
                (0.0004..0.0073).contains(&over),
                "{model:?}: merge overhead {over}"
            );
        }
        let over32 = normalized_area(Fig9Model::Resnet32, DecoderKind::Merge) - 1.0;
        assert!(over32 < 0.03, "ResNet-32 merge overhead {over32}");
    }

    #[test]
    fn decoder_area_ordering() {
        for model in Fig9Model::all() {
            let coh = normalized_area(model, DecoderKind::Coherent);
            let merge = normalized_area(model, DecoderKind::Merge);
            let unitary = normalized_area(model, DecoderKind::Unitary);
            let linear = normalized_area(model, DecoderKind::Linear);
            assert_eq!(coh, 1.0);
            assert!(
                merge > coh && merge < unitary && unitary < linear,
                "{model:?}"
            );
        }
    }

    #[test]
    fn quick_fcnn_all_decoders_learn() {
        let report = run_model(Fig9Model::Fcnn, &Scale::quick());
        assert_eq!(report.entries.len(), 4);
        for e in &report.entries {
            assert!(
                e.accuracy > 0.15,
                "{} failed to learn: {}",
                e.decoder,
                e.accuracy
            );
        }
    }
}
