//! Table III: SCVNN–CVNN mutual learning.
//!
//! For each CNN model the split student is trained twice with identical
//! hyper-parameters: once alone ("Acc. w/o ML") and once in mutual
//! learning with a CVNN teacher ("Acc. w/ ML", α = 1.0). The teacher is a
//! larger model of the same series for the ResNets (ResNet-56) and another
//! LeNet-5 for LeNet-5, as in the paper.

use crate::experiments::{pct, train_on_acc, Scale};
use crate::stage::{AssignStage, AssignedData, ModelFactory, MutualLearning};
use crate::stage::{DatasetPair, Stage};
use crate::zoo::{build_lenet, build_resnet, LenetConfig, ModelVariant, ResnetConfig};
use oplix_datasets::assign::AssignmentKind;
use oplix_datasets::synth::{colors, SynthConfig};
use oplix_nn::network::Network;
use oplix_photonics::decoder::DecoderKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// The three configurations of Table III.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Table3Model {
    /// LeNet-5 student, LeNet-5 teacher, CIFAR-10-like data.
    Lenet5,
    /// ResNet-20 student, ResNet-56 teacher, CIFAR-10-like data.
    Resnet20,
    /// ResNet-32 student, ResNet-56 teacher, CIFAR-100-like data.
    Resnet32,
}

impl Table3Model {
    /// All three, in table order.
    pub fn all() -> [Table3Model; 3] {
        [
            Table3Model::Lenet5,
            Table3Model::Resnet20,
            Table3Model::Resnet32,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Table3Model::Lenet5 => "LeNet-5",
            Table3Model::Resnet20 => "ResNet-20",
            Table3Model::Resnet32 => "ResNet-32",
        }
    }

    /// Teacher display name.
    pub fn teacher_name(&self) -> &'static str {
        match self {
            Table3Model::Lenet5 => "LeNet-5",
            _ => "ResNet-56",
        }
    }

    /// Classes at training scale.
    pub fn classes(&self) -> usize {
        match self {
            Table3Model::Resnet32 => 20,
            _ => 10,
        }
    }
}

/// One row of Table III.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Student model name.
    pub model: &'static str,
    /// Teacher model name.
    pub teacher: &'static str,
    /// Student accuracy trained alone.
    pub acc_without_ml: f64,
    /// Student accuracy with mutual learning.
    pub acc_with_ml: f64,
}

impl Table3Row {
    /// Accuracy gain from mutual learning.
    pub fn gain(&self) -> f64 {
        self.acc_with_ml - self.acc_without_ml
    }
}

/// The rendered Table III.
#[derive(Clone, Debug)]
pub struct Table3Report {
    /// One row per configuration.
    pub rows: Vec<Table3Row>,
}

impl fmt::Display for Table3Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table III: results of SCVNN-CVNN mutual learning")?;
        writeln!(
            f,
            "{:<10} {:>12} {:>12} {:>9} {:>10}",
            "Model", "Acc. w/o ML", "Acc. w/ ML", "Gain", "Teacher"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>12} {:>12} {:>+8.2}% {:>10}",
                r.model,
                pct(r.acc_without_ml),
                pct(r.acc_with_ml),
                100.0 * r.gain(),
                r.teacher,
            )?;
        }
        Ok(())
    }
}

fn build_student(model: Table3Model, hw: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let classes = model.classes();
    match model {
        Table3Model::Lenet5 => build_lenet(
            &LenetConfig::training_scale(3, hw, classes).halved(),
            ModelVariant::Split(DecoderKind::Merge),
            &mut rng,
        ),
        Table3Model::Resnet20 => build_resnet(
            &ResnetConfig::training_scale(20, 3, hw, classes).halved(),
            ModelVariant::Split(DecoderKind::Merge),
            &mut rng,
        ),
        Table3Model::Resnet32 => build_resnet(
            &ResnetConfig::training_scale(32, 3, hw, classes).halved(),
            ModelVariant::Split(DecoderKind::Merge),
            &mut rng,
        ),
    }
}

fn build_teacher(model: Table3Model, hw: usize, seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    let classes = model.classes();
    match model {
        Table3Model::Lenet5 => build_lenet(
            &LenetConfig::training_scale(3, hw, classes),
            ModelVariant::ConventionalOnn,
            &mut rng,
        ),
        // ResNet-56 teacher (blocks = 9) at training scale.
        _ => build_resnet(
            &ResnetConfig::training_scale(56, 3, hw, classes),
            ModelVariant::ConventionalOnn,
            &mut rng,
        ),
    }
}

fn run_model(model: Table3Model, scale: &Scale) -> Table3Row {
    let hw = scale.cnn_hw();
    let classes = model.classes();
    let mk_cfg = |samples, seed| SynthConfig {
        height: hw,
        width: hw,
        num_classes: classes,
        samples,
        seed,
        ..Default::default()
    };
    let pair = DatasetPair::new(
        colors(&mk_cfg(scale.train_samples, 31)),
        colors(&mk_cfg(scale.test_samples, 32)),
    );
    // One assignment run shared by both arms (the solo run ignores the
    // teacher view).
    let assigned = AssignStage::image(AssignmentKind::ChannelLossless)
        .with_teacher_view()
        .run(pair)
        .unwrap_or_else(|e| panic!("experiment stage failed: {e}"));

    let setup = scale.setup_for(match model {
        Table3Model::Lenet5 => crate::experiments::Workload::Lenet,
        _ => crate::experiments::Workload::Resnet,
    });
    let student_factory = move || -> Box<dyn ModelFactory> {
        Box::new(move |_data: &AssignedData, _rng: &mut StdRng| {
            Ok(build_student(model, hw, 300)) // same init in both runs
        })
    };
    let (acc_without, acc_with) = {
        let setup = &setup;
        let solo_data = assigned.clone(); // Arc-backed: a reference bump
        let accs = crate::pool::run_scoped(vec![
            Box::new(move || train_on_acc(solo_data, student_factory(), None, setup, 400))
                as Box<dyn FnOnce() -> f64 + Send + '_>,
            Box::new(move || {
                let mutual = MutualLearning {
                    teacher: Box::new(move |_data: &AssignedData, _rng: &mut StdRng| {
                        Ok(build_teacher(model, hw, 301))
                    }),
                    alpha: 1.0,
                    temperature: 1.0,
                };
                // A batch order of its own: the coupled updates are
                // sensitive to the shuffle stream, and sharing the solo
                // order buys nothing (the loss surfaces already differ).
                train_on_acc(assigned, student_factory(), Some(mutual), setup, 401)
            }),
        ]);
        (accs[0], accs[1])
    };

    Table3Row {
        model: model.name(),
        teacher: model.teacher_name(),
        acc_without_ml: acc_without,
        acc_with_ml: acc_with,
    }
}

/// Runs the full Table III experiment.
pub fn run(scale: &Scale) -> Table3Report {
    Table3Report {
        rows: Table3Model::all()
            .into_iter()
            .map(|m| run_model(m, scale))
            .collect(),
    }
}

/// Runs a subset of the configurations.
pub fn run_models(models: &[Table3Model], scale: &Scale) -> Table3Report {
    Table3Report {
        rows: models.iter().map(|&m| run_model(m, scale)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_lenet_row_is_sane() {
        let report = run_models(&[Table3Model::Lenet5], &Scale::quick());
        let row = &report.rows[0];
        assert_eq!(row.teacher, "LeNet-5");
        for acc in [row.acc_without_ml, row.acc_with_ml] {
            assert!((0.0..=1.0).contains(&acc));
            assert!(acc > 0.15, "model failed to learn: {acc}");
        }
    }

    #[test]
    fn display_renders_gain() {
        let report = Table3Report {
            rows: vec![Table3Row {
                model: "ResNet-32",
                teacher: "ResNet-56",
                acc_without_ml: 0.6741,
                acc_with_ml: 0.6912,
            }],
        };
        let s = report.to_string();
        assert!(s.contains("ResNet-32"));
        assert!(s.contains("+1.71%"));
        assert!(s.contains("ResNet-56"));
    }
}
